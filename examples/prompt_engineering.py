#!/usr/bin/env python
"""Prompt engineering — how formulation changes LLM curation behaviour.

Reproduces the paper's Table 5 analysis on one task: the same simulated
models answer the same 100 queries under the three prompt formulations
(base, 'I don't know' permitted, shuffled example order), and the example
shows how each formulation trades accuracy, precision, abstention rate and
consistency (Fleiss' kappa).

    python examples/prompt_engineering.py
"""

from repro.core import Lab, LabConfig
from repro.core.datasets import train_test_split_9_1
from repro.core.reporting import Table
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant, render_prompt
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    SimulatedChatModel,
    truth_table,
)

TASK = 1

VARIANT_NOTES = {
    PromptVariant.BASE: "Table 1 template, positives first",
    PromptVariant.ABSTAIN: "+ \"state 'I don't know'\"",
    PromptVariant.SHUFFLED: "examples in random order",
}


def main():
    lab = Lab(LabConfig(n_chemical_entities=800, corpus_documents=80,
                        pretrain_sentences=100, pretrain_epochs=1,
                        wordpiece_vocab=300))
    dataset = lab.dataset(TASK)
    split = train_test_split_9_1(dataset, seed=0)
    config = ICLConfig(seed=0)
    queries = build_icl_queries(dataset, config)
    truth = truth_table(dataset)

    # Show one concrete prompt so the template is visible.
    example_prompt = render_prompt(
        [t for t in split.train if t.label == 1][:3],
        [t for t in split.train if t.label == 0][:3],
        queries[0],
        PromptVariant.ABSTAIN,
    )
    print("example prompt (variant #2):\n")
    print(example_prompt)
    print("\n" + "=" * 72 + "\n")

    table = Table(
        f"Prompt formulations on task {TASK} (100 queries x 5 deliveries)",
        ["model", "variant", "accuracy", "abstained", "precision", "F1",
         "kappa"],
        precision=3,
    )
    for profile in (GPT4_PROFILE, GPT35_PROFILE, BIOGPT_PROFILE):
        for variant in PromptVariant:
            client = SimulatedChatModel(profile, truth, TASK, seed=0)
            result = run_icl_experiment(
                client, list(split.train), queries, variant, config
            )
            table.add_row(
                profile.name, f"#{variant.value} ({VARIANT_NOTES[variant]})",
                result.accuracy_mean, result.n_unclassified,
                result.precision_mean, result.f1_mean, result.kappa,
            )
    table.show()

    print(
        "Takeaways (mirroring the paper): permitting 'I don't know' raises\n"
        "precision on the classified subset but lowers overall accuracy;\n"
        "shuffling the example order largely cures BioGPT's copy-the-last-\n"
        "block bias; the GPT models are highly consistent, BioGPT is not."
    )


if __name__ == "__main__":
    main()
