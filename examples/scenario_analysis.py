#!/usr/bin/env python
"""Scenario analysis — when should you reach for an LLM instead of training?

Reproduces the paper's practical decision rule (Section 3.6.1 / Figure 3)
on a small scale: train a Random Forest and a fine-tuned mini-BERT under
the five data-availability scenarios (shrinking, increasingly imbalanced
training sets) and compare each against the flat in-context-learning
performance of a simulated GPT-4.

    python examples/scenario_analysis.py
"""

from repro.core import Lab, LabConfig
from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    RandomForestParadigm,
)
from repro.core.reporting import Table
from repro.core.scenarios import SCENARIOS, build_scenario_split
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table
from repro.ml.forest import RandomForestConfig

TASK = 1


def main():
    lab = Lab(
        LabConfig(
            n_chemical_entities=800,
            corpus_documents=120,
            pretrain_sentences=1_000,
            pretrain_epochs=2,
            ft_epochs=4,
        )
    )
    dataset = lab.dataset(TASK)

    # GPT-4's ICL performance does not depend on the training budget:
    # evaluate it once on the scenarios' shared test set.
    reference_split = build_scenario_split(
        dataset, SCENARIOS[0], subset_fraction=0.6, seed=0
    )
    gpt = ICLParadigm(
        SimulatedChatModel(GPT4_PROFILE, truth_table(dataset), TASK),
        name="GPT-4",
    ).fit(list(reference_split.train))
    gpt_f1 = evaluate_paradigm(gpt, list(reference_split.test)).f1

    table = Table(
        f"Task {TASK}: trained models vs the flat GPT-4 line (F1)",
        ["scenario", "train size", "RF(GloVe-Chem)", "FT", "GPT-4",
         "recommendation"],
        precision=3,
    )
    for scenario in SCENARIOS:
        split = build_scenario_split(dataset, scenario, subset_fraction=0.6, seed=0)
        train, test = list(split.train), list(split.test)

        rf = RandomForestParadigm(
            lab.embedding("GloVe-Chem"),
            token_filter=lab.adaptation_filter("naive"),
            config=RandomForestConfig(n_estimators=15, seed=0),
        ).fit(train)
        rf_f1 = evaluate_paradigm(rf, test).f1

        ft = FineTuneParadigm(lab.bert, lab.ft_config()).fit(train)
        ft_f1 = evaluate_paradigm(ft, test).f1

        best_trained = max(rf_f1, ft_f1)
        recommendation = "train a model" if best_trained >= gpt_f1 else "prompt an LLM"
        table.add_row(
            scenario.describe(), len(train), rf_f1, ft_f1, gpt_f1, recommendation
        )
        print(f"finished {scenario.describe()}")
    table.show()


if __name__ == "__main__":
    main()
