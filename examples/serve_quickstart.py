#!/usr/bin/env python
"""Serving quickstart — train a curator offline, serve it over HTTP.

Walks the full curation-as-a-service loop in-process:

1. build a micro lab and train a Random Forest curator (supervised
   paradigm, W2V-Chem embeddings + naive adaptation);
2. stand the curator up behind the stdlib HTTP server with micro-batching
   and load-shedding enabled;
3. act as a client: POST a batch of candidate triples to
   ``/v1/classify`` and read the plausibility labels back;
4. show the server-side accounting from ``/statz``.

Runs in a few seconds:

    python examples/serve_quickstart.py
"""

import http.client
import json

from repro.core import Lab
from repro.serve.bench import bench_lab_config
from repro.serve.curator import build_pool
from repro.serve.schemas import triple_payload
from repro.serve.server import start_server, stop_server
from repro.serve.service import CurationService


def main():
    # 1. Train a small RF backend offline (micro lab: seconds, not minutes).
    lab = Lab(bench_lab_config(entities=120))
    print(f"ontology: {lab.ontology.num_entities} entities")
    curators = build_pool(lab, ["rf"], task=1)
    print(f"warm backends: {sorted(curators)}")

    # 2. Serve it: batching coalesces concurrent requests, the bounded
    #    queue sheds overload with 503 + Retry-After.
    service = CurationService.from_curators(
        curators, max_batch=32, max_wait_s=0.002, max_queue=256
    ).start()
    server, thread, port = start_server(service)
    print(f"serving on http://127.0.0.1:{port}")

    try:
        # 3. Classify a batch of held-out candidate triples as a client.
        candidates = list(lab.ml_split(1).test)[:6]
        body = json.dumps(
            {"backend": "rf",
             "triples": [triple_payload(t) for t in candidates]},
            sort_keys=True,
        )
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request(
                "POST", "/v1/classify", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = json.loads(
                connection.getresponse().read().decode("utf-8")
            )
            print(f"labels (1 = plausible): {response['labels']} "
                  f"(coalesced batch of {response['batched_with']})")

            # 4. The server accounts for every request it saw.
            connection.request("GET", "/statz")
            statz = json.loads(connection.getresponse().read().decode("utf-8"))
            totals = statz["totals"]
            print(f"served {totals['requests']} request(s), "
                  f"{totals['triples']} triples, "
                  f"p50 {totals['latency_p50_ms']} ms, "
                  f"shed rate {totals['shed_rate']}")
        finally:
            connection.close()
    finally:
        stop_server(server, thread)
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
