#!/usr/bin/env python
"""Ontology curation — the workflow the paper motivates.

A curator receives a batch of *candidate triples* (new knowledge proposed
for ChEBI: some genuine, some with flipped directions, some pointing at the
wrong sibling entity).  This example trains a curation assistant on the
existing ontology and triages the candidate batch into accept / reject /
needs-review, using model confidence as the triage signal.

    python examples/curate_ontology.py
"""

from repro.core import Lab, LabConfig
from repro.core.datasets import Dataset
from repro.core.paradigms import RandomForestParadigm
from repro.core.reporting import Table
from repro.ml.forest import RandomForestConfig

REVIEW_BAND = (0.35, 0.65)  # probabilities in this band go to a human


def main():
    lab = Lab(
        LabConfig(
            n_chemical_entities=800,
            corpus_documents=120,
            max_train=1_500,
            max_test=400,
            rf_estimators=20,
        )
    )

    # Train the assistant on all three error types: pool the task datasets
    # so the model sees random, flipped and sibling corruptions.
    train_triples = []
    candidate_triples = []
    for task in (1, 2, 3):
        split = lab.ml_split(task)
        train_triples.extend(split.train)
        candidate_triples.extend(split.test.sample(15, 15, seed=task).triples)
    train = Dataset(train_triples, name="curation-train").shuffled(seed=1)
    candidates = Dataset(candidate_triples, name="candidates").shuffled(seed=2)

    assistant = RandomForestParadigm(
        lab.embedding("GloVe-Chem"),
        token_filter=lab.adaptation_filter("naive"),
        config=RandomForestConfig(n_estimators=20, seed=0),
        name="curation assistant",
    )
    print(f"training on {len(train)} triples from the existing ontology ...")
    assistant.fit(list(train))

    probabilities = assistant.predict_proba(list(candidates))
    accepted, rejected, review = [], [], []
    for triple, probability in zip(candidates, probabilities):
        if probability >= REVIEW_BAND[1]:
            accepted.append((triple, probability))
        elif probability <= REVIEW_BAND[0]:
            rejected.append((triple, probability))
        else:
            review.append((triple, probability))

    table = Table(
        "Curation triage of the candidate batch",
        ["bucket", "count", "actually true", "actually false"],
        precision=0,
    )
    for name, bucket in (("accept", accepted), ("reject", rejected),
                         ("needs review", review)):
        n_true = sum(1 for t, _ in bucket if t.label == 1)
        table.add_row(name, len(bucket), n_true, len(bucket) - n_true)
    table.show()

    print("sample accepted candidates:")
    for triple, probability in accepted[:3]:
        print(f"  p={probability:.2f}  {triple.as_text()}")
    print("sample rejected candidates:")
    for triple, probability in rejected[:3]:
        print(f"  p={probability:.2f}  {triple.as_text()}")

    auto = len(accepted) + len(rejected)
    errors = sum(1 for t, _ in accepted if t.label == 0) + sum(
        1 for t, _ in rejected if t.label == 1
    )
    print(
        f"\nautomated {auto}/{len(candidates)} decisions "
        f"({errors} errors); {len(review)} routed to a human curator"
    )


if __name__ == "__main__":
    main()
