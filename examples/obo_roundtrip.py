#!/usr/bin/env python
"""OBO workflow — export, inspect, and reload a ChEBI-like ontology.

ChEBI is distributed in OBO format.  This example synthesises an ontology,
writes it to ``/tmp/synthetic_chebi.obo``, reloads it, verifies the
round-trip, and prints the census a curator would inspect first.  Swap the
synthetic file for a real ChEBI download (``chebi.obo``) to run the whole
benchmark on genuine data.

    python examples/obo_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro.core.reporting import Table
from repro.ontology import SynthesisConfig, census, synthesize_chebi_like
from repro.ontology.obo import dump_obo, load_obo
from repro.ontology.queries import depth_map, siblings


def main():
    ontology = synthesize_chebi_like(SynthesisConfig(n_chemical_entities=600, seed=11))
    path = Path(tempfile.gettempdir()) / "synthetic_chebi.obo"
    dump_obo(ontology, path)
    print(f"wrote {path} ({path.stat().st_size / 1024:.0f} KiB)")

    reloaded = load_obo(path, name=ontology.name)
    assert reloaded.num_entities == ontology.num_entities
    assert reloaded.num_statements == ontology.num_statements
    print("round-trip verified: entity and statement counts match")

    result = census(reloaded)
    table = Table(
        "Ontology census (the paper's Section 3.1 view)",
        ["relation", "triples", "share"],
        precision=3,
    )
    shares = result.relation_shares()
    for name, share in shares.items():
        table.add_row(name, result.statements_by_relation[name], share)
    table.show()

    depths = depth_map(reloaded)
    print(f"max is_a depth: {max(depths.values())}")

    # Sibling neighbourhood of one mid-hierarchy entity (task 3's raw
    # material: negatives replace an object with one of these siblings).
    example = next(
        e for e in reloaded.entities()
        if len(siblings(reloaded, e.identifier)) >= 3
    )
    sibling_names = [
        reloaded.entity(s).name
        for s in sorted(siblings(reloaded, example.identifier))[:4]
    ]
    print(f"\nsiblings of {example.name!r}:")
    for name in sibling_names:
        print(f"  - {name}")


if __name__ == "__main__":
    main()
