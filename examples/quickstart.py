#!/usr/bin/env python
"""Quickstart — build the apparatus and run one model from each paradigm.

Generates a small ChEBI-like ontology, constructs the task-1 dataset
(true vs random negatives), and classifies held-out triples with:

* supervised learning (Random Forest on W2V-Chem embeddings + naive
  adaptation),
* fine-tuning (mini-BERT pretrained on the synthetic chemistry corpus),
* in-context learning (simulated GPT-4 with few-shot prompts).

Runs in a couple of minutes on a laptop:

    python examples/quickstart.py
"""

from repro.core import Lab, LabConfig
from repro.core.comparison import evaluate_paradigm
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    RandomForestParadigm,
)
from repro.core.reporting import Table
from repro.llm.simulated import GPT4_PROFILE, SimulatedChatModel, truth_table
from repro.ml.forest import RandomForestConfig


def main():
    lab = Lab(
        LabConfig(
            n_chemical_entities=800,
            corpus_documents=120,
            max_train=1_200,
            max_test=300,
            rf_estimators=15,
            pretrain_sentences=1_000,
            pretrain_epochs=2,
            ft_epochs=4,
        )
    )
    print(f"ontology: {lab.ontology.num_entities} entities, "
          f"{lab.ontology.num_statements} statements")

    split = lab.ml_split(1)
    train = list(split.train)
    test = list(split.test.sample(50, 50, seed=0))
    print(f"task 1: {len(train)} training triples, {len(test)} test triples")

    paradigms = [
        RandomForestParadigm(
            lab.embedding("W2V-Chem"),
            token_filter=lab.adaptation_filter("naive"),
            config=RandomForestConfig(n_estimators=15, seed=0),
            name="ML: RF(W2V-Chem, naive)",
        ),
        FineTuneParadigm(lab.bert, lab.ft_config(), name="FT: mini-BERT"),
        ICLParadigm(
            SimulatedChatModel(GPT4_PROFILE, truth_table(lab.dataset(1)), 1),
            name="ICL: simulated GPT-4",
        ),
    ]

    table = Table(
        "Quickstart — three paradigms on task 1 (true vs random negatives)",
        ["paradigm", "accuracy", "precision", "recall", "F1", "unclassified"],
    )
    for paradigm in paradigms:
        print(f"fitting {paradigm.name} ...")
        paradigm.fit(train)
        row = evaluate_paradigm(paradigm, test)
        table.add_row(
            row.paradigm, row.accuracy, row.precision, row.recall,
            row.f1, row.n_unclassified,
        )
    table.show()


if __name__ == "__main__":
    main()
