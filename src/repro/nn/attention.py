"""Multi-head self-attention with padding masks and manual backprop."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.utils.rng import SeedLike


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Input ``x`` has shape ``(batch, seq, d_model)``; ``mask`` has shape
    ``(batch, seq)`` with 1 for real tokens and 0 for padding.  Padding
    positions are excluded as attention *keys*; their query rows still
    produce outputs but those are masked out downstream.
    """

    def __init__(self, d_model: int, n_heads: int, seed: SeedLike = 0,
                 name: str = "attention"):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(
                f"d_model={d_model} must be divisible by n_heads={n_heads}"
            )
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.qkv = Linear(d_model, 3 * d_model, seed=seed, name=f"{name}.qkv")
        self.out = Linear(d_model, d_model, seed=seed, name=f"{name}.out")
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, d_head = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * d_head)

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        batch, seq, _ = x.shape
        qkv = self.qkv.forward(x)  # (B, T, 3d)
        # One reshape exposes the fused projection as (3, B, H, T, dh); the
        # three slices are views into one buffer instead of np.split copies.
        heads = qkv.reshape(batch, seq, 3, self.n_heads, self.d_head)
        heads = heads.transpose(2, 0, 3, 1, 4)
        q, k, v = heads[0], heads[1], heads[2]  # each (B, H, T, dh)

        scale = 1.0 / np.sqrt(self.d_head)
        scores = (q @ k.swapaxes(-1, -2)) * scale
        if mask is not None:
            key_mask = mask[:, None, None, :]  # (B, 1, 1, T)
            scores = np.where(key_mask > 0, scores, -1e9)
        attn = _softmax(scores, axis=-1)  # (B, H, Tq, Tk)
        context = attn @ v
        merged = self._merge_heads(context)
        self._cache = (q, k, v, attn, scale)
        return self.out.forward(merged)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        q, k, v, attn, scale = self._cache
        grad_merged = self.out.backward(grad)
        batch, seq, _ = grad_merged.shape
        grad_context = grad_merged.reshape(
            batch, seq, self.n_heads, self.d_head
        ).transpose(0, 2, 1, 3)

        grad_attn = grad_context @ v.swapaxes(-1, -2)
        grad_v = attn.swapaxes(-1, -2) @ grad_context

        # Softmax backward: dL/ds = attn * (dL/da - sum(dL/da * attn)).
        dot = (grad_attn * attn).sum(axis=-1, keepdims=True)
        grad_scores = attn * (grad_attn - dot)
        # Masked (-1e9) positions have attn ~ 0, so their gradient vanishes.

        grad_q = (grad_scores @ k) * scale
        grad_k = (grad_scores.swapaxes(-1, -2) @ q) * scale

        # Scatter the three head gradients into one preallocated (B, T, 3d)
        # buffer rather than concatenating three merge_heads copies.
        grad_qkv = np.empty((batch, seq, 3, self.n_heads, self.d_head))
        grad_qkv[:, :, 0] = grad_q.transpose(0, 2, 1, 3)
        grad_qkv[:, :, 1] = grad_k.transpose(0, 2, 1, 3)
        grad_qkv[:, :, 2] = grad_v.transpose(0, 2, 1, 3)
        return self.qkv.backward(grad_qkv.reshape(batch, seq, 3 * self.d_model))


__all__ = ["MultiHeadSelfAttention"]
