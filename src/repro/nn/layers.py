"""Core layers with explicit forward/backward passes.

Every layer caches exactly what its backward pass needs.  A layer instance
must complete a forward before its backward is called; calling forward again
overwrites the cache (layers are single-use per step, as in a static graph).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, derive_rng


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self):
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Module:
    """Base class: tracks sub-modules' parameters and train/eval mode."""

    def __init__(self):
        self.training = True

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules (depth-first)."""
        found: List[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                found.append(attr)
            elif isinstance(attr, Module):
                found.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        found.append(item)
        return found

    def zero_grad(self):
        for parameter in self.parameters():
            parameter.zero_grad()

    def set_training(self, training: bool):
        self.training = training
        for attr in vars(self).values():
            if isinstance(attr, Module):
                attr.set_training(training)
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        item.set_training(training)

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.value.size for p in self.parameters())


class Linear(Module):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(self, d_in: int, d_out: int, seed: SeedLike = 0, name: str = "linear"):
        super().__init__()
        rng = derive_rng(seed, "linear", name, d_in, d_out)
        scale = np.sqrt(2.0 / (d_in + d_out))
        self.weight = Parameter(rng.normal(0.0, scale, size=(d_in, d_out)),
                                name=f"{name}.weight")
        self.bias = Parameter(np.zeros(d_out), name=f"{name}.bias")
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._input
        if x is None:
            raise RuntimeError("backward called before forward")
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += flat_x.T @ flat_g
        self.bias.grad += flat_g.sum(axis=0)
        return grad @ self.weight.value.T


class Embedding(Module):
    """Id → vector lookup with scatter-add gradients."""

    def __init__(self, n_embeddings: int, dim: int, seed: SeedLike = 0,
                 name: str = "embedding"):
        super().__init__()
        rng = derive_rng(seed, "embedding", name, n_embeddings, dim)
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(n_embeddings, dim)), name=f"{name}.weight"
        )
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = np.asarray(ids, dtype=np.int64)
        return self.weight.value[self._ids]

    def backward(self, grad: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(
            self.weight.grad,
            self._ids.reshape(-1),
            grad.reshape(-1, grad.shape[-1]),
        )
        return None  # ids carry no gradient


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "layernorm"):
        super().__init__()
        self.gamma = Parameter(np.ones(dim), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim), name=f"{name}.beta")
        self.eps = eps
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normed = (x - mean) * inv_std
        self._cache = (normed, inv_std)
        return normed * self.gamma.value + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normed, inv_std = self._cache
        dim = normed.shape[-1]
        self.gamma.grad += (grad * normed).reshape(-1, dim).sum(axis=0)
        self.beta.grad += grad.reshape(-1, dim).sum(axis=0)
        g = grad * self.gamma.value
        # d/dx of (x - mean) * inv_std
        term1 = g
        term2 = g.mean(axis=-1, keepdims=True)
        term3 = normed * (g * normed).mean(axis=-1, keepdims=True)
        return (term1 - term2 - term3) * inv_std


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, seed: SeedLike = 0, name: str = "dropout"):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = derive_rng(seed, "dropout", name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # x*x avoids np.power's generic pow kernel, the hottest leaf of the
        # pretraining profile; the squared term is reused by backward.
        x2 = x * x
        inner = self._C * (x + 0.044715 * (x2 * x))
        tanh = np.tanh(inner)
        self._cache = (x, x2, tanh)
        return 0.5 * x * (1.0 + tanh)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, x2, tanh = self._cache
        sech2 = 1.0 - tanh * tanh
        d_inner = self._C * (1.0 + 3 * 0.044715 * x2)
        local = 0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner
        return grad * local


__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
]
