"""Minimal neural-network substrate in numpy with manual backpropagation.

Supports the fine-tuning paradigm (mini-BERT in :mod:`repro.bert`) and the
LSTM classifier (:mod:`repro.ml.lstm`).  The API is deliberately small:
layers cache their forward inputs and implement ``backward(grad)``;
parameters accumulate gradients; optimizers step over parameter lists.
"""

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    Parameter,
)
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import EncoderBlock, TransformerEncoder, TransformerConfig
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD, Adam, clip_gradients

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "MultiHeadSelfAttention",
    "EncoderBlock",
    "TransformerEncoder",
    "TransformerConfig",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "clip_gradients",
]
