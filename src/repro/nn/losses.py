"""Loss functions returning (scalar loss, gradient w.r.t. logits)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy over the last axis.

    ``logits`` has shape ``(..., n_classes)``; ``labels`` the matching
    leading shape.  Positions whose label equals ``ignore_index`` contribute
    neither loss nor gradient (used for unmasked MLM positions and padding).

    Returns ``(loss, grad)`` with ``grad`` shaped like ``logits`` and already
    divided by the number of contributing positions.
    """
    labels = np.asarray(labels, dtype=np.int64)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)

    if ignore_index is not None:
        active = flat_labels != ignore_index
    else:
        active = np.ones(flat_labels.shape, dtype=bool)
    n_active = int(active.sum())
    if n_active == 0:
        return 0.0, np.zeros_like(logits)

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)

    safe_labels = np.where(active, flat_labels, 0)
    picked = probs[np.arange(flat_labels.size), safe_labels]
    losses = -np.log(np.maximum(picked, 1e-12))
    loss = float(losses[active].mean())

    grad = probs.copy()
    grad[np.arange(flat_labels.size), safe_labels] -= 1.0
    grad[~active] = 0.0
    grad /= n_active
    return loss, grad.reshape(logits.shape)


__all__ = ["softmax_cross_entropy"]
