"""Optimizers over :class:`~repro.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.layers import Parameter


def clip_gradients(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(
        np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
    )
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad *= scale
    return total


class SGD:
    """Plain SGD with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self):
        for parameter, velocity in zip(self.parameters, self._velocity):
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.value -= self.lr * velocity
            else:
                parameter.value -= self.lr * parameter.grad

    def zero_grad(self):
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015) — the paper's fine-tuning optimizer."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            # In-place refactor of lr * (m/bias1) / (sqrt(v/bias2) + eps);
            # multiplication commutes bitwise, so the update is unchanged.
            denom = np.sqrt(v / bias2)
            denom += self.eps
            update = m / bias1
            update *= self.lr
            update /= denom
            parameter.value -= update

    def zero_grad(self):
        for parameter in self.parameters:
            parameter.zero_grad()


__all__ = ["SGD", "Adam", "clip_gradients"]
