"""Transformer encoder (pre-LayerNorm) built from the nn layers.

The encoder exposes *all* layer outputs from its forward pass because the
paper's PubmedBERT-embedding model sums the last four hidden layers of the
``[CLS]`` token (Section 2.3); :class:`repro.embeddings.contextual` consumes
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear, Module
from repro.utils.rng import SeedLike, derive_rng, stable_hash


@dataclass(frozen=True)
class TransformerConfig:
    """Mini-BERT encoder shape.

    Defaults give a ~200k-parameter model that pretrains in seconds on the
    synthetic corpus while preserving the architecture of the real thing.
    """

    vocab_size: int = 2_000
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    max_len: int = 64
    dropout: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.vocab_size < 5:
            raise ValueError("vocab_size too small")
        if self.d_model % self.n_heads:
            raise ValueError("d_model must be divisible by n_heads")
        if self.n_layers < 1 or self.d_ff < 1 or self.max_len < 2:
            raise ValueError("n_layers, d_ff, max_len must be positive")


class FeedForward(Module):
    """Position-wise feed-forward block: Linear → GELU → Linear."""

    def __init__(self, d_model: int, d_ff: int, seed: SeedLike = 0,
                 name: str = "ffn"):
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, seed=seed, name=f"{name}.fc1")
        self.act = GELU()
        self.fc2 = Linear(d_ff, d_model, seed=seed, name=f"{name}.fc2")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2.forward(self.act.forward(self.fc1.forward(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class EncoderBlock(Module):
    """Pre-LN transformer block: x + Attn(LN(x)); x + FFN(LN(x))."""

    def __init__(self, config: TransformerConfig, index: int):
        super().__init__()
        seed = stable_hash(config.seed, "block", index)
        self.ln1 = LayerNorm(config.d_model, name=f"block{index}.ln1")
        self.attn = MultiHeadSelfAttention(
            config.d_model, config.n_heads, seed=seed, name=f"block{index}.attn"
        )
        self.drop1 = Dropout(config.dropout, seed=seed, name=f"block{index}.drop1")
        self.ln2 = LayerNorm(config.d_model, name=f"block{index}.ln2")
        self.ffn = FeedForward(
            config.d_model, config.d_ff, seed=seed, name=f"block{index}.ffn"
        )
        self.drop2 = Dropout(config.dropout, seed=seed, name=f"block{index}.drop2")

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
        x = x + self.drop1.forward(self.attn.forward(self.ln1.forward(x), mask))
        x = x + self.drop2.forward(self.ffn.forward(self.ln2.forward(x)))
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad_ffn = self.ln2.backward(
            self.ffn.backward(self.drop2.backward(grad))
        )
        grad = grad + grad_ffn
        grad_attn = self.ln1.backward(
            self.attn.backward(self.drop1.backward(grad))
        )
        return grad + grad_attn


class TransformerEncoder(Module):
    """Token + position embeddings followed by pre-LN encoder blocks.

    :meth:`forward` returns ``(final, all_layers)`` where ``all_layers`` is
    the list of per-block outputs *after* the final LayerNorm has been applied
    to the last element, so ``all_layers[-1] is final``.
    """

    def __init__(self, config: TransformerConfig):
        super().__init__()
        self.config = config
        self.token_emb = Embedding(
            config.vocab_size, config.d_model, seed=config.seed, name="token_emb"
        )
        self.pos_emb = Embedding(
            config.max_len, config.d_model, seed=config.seed + 1, name="pos_emb"
        )
        self.drop = Dropout(config.dropout, seed=config.seed, name="emb_drop")
        self.blocks = [EncoderBlock(config, i) for i in range(config.n_layers)]
        self.final_ln = LayerNorm(config.d_model, name="final_ln")

    def forward(
        self, ids: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(f"ids must be (batch, seq), got shape {ids.shape}")
        batch, seq = ids.shape
        if seq > self.config.max_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_len {self.config.max_len}"
            )
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.token_emb.forward(ids) + self.pos_emb.forward(positions)
        x = self.drop.forward(x)
        layers: List[np.ndarray] = []
        for block in self.blocks:
            x = block.forward(x, mask)
            layers.append(x)
        final = self.final_ln.forward(x)
        layers[-1] = final
        return final, layers

    def backward(self, grad: np.ndarray) -> None:
        grad = self.final_ln.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        grad = self.drop.backward(grad)
        self.token_emb.backward(grad)
        self.pos_emb.backward(grad)


__all__ = ["TransformerConfig", "FeedForward", "EncoderBlock", "TransformerEncoder"]
