"""The Lab's stage graph: every substrate of the apparatus as a node.

This module is the single place that knows how each expensive object of the
benchmark apparatus is built, which slice of
:class:`~repro.core.experiment.LabConfig` feeds it, and how it persists.
:class:`~repro.core.experiment.Lab` is a thin facade over this graph — its
public attributes (``lab.ontology``, ``lab.embeddings``, ``lab.dataset(1)``,
...) materialise stages and memoise the results.

Stage lineup (deps in parentheses)::

    ontology
    corpus-chemistry / corpus-generic / corpus-biomedical   (ontology)
    wordpiece                                               (corpus-chemistry)
    bert                                 (corpus-chemistry, wordpiece)
    embedding-Random
    glove-cooccur-{s}                                       (corpus-generic)
    w2v-pairs-{s}                                           (corpus-chemistry)
    glove-chem-cooccur-{s}               (corpus-chemistry, embedding-GloVe)
    embedding-GloVe                    (corpus-generic, glove-cooccur-{s}*)
    embedding-W2V-Chem                (corpus-chemistry, w2v-pairs-{s}*)
    embedding-GloVe-Chem  (corpus-chemistry, embedding-GloVe, glove-chem-cooccur-{s}*)
    embedding-BioWordVec                                    (corpus-biomedical)
    embedding-PubmedBERT                                    (bert)      [derived]
    dataset-{1,2,3}                                         (ontology)
    ml-split-{t} / ft-split-{t}                             (dataset-{t})
    task-filter-{static embedding}             (ontology, embedding-{e})
    forest-{t}-{e}-{a}        (ml-split-{t}, embedding-{e}[, task-filter-{e}])
    fine-tuned-{t}                                  (bert, ft-split-{t})

All stages except the trained classifiers, the random baseline and the
contextual BERT wrapper carry save/load hooks, so a populated artifact
store turns a cold benchmark run into a sequence of loads.

Determinism note: the ``bert`` stage *canonicalises* the pretrained model by
round-tripping it through its serialised form even when no store is
configured.  Pretraining advances the per-layer dropout RNGs; without the
round-trip, fine-tuning from a freshly pretrained model and from a
store-loaded one would draw different dropout masks and diverge.  After
canonicalisation the artifact is identical either way, so warm and cold
runs produce byte-identical tables.
"""

from __future__ import annotations

import tempfile
from functools import partial
from pathlib import Path
from typing import Dict, List

from repro.adaptation.naive import naive_token_filter
from repro.adaptation.task_oriented import (
    TaskOrientedConfig,
    select_stop_tokens,
    stopword_filter,
)
from repro.bert.finetune import fine_tune
from repro.bert.model import BertConfig
from repro.bert.pretrain import PretrainConfig, pretrain_mlm
from repro.bert.wordpiece import WordPieceTokenizer, train_wordpiece
from repro.core.datasets import (
    DatasetSplit,
    build_task_dataset,
    train_test_split_9_1,
    train_val_test_split_8_1_1,
)
from repro.core.tasks import positive_triples
from repro.embeddings.base import (
    build_pairs,
    pair_shard_arrays,
    sentences_to_ids,
    shard_bounds,
)
from repro.embeddings.contextual import ContextualEmbeddings
from repro.embeddings.fasttext import FastText, FastTextConfig
from repro.embeddings.glove import (
    GloVe,
    GloVeConfig,
    _joined_vocabulary,
    cooccur_shard,
    merge_cooccurrence,
)
from repro.embeddings.random import RandomEmbeddings
from repro.embeddings.registry import STATIC_MODEL_NAMES
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.ml.features import FeatureExtractor
from repro.ml.forest import RandomForest
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like
from repro.pipeline import serialize
from repro.pipeline.graph import StageGraph
from repro.pipeline.stage import Stage
from repro.pipeline.arrays import load_array, save_array
from repro.text.corpus import (
    CorpusConfig,
    corpus_sentences,
    generate_chemistry_corpus,
    generate_generic_corpus,
)
from repro.text.vocab import build_vocabulary
from repro.utils.persistence import (
    load_bert,
    load_embeddings_entry,
    load_fasttext_entry,
    save_bert,
    save_embeddings_entry,
    save_fasttext_entry,
)

#: The shared ``min_count`` of the embedding registry (a code constant, not
#: a LabConfig knob); changes go through the stage version tags.
EMBEDDING_MIN_COUNT = 2

#: Fixed shard count for the embedding precompute sub-stages (co-occurrence
#: tables and skip-gram pair streams).  A *code constant*, deliberately not
#: a LabConfig knob: shard boundaries and shard-local RNG streams depend on
#: the count, and keeping it fixed is what makes ``repro cache warm
#: --jobs N`` byte-identical to a sequential warm — jobs only decide how
#: many shards build concurrently, never what any shard contains.
EMBEDDING_SHARDS = 4

TASKS = (1, 2, 3)

#: Adaptations without per-embedding state (cf. Lab.adaptation_filter).
_SIMPLE_ADAPTATIONS = ("none", "naive")


# -- persistence hooks -------------------------------------------------------


def _save_payload(to_payload):
    def save(artifact, entry_dir: Path) -> None:
        serialize.write_json(entry_dir / "artifact.json", to_payload(artifact))

    return save


def _load_payload(from_payload, expected_format):
    def load(entry_dir: Path, inputs: Dict[str, object]):
        return from_payload(
            serialize.read_json(entry_dir / "artifact.json", expected_format)
        )

    return load


def _save_static_embedding(model, entry_dir: Path) -> None:
    save_embeddings_entry(model, entry_dir)


def _load_static_embedding(entry_dir: Path, inputs):
    return load_embeddings_entry(entry_dir)


def _save_fasttext_embedding(model, entry_dir: Path) -> None:
    save_fasttext_entry(model, entry_dir)


def _load_fasttext_embedding(entry_dir: Path, inputs):
    return load_fasttext_entry(entry_dir)


def _save_array_tuple(*names):
    """Save hook for artifacts that are tuples of numpy arrays; each array
    becomes a standalone (mmap-eligible) ``.npy`` file."""

    def save(artifact, entry_dir: Path) -> None:
        for name, array in zip(names, artifact):
            save_array(entry_dir / f"{name}.npy", array)

    return save


def _load_array_tuple(*names):
    def load(entry_dir: Path, inputs):
        return tuple(load_array(entry_dir / f"{name}.npy") for name in names)

    return load


def _save_bert_model(model, entry_dir: Path) -> None:
    save_bert(model, entry_dir / "model.npz")
    serialize.write_json(
        entry_dir / "pretrain.json",
        {
            "format": "repro-bert-pretrain-v1",
            "losses": [float(x) for x in getattr(model, "pretrain_losses", [])],
        },
    )


def _load_bert_model(entry_dir: Path, inputs):
    model = load_bert(entry_dir / "model.npz")
    payload = serialize.read_json(
        entry_dir / "pretrain.json", "repro-bert-pretrain-v1"
    )
    model.pretrain_losses = list(payload["losses"])
    return model


def _save_wordpiece(tokenizer, entry_dir: Path) -> None:
    serialize.write_json(
        entry_dir / "artifact.json",
        {
            "format": serialize.PIECES_FORMAT,
            "pieces": [tokenizer.piece_of(i) for i in range(len(tokenizer))],
        },
    )


def _load_wordpiece(entry_dir: Path, inputs):
    payload = serialize.read_json(
        entry_dir / "artifact.json", serialize.PIECES_FORMAT
    )
    return WordPieceTokenizer([str(p) for p in payload["pieces"]])


# -- builders ----------------------------------------------------------------


def _build_ontology(lab, inputs):
    return synthesize_chebi_like(
        SynthesisConfig(
            n_chemical_entities=lab.config.n_chemical_entities,
            seed=lab.config.ontology_seed,
        )
    )


def _corpus_config(config, seed_offset: int) -> CorpusConfig:
    return CorpusConfig(
        n_documents=config.corpus_documents,
        sentences_per_document=config.corpus_sentences,
        statement_coverage=config.statement_coverage,
        seed=config.corpus_seed + seed_offset,
    )


def _build_chemistry_corpus(lab, inputs):
    return corpus_sentences(
        generate_chemistry_corpus(
            inputs["ontology"], _corpus_config(lab.config, 0)
        )
    )


def _build_generic_corpus(lab, inputs):
    return corpus_sentences(
        generate_generic_corpus(
            inputs["ontology"],
            _corpus_config(lab.config, 1),
            chemistry_fraction=lab.config.generic_chemistry_fraction,
        )
    )


def _build_biomedical_corpus(lab, inputs):
    return corpus_sentences(
        generate_generic_corpus(
            inputs["ontology"],
            _corpus_config(lab.config, 2),
            chemistry_fraction=lab.config.biomedical_chemistry_fraction,
        )
    )


def _build_wordpiece(lab, inputs):
    return train_wordpiece(
        inputs["corpus-chemistry"], vocab_size=lab.config.wordpiece_vocab
    )


def _build_bert(lab, inputs):
    config = lab.config
    bert_config = BertConfig(
        d_model=config.bert_d_model,
        n_heads=config.bert_heads,
        n_layers=config.bert_layers,
        d_ff=config.bert_d_ff,
        max_len=config.bert_max_len,
        seed=config.seed,
    )
    sentences = inputs["corpus-chemistry"][: config.pretrain_sentences]
    model = pretrain_mlm(
        sentences,
        inputs["wordpiece"],
        bert_config,
        PretrainConfig(epochs=config.pretrain_epochs, seed=config.seed),
    )
    # Canonicalise RNG state via a serialisation round-trip (module docstring).
    # statcheck: ignore[PUR002] - scratch dir vanishes before return; output depends only on inputs
    with tempfile.TemporaryDirectory(prefix="repro-bert-") as tmp:
        _save_bert_model(model, Path(tmp))
        return _load_bert_model(Path(tmp), inputs)


def _build_random_embedding(lab, inputs):
    return RandomEmbeddings(dim=lab.config.embedding_dim, seed=lab.config.seed)


def _glove_config(config) -> GloVeConfig:
    """Shared by the GloVe/GloVe-Chem builders and their co-occurrence
    shard sub-stages, so both sides agree on window and min_count."""
    return GloVeConfig(
        dim=config.embedding_dim,
        epochs=config.glove_epochs,
        min_count=EMBEDDING_MIN_COUNT,
        seed=config.seed,
    )


def _w2v_config(config) -> Word2VecConfig:
    """Shared by the W2V-Chem builder and its pair-stream sub-stages."""
    return Word2VecConfig(
        dim=config.embedding_dim,
        epochs=config.embedding_epochs,
        min_count=EMBEDDING_MIN_COUNT,
        seed=config.seed,
    )


def _merged_cooccurrence(inputs, prefix: str, vocab_size: int):
    """Merge shard artifacts ``{prefix}-{0..S}`` into COO arrays."""
    codes, values = merge_cooccurrence(
        [inputs[f"{prefix}-{shard}"] for shard in range(EMBEDDING_SHARDS)]
    )
    return codes // vocab_size, codes % vocab_size, values


def _build_glove_cooccur_shard(shard: int, lab, inputs):
    sentences = inputs["corpus-generic"]
    config = _glove_config(lab.config)
    vocabulary = build_vocabulary(sentences, min_count=config.min_count)
    sentence_ids = sentences_to_ids(sentences, vocabulary)
    start, stop = shard_bounds(len(sentence_ids), EMBEDDING_SHARDS)[shard]
    return cooccur_shard(
        sentence_ids[start:stop], config.window, len(vocabulary)
    )


def _build_glove_chem_cooccur_shard(shard: int, lab, inputs):
    sentences = inputs["corpus-chemistry"]
    config = _glove_config(lab.config)
    vocabulary = _joined_vocabulary(
        sentences, config.min_count, inputs["embedding-GloVe"]
    )
    sentence_ids = sentences_to_ids(sentences, vocabulary)
    start, stop = shard_bounds(len(sentence_ids), EMBEDDING_SHARDS)[shard]
    return cooccur_shard(
        sentence_ids[start:stop], config.window, len(vocabulary)
    )


def _build_w2v_pairs_shard(shard: int, lab, inputs):
    sentences = inputs["corpus-chemistry"]
    config = _w2v_config(lab.config)
    vocabulary = build_vocabulary(sentences, min_count=config.min_count)
    sentence_ids = sentences_to_ids(sentences, vocabulary)
    return pair_shard_arrays(
        sentence_ids, config.window, config.seed, shard, EMBEDDING_SHARDS
    )


def _build_glove(lab, inputs):
    sentences = inputs["corpus-generic"]
    config = _glove_config(lab.config)
    vocabulary = build_vocabulary(sentences, min_count=config.min_count)
    return GloVe.train(
        sentences,
        config,
        name="GloVe",
        cooccurrence=_merged_cooccurrence(
            inputs, "glove-cooccur", len(vocabulary)
        ),
    )


def _build_w2v_chem(lab, inputs):
    config = _w2v_config(lab.config)
    pairs = build_pairs(
        [],
        config.window,
        config.seed,
        n_shards=EMBEDDING_SHARDS,
        precomputed=[
            inputs[f"w2v-pairs-{shard}"] for shard in range(EMBEDDING_SHARDS)
        ],
    )
    return Word2Vec.train(
        inputs["corpus-chemistry"], config, name="W2V-Chem", pairs=pairs
    )


def _build_glove_chem(lab, inputs):
    sentences = inputs["corpus-chemistry"]
    config = _glove_config(lab.config)
    vocabulary = _joined_vocabulary(
        sentences, config.min_count, inputs["embedding-GloVe"]
    )
    return GloVe.train(
        sentences,
        config,
        name="GloVe-Chem",
        init_from=inputs["embedding-GloVe"],
        cooccurrence=_merged_cooccurrence(
            inputs, "glove-chem-cooccur", len(vocabulary)
        ),
    )


def _build_biowordvec(lab, inputs):
    return FastText.train(
        inputs["corpus-biomedical"],
        FastTextConfig(
            dim=lab.config.embedding_dim,
            epochs=lab.config.embedding_epochs,
            min_count=EMBEDDING_MIN_COUNT,
            seed=lab.config.seed,
        ),
        name="BioWordVec",
        shards=EMBEDDING_SHARDS,
    )


def _build_pubmedbert(lab, inputs):
    return ContextualEmbeddings(inputs["bert"], name="PubmedBERT")


def _build_dataset(task: int, lab, inputs):
    return build_task_dataset(
        inputs["ontology"], task, seed=lab.config.dataset_seed
    )


def _build_ml_split(task: int, lab, inputs):
    from repro.core.experiment import (
        ML_TEST_SPLIT_SEED,
        ML_TRAIN_SPLIT_SEED,
        subsample,
    )

    split = train_test_split_9_1(inputs[f"dataset-{task}"], seed=lab.config.seed)
    return DatasetSplit(
        train=subsample(
            split.train, lab.config.max_train, seed=ML_TRAIN_SPLIT_SEED
        ),
        test=subsample(split.test, lab.config.max_test, seed=ML_TEST_SPLIT_SEED),
    )


def _build_ft_split(task: int, lab, inputs):
    from repro.core.experiment import (
        FT_TEST_SPLIT_SEED,
        FT_TRAIN_SPLIT_SEED,
        FT_VALIDATION_SPLIT_SEED,
        subsample,
    )

    split = train_val_test_split_8_1_1(
        inputs[f"dataset-{task}"], seed=lab.config.seed
    )
    return DatasetSplit(
        train=subsample(
            split.train, lab.config.max_train, seed=FT_TRAIN_SPLIT_SEED
        ),
        test=subsample(split.test, lab.config.max_test, seed=FT_TEST_SPLIT_SEED),
        validation=subsample(
            split.validation, lab.config.max_test,
            seed=FT_VALIDATION_SPLIT_SEED,
        ),
    )


def _build_stop_tokens(embedding_name: str, lab, inputs):
    positives = positive_triples(inputs["ontology"])
    return select_stop_tokens(
        positives,
        inputs[f"embedding-{embedding_name}"],
        TaskOrientedConfig(seed=lab.config.seed),
    )


def _build_forest(task: int, embedding_name: str, adaptation: str, lab, inputs):
    split = inputs[f"ml-split-{task}"]
    if adaptation == "none":
        token_filter = None
    elif adaptation == "naive":
        token_filter = naive_token_filter()
    else:
        token_filter = stopword_filter(inputs[f"task-filter-{embedding_name}"])
    extractor = FeatureExtractor(
        inputs[f"embedding-{embedding_name}"], token_filter
    )
    forest = RandomForest(lab.rf_config()).fit(
        extractor.matrix(split.train.triples),
        extractor.labels(split.train.triples),
    )
    return extractor, forest


def _build_fine_tuned(task: int, lab, inputs):
    split = inputs[f"ft-split-{task}"]
    return fine_tune(
        inputs["bert"],
        split.train.triples,
        lab.ft_config(),
        validation_triples=(
            split.validation.triples if split.validation else None
        ),
    )


# -- the graph ---------------------------------------------------------------


def build_lab_graph() -> StageGraph:
    """Assemble (and validate) the full Lab stage graph."""
    graph = StageGraph()

    graph.register(
        Stage(
            name="ontology",
            build=_build_ontology,
            config_slice=lambda c: (c.n_chemical_entities, c.ontology_seed),
            save=_save_payload(serialize.ontology_to_payload),
            load=_load_payload(
                serialize.ontology_from_payload, serialize.ONTOLOGY_FORMAT
            ),
        )
    )

    corpus_slice = lambda c: (  # noqa: E731 - shared base slice
        c.corpus_documents,
        c.corpus_sentences,
        c.statement_coverage,
        c.corpus_seed,
    )
    corpus_save = _save_payload(serialize.sentences_to_payload)
    corpus_load = _load_payload(
        serialize.sentences_from_payload, serialize.CORPUS_FORMAT
    )
    graph.register(
        Stage(
            name="corpus-chemistry",
            build=_build_chemistry_corpus,
            config_slice=corpus_slice,
            deps=("ontology",),
            save=corpus_save,
            load=corpus_load,
        )
    )
    graph.register(
        Stage(
            name="corpus-generic",
            build=_build_generic_corpus,
            config_slice=lambda c: corpus_slice(c)
            + (c.generic_chemistry_fraction,),
            deps=("ontology",),
            save=corpus_save,
            load=corpus_load,
        )
    )
    graph.register(
        Stage(
            name="corpus-biomedical",
            build=_build_biomedical_corpus,
            config_slice=lambda c: corpus_slice(c)
            + (c.biomedical_chemistry_fraction,),
            deps=("ontology",),
            save=corpus_save,
            load=corpus_load,
        )
    )

    graph.register(
        Stage(
            name="wordpiece",
            build=_build_wordpiece,
            config_slice=lambda c: (c.wordpiece_vocab,),
            deps=("corpus-chemistry",),
            save=_save_wordpiece,
            load=_load_wordpiece,
        )
    )
    graph.register(
        Stage(
            name="bert",
            build=_build_bert,
            config_slice=lambda c: (
                c.bert_d_model,
                c.bert_heads,
                c.bert_layers,
                c.bert_d_ff,
                c.bert_max_len,
                c.pretrain_epochs,
                c.pretrain_sentences,
                c.seed,
            ),
            deps=("corpus-chemistry", "wordpiece"),
            # version 2: fused QKV attention + batched MLM path shift the
            # trained parameters by float ulps (re-goldened).
            version="2",
            save=_save_bert_model,
            load=_load_bert_model,
        )
    )

    # Embedding precompute sub-stages: deterministic sentence-index shards
    # of the GloVe co-occurrence tables and the word2vec pair stream.  All
    # are persistable, so the process-pool scheduler fans them out and a
    # warm store turns an embedding rebuild into shard loads + a merge.
    shard_specs = {
        # prefix: (builder, config_slice, deps)
        "glove-cooccur": (
            _build_glove_cooccur_shard,
            lambda c: (),
            ("corpus-generic",),
        ),
        "glove-chem-cooccur": (
            _build_glove_chem_cooccur_shard,
            lambda c: (c.embedding_dim, c.glove_epochs, c.seed),
            ("corpus-chemistry", "embedding-GloVe"),
        ),
        "w2v-pairs": (
            _build_w2v_pairs_shard,
            lambda c: (c.seed,),
            ("corpus-chemistry",),
        ),
    }
    shard_files = {
        "glove-cooccur": ("codes", "weights"),
        "glove-chem-cooccur": ("codes", "weights"),
        "w2v-pairs": ("centers", "contexts"),
    }
    for prefix, (builder, config_slice, deps) in shard_specs.items():
        names = shard_files[prefix]
        for shard in range(EMBEDDING_SHARDS):
            graph.register(
                Stage(
                    name=f"{prefix}-{shard}",
                    build=partial(builder, shard),
                    config_slice=config_slice,
                    deps=deps,
                    save=_save_array_tuple(*names),
                    load=_load_array_tuple(*names),
                )
            )

    def _shard_deps(prefix: str):
        return tuple(f"{prefix}-{shard}" for shard in range(EMBEDDING_SHARDS))

    embedding_specs = {
        # name: (builder, config_slice, deps, persistence)
        "Random": (
            _build_random_embedding,
            lambda c: (c.embedding_dim, c.seed),
            (),
            None,  # reconstructing from (dim, seed) is cheaper than any load
        ),
        "GloVe": (
            _build_glove,
            lambda c: (c.embedding_dim, c.glove_epochs, c.seed),
            ("corpus-generic",) + _shard_deps("glove-cooccur"),
            "static",
        ),
        "W2V-Chem": (
            _build_w2v_chem,
            lambda c: (c.embedding_dim, c.embedding_epochs, c.seed),
            ("corpus-chemistry",) + _shard_deps("w2v-pairs"),
            "static",
        ),
        "GloVe-Chem": (
            _build_glove_chem,
            lambda c: (c.embedding_dim, c.glove_epochs, c.seed),
            ("corpus-chemistry", "embedding-GloVe")
            + _shard_deps("glove-chem-cooccur"),
            "static",
        ),
        "BioWordVec": (
            _build_biowordvec,
            lambda c: (c.embedding_dim, c.embedding_epochs, c.seed),
            ("corpus-biomedical",),
            "fasttext",
        ),
        "PubmedBERT": (
            _build_pubmedbert,
            lambda c: (),
            ("bert",),
            None,  # a wrapper around the (persisted) bert artifact
        ),
    }
    for name, (builder, config_slice, deps, persistence) in embedding_specs.items():
        save = load = None
        if persistence == "static":
            save, load = _save_static_embedding, _load_static_embedding
        elif persistence == "fasttext":
            save, load = _save_fasttext_embedding, _load_fasttext_embedding
        graph.register(
            Stage(
                name=f"embedding-{name}",
                build=builder,
                config_slice=config_slice,
                deps=deps,
                # version 2: sharded precompute + sorted-reduction scatter
                # updates reordered float accumulation (re-goldened), and
                # store entries moved to the mmap-backed .npy layout.
                version="2" if persistence else "1",
                save=save,
                load=load,
            )
        )

    dataset_save = _save_payload(serialize.dataset_to_payload)
    dataset_load = _load_payload(
        serialize.dataset_from_payload, serialize.DATASET_FORMAT
    )
    split_save = _save_payload(serialize.split_to_payload)
    split_load = _load_payload(
        serialize.split_from_payload, serialize.SPLIT_FORMAT
    )
    for task in TASKS:
        graph.register(
            Stage(
                name=f"dataset-{task}",
                build=partial(_build_dataset, task),
                config_slice=lambda c: (c.dataset_seed,),
                deps=("ontology",),
                save=dataset_save,
                load=dataset_load,
            )
        )
        graph.register(
            Stage(
                name=f"ml-split-{task}",
                build=partial(_build_ml_split, task),
                config_slice=lambda c: (c.seed, c.max_train, c.max_test),
                deps=(f"dataset-{task}",),
                save=split_save,
                load=split_load,
            )
        )
        graph.register(
            Stage(
                name=f"ft-split-{task}",
                build=partial(_build_ft_split, task),
                config_slice=lambda c: (c.seed, c.max_train, c.max_test),
                deps=(f"dataset-{task}",),
                save=split_save,
                load=split_load,
            )
        )

    for embedding_name in STATIC_MODEL_NAMES:
        graph.register(
            Stage(
                name=f"task-filter-{embedding_name}",
                build=partial(_build_stop_tokens, embedding_name),
                config_slice=lambda c: (c.seed,),
                deps=("ontology", f"embedding-{embedding_name}"),
                save=_save_payload(serialize.tokens_to_payload),
                load=_load_payload(
                    serialize.tokens_from_payload, serialize.TOKENS_FORMAT
                ),
            )
        )

    for task in TASKS:
        for embedding_name in embedding_specs:
            adaptations = list(_SIMPLE_ADAPTATIONS)
            if embedding_name in STATIC_MODEL_NAMES:
                adaptations.append("task-oriented")
            for adaptation in adaptations:
                deps = [f"ml-split-{task}", f"embedding-{embedding_name}"]
                if adaptation == "task-oriented":
                    deps.append(f"task-filter-{embedding_name}")
                graph.register(
                    Stage(
                        name=f"forest-{task}-{embedding_name}-{adaptation}",
                        build=partial(
                            _build_forest, task, embedding_name, adaptation
                        ),
                        config_slice=lambda c: (
                            c.rf_estimators,
                            c.rf_max_depth,
                            c.seed,
                        ),
                        deps=tuple(deps),
                    )
                )
        graph.register(
            Stage(
                name=f"fine-tuned-{task}",
                build=partial(_build_fine_tuned, task),
                config_slice=lambda c: (c.ft_epochs, c.ft_learning_rate, c.seed),
                deps=("bert", f"ft-split-{task}"),
            )
        )

    graph.validate()
    return graph


#: Names of the persistable substrate stages — the ones a warm store turns
#: into loads (used by the warm helpers, the CLI and CI assertions).
def substrate_stage_names(graph: StageGraph) -> List[str]:
    return [stage.name for stage in graph if stage.persistable]


__all__ = [
    "EMBEDDING_MIN_COUNT",
    "EMBEDDING_SHARDS",
    "TASKS",
    "build_lab_graph",
    "substrate_stage_names",
]
