"""Stage definitions: the nodes of the Lab's explicit build graph.

A :class:`Stage` names one substrate of the experimental apparatus (the
ontology, a corpus, an embedding model, a task dataset, a trained
classifier, ...) together with

* its **dependencies** (other stage names),
* the **configuration slice** of :class:`~repro.core.experiment.LabConfig`
  that feeds it (anything outside the slice cannot change its output),
* a **code version tag**, bumped whenever the builder's behaviour changes,
* a **builder** producing the artifact from the Lab config and the dep
  artifacts, and
* optional **save/load hooks** that persist the artifact into a
  content-addressed :class:`~repro.pipeline.store.ArtifactStore` entry.

Stages without save/load hooks are *derived*: either trivially cheap
wrappers (random embeddings, the contextual wrapper around the pretrained
BERT) or in-memory-only models; they are rebuilt from their (possibly
cached) inputs each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

#: The slice of LabConfig a stage's output depends on, as an ordered tuple.
ConfigSlice = Callable[[Any], Tuple]

#: Builds the artifact.  Receives the owning Lab (for config access and
#: helper constructors) and the dict of dependency artifacts keyed by stage
#: name.  Builders must consume upstream artifacts through ``inputs`` only,
#: so the declared dependencies stay honest.
Builder = Callable[[Any, Dict[str, Any]], Any]

#: Persists the artifact into an (empty, private) store entry directory.
Saver = Callable[[Any, Path], None]

#: Restores the artifact from a store entry directory; receives the dep
#: artifacts as well so derived wrappers can re-attach live objects.
Loader = Callable[[Path, Dict[str, Any]], Any]


class StageError(RuntimeError):
    """A stage failed to build; carries the failing stage's name.

    Raised by the scheduler so that one broken stage surfaces with its
    identity attached instead of an anonymous traceback from deep inside a
    worker, and so sibling stages are not poisoned by the failure.
    """

    def __init__(self, stage: str, message: str):
        super().__init__(f"stage {stage!r} failed: {message}")
        self.stage = stage


@dataclass(frozen=True)
class Stage:
    """One named node of the stage graph (see module docstring)."""

    name: str
    build: Builder
    config_slice: ConfigSlice = field(default=lambda config: ())
    deps: Tuple[str, ...] = ()
    version: str = "1"
    save: Optional[Saver] = None
    load: Optional[Loader] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if (self.save is None) != (self.load is None):
            raise ValueError(
                f"stage {self.name!r} must define both save and load, or neither"
            )

    @property
    def persistable(self) -> bool:
        """Whether the stage's artifact can live in an on-disk store."""
        return self.save is not None


__all__ = ["Stage", "StageError", "ConfigSlice", "Builder", "Saver", "Loader"]
