"""Parallel execution of the stage graph.

The :class:`StageScheduler` topologically walks the Lab's stage graph and
materialises every stage a set of targets needs, running ready stages (all
dependencies satisfied) concurrently.  Two executors are offered:

``thread``
    A ``ThreadPoolExecutor`` driving ``lab.materialize`` directly.  The
    Lab's per-stage locks make this safe; artifacts land in the Lab memo
    (and the store, when configured).  This is the default — most builders
    are numpy-bound and release work to BLAS, and it works with or without
    an artifact store.

``process``
    A ``ProcessPoolExecutor`` for CPU-heavy builds.  Requires an artifact
    store: each worker process constructs its *own* Lab against the shared
    store, builds one persistable stage, and persists it; the parent then
    materialises the same stage as a store hit.  Only persistable stages
    are dispatched to workers (the persistable subgraph is closed under
    dependencies, so workers never need an unpersistable input); derived
    stages are materialised in the parent afterwards.

Determinism: results are schedule-independent.  Every builder derives its
randomness from the Lab configuration alone (never from global state or
sibling artifacts), so any execution order — serial, threaded, or across
processes — yields byte-identical artifacts.  The scheduler's wave order is
itself deterministic (lexicographic among ready stages) so manifests are
reproducible too.

Failure isolation: a raising stage is recorded as ``failed`` and its
transitive dependents as ``skipped``; *sibling* branches keep running to
completion.  Unless ``raise_on_error=False``, the scheduler then raises a
:class:`~repro.pipeline.stage.StageError` naming the (alphabetically first)
failed stage, with the original exception chained.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.obs.trace import get_tracer, span
from repro.pipeline.stage import StageError

#: Execution backends accepted by :meth:`StageScheduler.run`.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class StageResult:
    """Outcome of one stage in a scheduler run."""

    stage: str
    status: str  # "ok" | "failed" | "skipped"
    duration_s: float = 0.0
    error: Optional[str] = None


def _process_build_stage(config_kwargs: dict, stage_name: str) -> str:
    """Worker entry point: build one persistable stage into the shared store.

    Runs in a separate process; must be importable at module level.  The
    worker's Lab recomputes identical content-addressed keys from the same
    configuration, so its ``materialize`` either finds the store entry
    already complete (another worker won) or builds and persists it.
    """
    from repro.core.experiment import Lab, LabConfig

    lab = Lab(LabConfig(**config_kwargs))
    if lab.store is None:  # pragma: no cover - guarded by the parent
        raise StageError(stage_name, "process executor requires an artifact store")
    lab.materialize(stage_name)
    return stage_name


class StageScheduler:
    """Topological, parallel materialisation of a Lab's stages."""

    def __init__(self, lab):
        self.lab = lab
        self.graph = lab.graph

    # -- public API ---------------------------------------------------------

    def run(
        self,
        targets: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        executor: str = "thread",
        raise_on_error: bool = True,
    ) -> Dict[str, StageResult]:
        """Materialise ``targets`` (default: every persistable stage).

        Returns a result per involved stage.  ``jobs=None`` lets the
        executor pick (CPU count); ``jobs=1`` degrades to a serial walk.
        """
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; valid: {EXECUTORS}"
            )
        if targets is None:
            targets = [s.name for s in self.graph if s.persistable]
        wanted = self.graph.closure(targets)
        with span(
            "scheduler.run", executor=executor, targets=len(wanted)
        ) as run_span:
            if executor == "process":
                results = self._run_process(wanted, jobs, raise_on_error)
            else:
                results = self._run_thread(wanted, jobs, raise_on_error)
            for result in results.values():
                run_span.incr(f"stages.{result.status}")
            return results

    # -- shared wave machinery ----------------------------------------------

    def _wave_run(
        self,
        wanted: Set[str],
        runnable: Set[str],
        pool: Executor,
        submit,
        raise_on_error: bool,
    ) -> Dict[str, StageResult]:
        """Run ``runnable`` stages through ``pool`` respecting dependencies.

        ``submit(pool, name)`` returns a future; stages in ``wanted`` but
        not ``runnable`` are treated as satisfied dependencies (the caller
        materialises them separately).
        """
        results: Dict[str, StageResult] = {}
        done: Set[str] = set(wanted) - set(runnable)
        failed_or_skipped: Set[str] = set()
        pending: Dict[object, str] = {}
        started: Dict[str, float] = {}
        submitted: Set[str] = set()

        def ready_stages() -> List[str]:
            return sorted(
                name
                for name in runnable
                if name not in submitted
                and name not in failed_or_skipped
                and all(
                    dep in done
                    for dep in self.graph.stage(name).deps
                    if dep in wanted
                )
            )

        def skip_descendants(name: str) -> None:
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for dependent in self.graph.dependents(current):
                    if (
                        dependent in runnable
                        and dependent not in failed_or_skipped
                    ):
                        failed_or_skipped.add(dependent)
                        results[dependent] = StageResult(
                            stage=dependent,
                            status="skipped",
                            error=f"dependency {name!r} failed",
                        )
                        frontier.append(dependent)

        while True:
            for name in ready_stages():
                submitted.add(name)
                started[name] = time.perf_counter()
                pending[submit(pool, name)] = name
            if not pending:
                break
            finished, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                name = pending.pop(future)
                duration = time.perf_counter() - started[name]
                error = future.exception()
                if error is None:
                    done.add(name)
                    results[name] = StageResult(
                        stage=name, status="ok", duration_s=duration
                    )
                else:
                    failed_or_skipped.add(name)
                    results[name] = StageResult(
                        stage=name,
                        status="failed",
                        duration_s=duration,
                        error=f"{type(error).__name__}: {error}",
                    )
                    skip_descendants(name)

        if raise_on_error:
            failures = sorted(
                (r.stage, r.error)
                for r in results.values()
                if r.status == "failed"
            )
            if failures:
                stage_name, error = failures[0]
                raise StageError(stage_name, error or "build failed")
        return results

    # -- executors ----------------------------------------------------------

    def _materialize_adopted(self, parent, name: str):
        """Worker-thread body: materialise under the scheduler's span.

        Spans follow per-thread stacks, so without adoption a worker's
        ``lab.<stage>`` span would surface as an unrelated root.  Adopting
        the scheduler-run span re-attaches it to the right parent.
        """
        with get_tracer().adopt(parent):
            return self.lab.materialize(name)

    def _run_thread(
        self, wanted: Set[str], jobs: Optional[int], raise_on_error: bool
    ) -> Dict[str, StageResult]:
        from concurrent.futures import ThreadPoolExecutor

        parent = get_tracer().current_span()
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return self._wave_run(
                wanted,
                set(wanted),
                pool,
                lambda p, name: p.submit(
                    self._materialize_adopted, parent, name
                ),
                raise_on_error,
            )

    def _run_process(
        self, wanted: Set[str], jobs: Optional[int], raise_on_error: bool
    ) -> Dict[str, StageResult]:
        from concurrent.futures import ProcessPoolExecutor

        store = self.lab.store
        if store is None:
            raise StageError(
                "<scheduler>",
                "the process executor needs an artifact store "
                "(set LabConfig.artifact_dir or $REPRO_ARTIFACTS)",
            )
        config_kwargs = dataclasses.asdict(self.lab.config)
        config_kwargs["artifact_dir"] = str(store.root)

        runnable = {
            name for name in wanted if self.graph.stage(name).persistable
        }
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = self._wave_run(
                wanted,
                runnable,
                pool,
                lambda p, name: p.submit(
                    _process_build_stage, config_kwargs, name
                ),
                raise_on_error,
            )
        # Re-materialise in the parent: persistable stages load as store
        # hits; derived stages build from those now-cached inputs.
        built = {name for name, r in results.items() if r.status == "ok"}
        poisoned = {
            name for name, r in results.items() if r.status != "ok"
        }
        for name in self.graph.topological_order(sorted(wanted)):
            deps_ok = all(dep not in poisoned for dep in self.graph.stage(name).deps)
            if name in poisoned or not deps_ok:
                poisoned.add(name)
                continue
            self.lab.materialize(name)
            if name not in built and name not in results:
                results[name] = StageResult(stage=name, status="ok")
        return results


__all__ = ["EXECUTORS", "StageResult", "StageScheduler", "_process_build_stage"]
