"""Exact JSON codecs for pipeline artifacts without an ``.npz`` format.

Unlike the OBO writer (which regroups statements by subject), these codecs
preserve *construction order* exactly — entity order, statement order,
triple order and dataset names all feed downstream RNG derivations
(``derive_rng(seed, "dataset-split", dataset.name, ...)``), so a loaded
artifact must be indistinguishable from the freshly built one, down to the
iteration order of every collection.  Each payload carries a format tag so
a store entry written by a different code version is rejected loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.datasets import Dataset, DatasetSplit
from repro.core.triples import LabeledTriple
from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.relations import relation_by_name
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

ONTOLOGY_FORMAT = "repro-ontology-v1"
CORPUS_FORMAT = "repro-corpus-v1"
PIECES_FORMAT = "repro-wordpiece-pieces-v1"
DATASET_FORMAT = "repro-dataset-v1"
SPLIT_FORMAT = "repro-dataset-split-v1"
TOKENS_FORMAT = "repro-stop-tokens-v1"


def write_json(path: PathLike, payload: dict) -> None:
    """Atomically write a JSON payload (compact separators, sorted keys)."""
    with atomic_write(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")


def read_json(path: PathLike, expected_format: str) -> dict:
    """Read a payload written by :func:`write_json`, checking its format tag."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    found = payload.get("format") if isinstance(payload, dict) else None
    if found != expected_format:
        raise ValueError(
            f"{path} is not a {expected_format} payload (found {found!r})"
        )
    return payload


# -- ontology ---------------------------------------------------------------


def ontology_to_payload(ontology: Ontology) -> dict:
    return {
        "format": ONTOLOGY_FORMAT,
        "name": ontology.name,
        "entities": [
            [
                entity.identifier,
                entity.name,
                entity.sub_ontology.value,
                entity.definition,
                list(entity.synonyms),
            ]
            for entity in ontology.entities()
        ],
        "statements": [
            [statement.subject, statement.relation.name, statement.object]
            for statement in ontology.statements()
        ],
    }


def ontology_from_payload(payload: dict) -> Ontology:
    ontology = Ontology(name=payload["name"])
    for identifier, name, sub, definition, synonyms in payload["entities"]:
        ontology.add_entity(
            Entity(
                identifier=identifier,
                name=name,
                sub_ontology=SubOntology(sub),
                definition=definition,
                synonyms=tuple(synonyms),
            )
        )
    for subject, relation, obj in payload["statements"]:
        ontology.add_statement(subject, relation_by_name(relation), obj)
    return ontology


# -- corpora ----------------------------------------------------------------


def sentences_to_payload(sentences: List[List[str]]) -> dict:
    return {"format": CORPUS_FORMAT, "sentences": sentences}


def sentences_from_payload(payload: dict) -> List[List[str]]:
    return [list(sentence) for sentence in payload["sentences"]]


# -- datasets ---------------------------------------------------------------


def _triple_to_row(triple: LabeledTriple) -> list:
    return [
        triple.subject_id,
        triple.subject_name,
        triple.relation.name,
        triple.object_id,
        triple.object_name,
        triple.label,
    ]


def _triple_from_row(row: list) -> LabeledTriple:
    subject_id, subject_name, relation, object_id, object_name, label = row
    return LabeledTriple(
        subject_id=subject_id,
        subject_name=subject_name,
        relation=relation_by_name(relation),
        object_id=object_id,
        object_name=object_name,
        label=int(label),
    )


def dataset_to_payload(dataset: Dataset) -> dict:
    return {
        "format": DATASET_FORMAT,
        "name": dataset.name,
        "triples": [_triple_to_row(t) for t in dataset],
    }


def dataset_from_payload(payload: dict) -> Dataset:
    return Dataset(
        [_triple_from_row(row) for row in payload["triples"]],
        name=payload["name"],
    )


def split_to_payload(split: DatasetSplit) -> dict:
    return {
        "format": SPLIT_FORMAT,
        "train": dataset_to_payload(split.train),
        "test": dataset_to_payload(split.test),
        "validation": (
            dataset_to_payload(split.validation)
            if split.validation is not None
            else None
        ),
    }


def split_from_payload(payload: dict) -> DatasetSplit:
    return DatasetSplit(
        train=dataset_from_payload(payload["train"]),
        test=dataset_from_payload(payload["test"]),
        validation=(
            dataset_from_payload(payload["validation"])
            if payload["validation"] is not None
            else None
        ),
    )


# -- token sets -------------------------------------------------------------


def tokens_to_payload(tokens) -> dict:
    """Stop-token sets; order is irrelevant to the filter, so sort for
    stable files."""
    return {"format": TOKENS_FORMAT, "tokens": sorted(tokens)}


def tokens_from_payload(payload: dict) -> set:
    return set(payload["tokens"])


__all__ = [
    "write_json",
    "read_json",
    "ontology_to_payload",
    "ontology_from_payload",
    "sentences_to_payload",
    "sentences_from_payload",
    "dataset_to_payload",
    "dataset_from_payload",
    "split_to_payload",
    "split_from_payload",
    "tokens_to_payload",
    "tokens_from_payload",
]
