"""repro.pipeline: the Lab as an explicit stage graph.

Every substrate of the benchmark apparatus — the synthetic ontology, the
three corpora, the wordpiece tokenizer, the pretrained mini-BERT, each
embedding model, each task dataset and split, the adaptation filters and
the trained classifiers — is a named :class:`~repro.pipeline.stage.Stage`
with explicit dependencies and a deterministic content-addressed cache key.
Artifacts persist across runs in an :class:`~repro.pipeline.store.ArtifactStore`
(``LabConfig.artifact_dir`` or ``$REPRO_ARTIFACTS``), and the
:class:`~repro.pipeline.scheduler.StageScheduler` builds ready stages in
parallel.  :class:`~repro.core.experiment.Lab` remains the public facade.
"""

from repro.pipeline.graph import StageGraph
from repro.pipeline.scheduler import EXECUTORS, StageResult, StageScheduler
from repro.pipeline.stage import Stage, StageError
from repro.pipeline.stages import build_lab_graph, substrate_stage_names
from repro.pipeline.store import (
    ARTIFACTS_ENV_VAR,
    ArtifactInfo,
    ArtifactStore,
    ArtifactStoreError,
)

__all__ = [
    "ARTIFACTS_ENV_VAR",
    "ArtifactInfo",
    "ArtifactStore",
    "ArtifactStoreError",
    "EXECUTORS",
    "Stage",
    "StageError",
    "StageGraph",
    "StageResult",
    "StageScheduler",
    "build_lab_graph",
    "substrate_stage_names",
]
