"""The stage graph: registration, dependency closure, topological order,
and deterministic content-addressed cache keys.

A stage's **key** is a stable digest of

* the stage name and its code version tag,
* the slice of the Lab configuration it declares it reads, and
* the keys of its dependencies (recursively).

Changing any configuration field that feeds a stage therefore changes that
stage's key *and every downstream key*, while changing an unrelated field
changes nothing — the property the cache-key tests pin down.  Keys are pure
functions of ``(graph, config)``: they never look at the artifacts, so a
second process (or a second machine) computes identical keys and can share
an artifact store.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.pipeline.stage import Stage
from repro.utils.rng import stable_digest


class StageGraph:
    """An immutable-after-registration DAG of :class:`Stage` nodes."""

    def __init__(self, stages: Iterable[Stage] = ()):
        self._stages: Dict[str, Stage] = {}
        for stage in stages:
            self.register(stage)

    # -- registration -------------------------------------------------------

    def register(self, stage: Stage) -> Stage:
        if stage.name in self._stages:
            raise ValueError(f"stage {stage.name!r} already registered")
        self._stages[stage.name] = stage
        return stage

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise KeyError(
                f"unknown stage {name!r}; have {len(self._stages)} stages"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages.values())

    def __len__(self) -> int:
        return len(self._stages)

    def names(self) -> List[str]:
        return list(self._stages)

    # -- structure ----------------------------------------------------------

    def validate(self) -> None:
        """Check every declared dependency exists and the graph is acyclic."""
        for stage in self:
            for dep in stage.deps:
                if dep not in self._stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        self.topological_order()  # raises on cycles

    def closure(self, targets: Sequence[str]) -> Set[str]:
        """The targets plus all their transitive dependencies."""
        seen: Set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self.stage(name).deps)
        return seen

    def dependents(self, name: str) -> List[str]:
        """Direct dependents of ``name``, in registration order."""
        return [s.name for s in self if name in s.deps]

    def topological_order(
        self, targets: Optional[Sequence[str]] = None
    ) -> List[str]:
        """Dependencies-first order over ``targets`` (default: all stages).

        The order is deterministic: among simultaneously-ready stages,
        lexicographic name order wins.  Raises ``ValueError`` on cycles.
        """
        wanted = self.closure(targets) if targets is not None else set(self._stages)
        indegree = {
            name: sum(1 for dep in self.stage(name).deps if dep in wanted)
            for name in wanted
        }
        ready = sorted(name for name, degree in indegree.items() if degree == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            changed = False
            for dependent in self.dependents(name):
                if dependent in wanted:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        ready.append(dependent)
                        changed = True
            if changed:
                ready.sort()
        if len(order) != len(wanted):
            stuck = sorted(set(wanted) - set(order))
            raise ValueError(f"stage graph contains a cycle through {stuck}")
        return order

    # -- keys ---------------------------------------------------------------

    def key(self, name: str, config, _memo: Optional[Dict[str, str]] = None) -> str:
        """Deterministic content-addressed cache key for one stage."""
        memo = _memo if _memo is not None else {}
        cached = memo.get(name)
        if cached is not None:
            return cached
        stage = self.stage(name)
        dep_keys = [self.key(dep, config, memo) for dep in stage.deps]
        digest = stable_digest(
            stage.name, stage.version, stage.config_slice(config), tuple(dep_keys)
        )
        memo[name] = digest
        return digest

    def keys(self, config, targets: Optional[Sequence[str]] = None) -> Dict[str, str]:
        """Keys for ``targets`` (default: every stage), shared-memoised."""
        memo: Dict[str, str] = {}
        names = self.closure(targets) if targets is not None else self.names()
        return {name: self.key(name, config, memo) for name in sorted(names)}


__all__ = ["StageGraph"]
