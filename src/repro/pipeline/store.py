"""The on-disk, content-addressed artifact store.

Layout::

    <root>/<stage-name>/<key>/          one complete entry (a directory)
        meta.json                       written into the tmp dir last
        ...                             stage-specific artifact files
    <root>/<stage-name>/<key>.lock      build lock (pid + timestamp)
    <root>/<stage-name>/.tmp-*          in-flight entries (renamed on commit)

An entry is **complete** iff its directory exists with a ``meta.json``
inside.  Writers build into a private ``.tmp-*`` sibling and ``os.rename``
it over the final name, so readers never observe a partial entry and a
killed writer leaves only a garbage-collectable temp directory.

Concurrent writers (two benchmark processes warming the same store) are
serialised per entry by a lockfile created with ``O_CREAT | O_EXCL``: the
loser waits for the winner and then *loads* instead of double-building.  A
lock older than ``stale_lock_s`` is presumed abandoned (holder crashed) and
is broken.  Because keys are content addresses, even a lost race is
harmless — both writers produce byte-identical entries and the rename picks
one.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import uuid
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.trace import get_tracer
from repro.pipeline.stage import Stage
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

#: Environment variable pointing at a shared artifact store directory.
ARTIFACTS_ENV_VAR = "REPRO_ARTIFACTS"

META_NAME = "meta.json"
META_FORMAT = "repro-artifact-v1"


@dataclass(frozen=True)
class ArtifactInfo:
    """One complete store entry, as reported by :meth:`ArtifactStore.ls`."""

    stage: str
    key: str
    path: Path
    n_files: int
    n_bytes: int
    created_unix: float


class ArtifactStoreError(RuntimeError):
    """A store operation failed (corrupt entry, unbreakable lock, ...)."""


class ArtifactStore:
    """Content-addressed persistence for stage artifacts (see module docs)."""

    def __init__(
        self,
        root: PathLike,
        lock_timeout_s: float = 600.0,
        stale_lock_s: float = 3600.0,
        poll_interval_s: float = 0.05,
    ):
        self.root = Path(root)
        self.lock_timeout_s = lock_timeout_s
        self.stale_lock_s = stale_lock_s
        self.poll_interval_s = poll_interval_s

    @classmethod
    def from_config(cls, config) -> Optional["ArtifactStore"]:
        """The store named by ``config.artifact_dir`` or ``$REPRO_ARTIFACTS``.

        Returns ``None`` when neither is set — the Lab then behaves exactly
        as the pre-pipeline in-process-memo version did.
        """
        root = getattr(config, "artifact_dir", None) or os.environ.get(
            ARTIFACTS_ENV_VAR
        )
        return cls(root) if root else None

    # -- paths --------------------------------------------------------------

    def entry_dir(self, stage: str, key: str) -> Path:
        return self.root / stage / key

    def _lock_path(self, stage: str, key: str) -> Path:
        return self.root / stage / (key + ".lock")

    def has(self, stage: str, key: str) -> bool:
        """Whether a complete entry exists for ``(stage, key)``."""
        return (self.entry_dir(stage, key) / META_NAME).is_file()

    def entry_bytes(self, stage: str, key: str) -> int:
        """Total file bytes of one entry (0 if absent or unreadable)."""
        try:
            return sum(
                p.stat().st_size
                for p in self.entry_dir(stage, key).iterdir()
                if p.is_file()
            )
        except OSError:
            return 0

    @staticmethod
    def _attribute(
        verb: str, seconds: float, n_bytes: Optional[int] = None
    ) -> None:
        """Attach store I/O cost to the enclosing span, if any.

        Stage materialisation runs inside a ``lab.<stage>`` span; gauging
        there makes load/build/save time visible per-stage in manifests
        without the store needing to know stage identities.
        """
        tracer = get_tracer()
        current = tracer.current_span()
        if current is not None:
            current.gauge(f"store.{verb}_s", round(seconds, 6))
            if n_bytes is not None:
                current.gauge("store.entry_bytes", n_bytes)
        tracer.count(f"store.{verb}s")
        if n_bytes is not None:
            tracer.count(f"store.{verb}_bytes", n_bytes)

    # -- load / save --------------------------------------------------------

    def load(self, stage: Stage, key: str, inputs: Dict[str, object]) -> object:
        """Load a complete entry through the stage's load hook."""
        if stage.load is None:
            raise ArtifactStoreError(f"stage {stage.name!r} is not persistable")
        return stage.load(self.entry_dir(stage.name, key), inputs)

    def put(self, stage: Stage, key: str, artifact: object) -> Path:
        """Persist ``artifact`` as a complete entry; returns its directory.

        Committing is atomic: the entry is assembled in a temp directory
        (meta last) and renamed into place.  If a concurrent writer won the
        rename race, its identical entry is kept and ours is discarded.
        """
        if stage.save is None:
            raise ArtifactStoreError(f"stage {stage.name!r} is not persistable")
        final = self.entry_dir(stage.name, key)
        stage_dir = final.parent
        stage_dir.mkdir(parents=True, exist_ok=True)
        # statcheck: ignore[DET003] - tmp-dir name needs uniqueness, not determinism
        tmp = stage_dir / f".tmp-{key}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp.mkdir()
        try:
            stage.save(artifact, tmp)
            with atomic_write(tmp / META_NAME, "w") as handle:
                json.dump(
                    {
                        "format": META_FORMAT,
                        "stage": stage.name,
                        "key": key,
                        "version": stage.version,
                        # statcheck: ignore[DET003] - provenance timestamp, not part of the key
                        "created_unix": time.time(),
                        "pid": os.getpid(),
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
            try:
                os.rename(tmp, final)
            except OSError:
                if not self.has(stage.name, key):  # a real failure, not a race
                    raise
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return final

    # -- locked build-or-load ------------------------------------------------

    def _try_acquire(self, lock: Path) -> bool:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            # statcheck: ignore[DET003] - lock-age bookkeeping for stale-lock detection
            acquired = time.time()
            json.dump(
                {"acquired_unix": acquired, "pid": os.getpid()},
                handle,
                sort_keys=True,
            )
        return True

    def _lock_is_stale(self, lock: Path) -> bool:
        try:
            # statcheck: ignore[DET003] - lock age is inherently wall-clock
            age = time.time() - lock.stat().st_mtime
        except FileNotFoundError:
            return False
        return age > self.stale_lock_s

    def _release(self, lock: Path) -> None:
        try:
            lock.unlink()
        except FileNotFoundError:
            pass

    def _timed_load(
        self, stage: Stage, key: str, inputs: Dict[str, object]
    ) -> object:
        started = time.perf_counter()
        artifact = self.load(stage, key, inputs)
        self._attribute(
            "load",
            time.perf_counter() - started,
            self.entry_bytes(stage.name, key),
        )
        return artifact

    def build_or_load(
        self,
        stage: Stage,
        key: str,
        inputs: Dict[str, object],
        builder: Callable[[], object],
    ) -> Tuple[object, str]:
        """Return ``(artifact, status)`` where status is ``"hit"`` or
        ``"miss"``; at most one process builds a given entry at a time."""
        if self.has(stage.name, key):
            return self._timed_load(stage, key, inputs), "hit"
        lock = self._lock_path(stage.name, key)
        lock.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.lock_timeout_s
        while not self._try_acquire(lock):
            if self.has(stage.name, key):  # the other writer finished
                return self._timed_load(stage, key, inputs), "hit"
            if self._lock_is_stale(lock):
                self._release(lock)  # break an abandoned lock and retry
                continue
            if time.monotonic() > deadline:
                raise ArtifactStoreError(
                    f"timed out waiting for build lock {lock} "
                    f"(another process may be stuck building {stage.name!r})"
                )
            time.sleep(self.poll_interval_s)
        try:
            if self.has(stage.name, key):  # completed while we acquired
                return self._timed_load(stage, key, inputs), "hit"
            started = time.perf_counter()
            artifact = builder()
            self._attribute("build", time.perf_counter() - started)
            started = time.perf_counter()
            self.put(stage, key, artifact)
            self._attribute(
                "save",
                time.perf_counter() - started,
                self.entry_bytes(stage.name, key),
            )
            return artifact, "miss"
        finally:
            self._release(lock)

    # -- maintenance ---------------------------------------------------------

    def _iter_entries(self) -> Iterator[Tuple[str, str, Path]]:
        if not self.root.is_dir():
            return
        for stage_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for entry in sorted(p for p in stage_dir.iterdir() if p.is_dir()):
                if not entry.name.startswith(".tmp-"):
                    yield stage_dir.name, entry.name, entry

    def ls(self) -> List[ArtifactInfo]:
        """All complete entries, sorted by (stage, key)."""
        infos = []
        for stage, key, path in self._iter_entries():
            meta_path = path / META_NAME
            if not meta_path.is_file():
                continue
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            files = [p for p in path.iterdir() if p.is_file()]
            infos.append(
                ArtifactInfo(
                    stage=stage,
                    key=key,
                    path=path,
                    n_files=len(files),
                    n_bytes=sum(p.stat().st_size for p in files),
                    created_unix=float(meta.get("created_unix", 0.0)),
                )
            )
        return infos

    def invalidate(self, pattern: str) -> List[ArtifactInfo]:
        """Remove every complete entry whose stage name matches ``pattern``
        (``fnmatch`` glob, e.g. ``embedding-*``); returns what was removed."""
        removed = []
        for info in self.ls():
            if fnmatch(info.stage, pattern):
                shutil.rmtree(info.path, ignore_errors=True)
                removed.append(info)
        return removed

    def gc(
        self, max_age_days: Optional[float] = None, now: Optional[float] = None
    ) -> List[Path]:
        """Collect garbage; returns the removed paths.

        Always removes abandoned ``.tmp-*`` directories, incomplete entries
        (no ``meta.json``) and stale lockfiles.  With ``max_age_days`` set,
        complete entries older than that are removed as well.
        """
        removed: List[Path] = []
        if not self.root.is_dir():
            return removed
        now = time.time() if now is None else now  # statcheck: ignore[DET003] - gc ages entries by wall-clock; tests inject `now`
        for stage_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for child in sorted(stage_dir.iterdir()):
                if child.is_dir() and child.name.startswith(".tmp-"):
                    shutil.rmtree(child, ignore_errors=True)
                    removed.append(child)
                elif child.is_dir() and not (child / META_NAME).is_file():
                    shutil.rmtree(child, ignore_errors=True)
                    removed.append(child)
                elif child.suffix == ".lock" and self._lock_is_stale(child):
                    self._release(child)
                    removed.append(child)
        if max_age_days is not None:
            cutoff = now - max_age_days * 86_400.0
            for info in self.ls():
                if info.created_unix < cutoff:
                    shutil.rmtree(info.path, ignore_errors=True)
                    removed.append(info.path)
        return removed


__all__ = [
    "ARTIFACTS_ENV_VAR",
    "ArtifactInfo",
    "ArtifactStore",
    "ArtifactStoreError",
]
