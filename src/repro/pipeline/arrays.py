"""Mmap-aware numpy array persistence for store artifacts.

Large read-mostly matrices (embedding tables, co-occurrence shards) used to
round-trip through compressed ``.npz`` archives, which forces a full
decompress-and-copy on every load.  This module writes each array as a
standalone uncompressed ``.npy`` file (atomically: tmp + rename, matching
the store's entry discipline) and loads it through ``np.load`` with an
explicit ``mmap_mode``:

* arrays of at least :data:`MMAP_MIN_BYTES` are mapped read-only — the OS
  pages them in lazily and shares pages between processes;
* smaller arrays are plainly read — mapping them costs more in syscalls
  than the copy saves.

Setting the :data:`NO_MMAP_ENV` environment variable (``REPRO_NO_MMAP``) to
a non-empty value disables mapping globally, e.g. for stores on network
filesystems where page faults are slower than a streamed read.

Loads are attributed like other store I/O: the enclosing span (if any)
carries accumulated ``store.bytes_mapped`` / ``store.bytes_copied`` gauges,
and the process-wide tracer counts the same totals.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.obs.trace import get_tracer

PathLike = Union[str, Path]

#: Arrays at least this large (in bytes, on disk) are memory-mapped.
MMAP_MIN_BYTES = 1 << 20

#: Environment variable that disables memory-mapping when set non-empty.
NO_MMAP_ENV = "REPRO_NO_MMAP"


def mmap_enabled() -> bool:
    """True unless ``REPRO_NO_MMAP`` is set to a non-empty value."""
    return not os.environ.get(NO_MMAP_ENV, "")


def save_array(path: PathLike, array: np.ndarray) -> None:
    """Atomically write ``array`` as an uncompressed ``.npy`` file.

    Uncompressed on purpose: compressed archives cannot be memory-mapped,
    and the store's artifacts are already cheap to regenerate relative to
    their read frequency.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".tmp-{path.name}-", suffix=".npy"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _attribute_load(n_bytes: int, mapped: bool) -> None:
    kind = "mapped" if mapped else "copied"
    tracer = get_tracer()
    current = tracer.current_span()
    if current is not None:
        # Span gauges overwrite; accumulate so one span covering several
        # array loads reports its total bytes in each mode.
        name = f"store.bytes_{kind}"
        current.gauge(name, current.gauges.get(name, 0) + n_bytes)
    tracer.count(f"store.bytes_{kind}", n_bytes)


def load_array(
    path: PathLike, *, threshold: int = MMAP_MIN_BYTES
) -> np.ndarray:
    """Load a ``.npy`` array, memory-mapping it when it is large enough.

    Callers that mutate the result must copy it first; mapped arrays are
    opened read-only.
    """
    path = Path(path)
    n_bytes = path.stat().st_size
    use_mmap = mmap_enabled() and n_bytes >= threshold
    array = np.load(path, mmap_mode="r" if use_mmap else None)
    _attribute_load(n_bytes, use_mmap)
    return array


__all__ = [
    "MMAP_MIN_BYTES",
    "NO_MMAP_ENV",
    "mmap_enabled",
    "save_array",
    "load_array",
]
