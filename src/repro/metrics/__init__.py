"""Evaluation metrics used throughout the benchmark.

The paper reports accuracy, precision, recall, F1 (Tables 3-6), ROC-AUC broken
down by relationship type (Figure 2), and Fleiss' kappa for LLM response
consistency (Table 5).  All are implemented here from scratch.
"""

from repro.metrics.agreement import fleiss_kappa
from repro.metrics.classification import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    precision,
    recall,
)
from repro.metrics.roc import auc, roc_auc_score, roc_curve

__all__ = [
    "ClassificationReport",
    "accuracy",
    "confusion_matrix",
    "evaluate_binary",
    "precision",
    "recall",
    "f1_score",
    "roc_curve",
    "auc",
    "roc_auc_score",
    "fleiss_kappa",
]
