"""ROC curve and AUC, used for the Figure 2 per-relationship breakdown."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def roc_curve(
    y_true: Sequence[int], y_score: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve.

    Returns ``(fpr, tpr, thresholds)`` where thresholds are the distinct
    scores in decreasing order, prefixed by ``+inf`` so the curve starts at
    (0, 0).  Matches the standard construction (ties collapsed).
    """
    true_arr = np.asarray(y_true, dtype=np.int64)
    score_arr = np.asarray(y_score, dtype=np.float64)
    if true_arr.shape != score_arr.shape:
        raise ValueError("y_true and y_score must have equal length")
    if true_arr.size == 0:
        raise ValueError("cannot compute an ROC curve on empty input")
    bad = set(np.unique(true_arr)) - {0, 1}
    if bad:
        raise ValueError(f"y_true contains non-binary labels: {sorted(bad)}")

    order = np.argsort(-score_arr, kind="stable")
    sorted_true = true_arr[order]
    sorted_score = score_arr[order]

    # Indices where the score changes: curve vertices after collapsing ties.
    distinct = np.where(np.diff(sorted_score))[0]
    cut_indices = np.concatenate([distinct, [sorted_true.size - 1]])

    tps = np.cumsum(sorted_true)[cut_indices].astype(np.float64)
    fps = (cut_indices + 1) - tps

    n_pos = float(sorted_true.sum())
    n_neg = float(sorted_true.size - n_pos)

    tpr = tps / n_pos if n_pos else np.zeros_like(tps)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps)

    tpr = np.concatenate([[0.0], tpr])
    fpr = np.concatenate([[0.0], fpr])
    thresholds = np.concatenate([[np.inf], sorted_score[cut_indices]])
    return fpr, tpr, thresholds


def auc(x: Sequence[float], y: Sequence[float]) -> float:
    """Trapezoidal area under a curve defined by monotone ``x`` and ``y``."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.size < 2:
        raise ValueError("need at least two points to integrate")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2.0 rename
    return float(trapezoid(y_arr, x_arr))


def roc_auc_score(y_true: Sequence[int], y_score: Sequence[float]) -> float:
    """Area under the ROC curve.

    Raises :class:`ValueError` if only one class is present (AUC undefined).
    """
    true_arr = np.asarray(y_true, dtype=np.int64)
    if len(set(np.unique(true_arr))) < 2:
        raise ValueError("ROC AUC is undefined with a single class present")
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return auc(fpr, tpr)


__all__ = ["roc_curve", "auc", "roc_auc_score"]
