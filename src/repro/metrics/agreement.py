"""Inter-rating agreement statistics.

The paper delivers each ICL prompt five times and reports Fleiss' kappa over
the repeated classifications (Section 2.4, Table 5) to quantify how consistent
each LLM's answers are.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np


def fleiss_kappa(ratings: Sequence[Sequence[Hashable]]) -> float:
    """Fleiss' kappa for categorical ratings.

    ``ratings`` is a list of subjects; each subject is the list of category
    labels assigned by the raters (here: the answers from the five repeated
    deliveries of one prompt).  Every subject must have the same number of
    ratings, and there must be at least two raters.

    Returns 1.0 for perfect agreement.  When every rating in the whole input
    is the same single category, chance agreement is also 1 and kappa is
    conventionally reported as 1.0 (all raters always agreed).
    """
    if not ratings:
        raise ValueError("ratings must contain at least one subject")
    n_raters = len(ratings[0])
    if n_raters < 2:
        raise ValueError("Fleiss' kappa requires at least two ratings per subject")
    for idx, subject in enumerate(ratings):
        if len(subject) != n_raters:
            raise ValueError(
                f"subject {idx} has {len(subject)} ratings, expected {n_raters}"
            )

    categories = sorted({label for subject in ratings for label in subject}, key=repr)
    category_index = {label: i for i, label in enumerate(categories)}

    counts = np.zeros((len(ratings), len(categories)), dtype=np.float64)
    for row, subject in enumerate(ratings):
        for label in subject:
            counts[row, category_index[label]] += 1

    # Per-subject observed agreement.
    p_i = (np.sum(counts * (counts - 1), axis=1)) / (n_raters * (n_raters - 1))
    p_bar = float(np.mean(p_i))

    # Chance agreement from the marginal category distribution.
    p_j = counts.sum(axis=0) / counts.sum()
    p_e = float(np.sum(p_j**2))

    if np.isclose(p_e, 1.0):
        # Single category used throughout: perfect (and trivially chance-level)
        # agreement.  Report 1.0 rather than 0/0.
        return 1.0
    return (p_bar - p_e) / (1.0 - p_e)


__all__ = ["fleiss_kappa"]
