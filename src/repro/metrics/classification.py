"""Binary classification metrics.

The paper evaluates every model with accuracy, precision, recall and F1.  For
the supervised-learning tables the paper reports *weighted* (effectively
macro-averaged over the two balanced classes) precision/recall; for the ICL
tables it reports positive-class metrics with unclassified responses excluded
from precision/recall/F1 but counted as errors for accuracy (Section 3.5).
Both conventions are supported here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _as_int_array(values: Sequence[int]) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"labels must be one-dimensional, got shape {arr.shape}")
    return arr.astype(np.int64)


def _validate_pair(y_true: Sequence[int], y_pred: Sequence[int]):
    true_arr = _as_int_array(y_true)
    pred_arr = _as_int_array(y_pred)
    if true_arr.shape != pred_arr.shape:
        raise ValueError(
            f"y_true and y_pred lengths differ: {true_arr.shape[0]} vs {pred_arr.shape[0]}"
        )
    if true_arr.size == 0:
        raise ValueError("cannot compute metrics on empty label arrays")
    return true_arr, pred_arr


def confusion_matrix(y_true: Sequence[int], y_pred: Sequence[int]) -> np.ndarray:
    """Return the 2x2 confusion matrix ``[[tn, fp], [fn, tp]]``.

    Labels must be 0 (negative) or 1 (positive).
    """
    true_arr, pred_arr = _validate_pair(y_true, y_pred)
    for name, arr in (("y_true", true_arr), ("y_pred", pred_arr)):
        bad = set(np.unique(arr)) - {0, 1}
        if bad:
            raise ValueError(f"{name} contains non-binary labels: {sorted(bad)}")
    matrix = np.zeros((2, 2), dtype=np.int64)
    np.add.at(matrix, (true_arr, pred_arr), 1)
    return matrix


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of predictions equal to the true label."""
    true_arr, pred_arr = _validate_pair(y_true, y_pred)
    return float(np.mean(true_arr == pred_arr))


def precision(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Positive-class precision: tp / (tp + fp).  Returns 0.0 when undefined."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp = matrix[1, 1], matrix[0, 1]
    return float(tp / (tp + fp)) if (tp + fp) else 0.0


def recall(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Positive-class recall: tp / (tp + fn).  Returns 0.0 when undefined."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fn = matrix[1, 1], matrix[1, 0]
    return float(tp / (tp + fn)) if (tp + fn) else 0.0


def f1_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Harmonic mean of positive-class precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the four headline metrics plus class-averaged variants.

    ``precision``/``recall``/``f1`` follow the *weighted* convention used in
    the paper's ML/FT tables (per-class metrics weighted by class support,
    which coincides with macro averaging on balanced test sets).
    ``positive_precision``/``positive_recall``/``positive_f1`` follow the
    positive-class convention used in the ICL tables.
    """

    accuracy: float
    precision: float
    recall: float
    f1: float
    positive_precision: float
    positive_recall: float
    positive_f1: float
    support: int

    def as_row(self) -> dict:
        """Flatten into a plain dict suitable for table rendering."""
        return {
            "accuracy": round(self.accuracy, 4),
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }


def _per_class_prf(matrix: np.ndarray, label: int):
    tp = matrix[label, label]
    fp = matrix[1 - label, label]
    fn = matrix[label, 1 - label]
    p = tp / (tp + fp) if (tp + fp) else 0.0
    r = tp / (tp + fn) if (tp + fn) else 0.0
    f = 2 * p * r / (p + r) if (p + r) else 0.0
    return p, r, f


def evaluate_binary(
    y_true: Sequence[int], y_pred: Sequence[int]
) -> ClassificationReport:
    """Compute the full metric bundle for a binary prediction run."""
    matrix = confusion_matrix(y_true, y_pred)
    supports = matrix.sum(axis=1)
    total = int(supports.sum())
    weighted = np.zeros(3)
    for label in (0, 1):
        prf = _per_class_prf(matrix, label)
        weighted += np.array(prf) * (supports[label] / total)
    pos_p, pos_r, pos_f = _per_class_prf(matrix, 1)
    acc = float((matrix[0, 0] + matrix[1, 1]) / total)
    return ClassificationReport(
        accuracy=acc,
        precision=float(weighted[0]),
        recall=float(weighted[1]),
        f1=float(weighted[2]),
        positive_precision=float(pos_p),
        positive_recall=float(pos_r),
        positive_f1=float(pos_f),
        support=total,
    )


__all__ = [
    "ClassificationReport",
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "evaluate_binary",
]
