"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``synthesize`` — generate a ChEBI-like ontology and write it as OBO;
* ``census`` — print the entity/relationship census of an OBO file;
* ``dataset`` — build one curation-task dataset and print its statistics;
* ``evaluate`` — train and score one paradigm on one task;
* ``icl`` — run the Table 5 prompting protocol with a simulated model;
* ``trace`` — pretty-print a saved run manifest as a span-time summary;
* ``resume`` — inspect a checkpoint journal left by an interrupted run;
* ``cache`` — manage the persistent artifact store (``ls``, ``gc``,
  ``invalidate``, ``warm``).  The store directory comes from ``--dir`` or
  the ``$REPRO_ARTIFACTS`` environment variable;
* ``lint`` — run the ``repro.statcheck`` static analyzer over the package
  (or given paths).  Exit 0 clean, 1 findings, 2 analyzer error;
  ``--quick`` runs only the compile/import-cycle smoke check;
* ``perf`` — the benchmark subsystem: ``perf run`` measures the registered
  perf areas, ``perf compare`` diffs against the committed
  ``BENCH_<area>.json`` baselines (exit 0 ok, 1 regression/drift, 2
  harness error), ``perf update`` rewrites them, ``perf report`` renders
  them.

Every command is deterministic given ``--seed``.  The global ``--trace``
flag enables span tracing and stderr progress for any command (equivalent
to ``REPRO_TRACE=1``); ``--profile`` additionally installs the span
profiler so manifests gain hotspot function/allocation tables (equivalent
to ``REPRO_PROFILE=1``); ``--version`` prints the package version.

The ``icl`` command demos the resilience layer: ``--faults
timeout:0.1,http500:0.05`` injects deterministic faults (retried on a
virtual clock, so the run is instant and its table matches the fault-free
one), ``--journal``/``--resume`` checkpoint and resume the delivery loop,
and ``--max-deliveries`` stops a run mid-table to exercise resume.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.core import Lab, LabConfig, build_task_dataset
from repro.core.comparison import evaluate_paradigm
from repro.core.datasets import train_test_split_9_1
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    LSTMParadigm,
    RandomForestParadigm,
)
from repro.core.reporting import Table
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    LLAMA2_PROFILE,
    SimulatedChatModel,
    truth_table,
)
from repro.ontology import SynthesisConfig, census, synthesize_chebi_like
from repro.ontology.obo import dump_obo, load_obo

SIMULATED_MODELS = {
    "gpt-4": GPT4_PROFILE,
    "gpt-3.5-turbo": GPT35_PROFILE,
    "biogpt": BIOGPT_PROFILE,
    "llama-2": LLAMA2_PROFILE,
}


def _small_lab(args: argparse.Namespace) -> Lab:
    return Lab(
        LabConfig(
            n_chemical_entities=args.entities,
            ontology_seed=args.seed,
            seed=args.seed,
            max_train=args.max_train,
            max_test=args.max_test,
        )
    )


def cmd_synthesize(args: argparse.Namespace) -> int:
    ontology = synthesize_chebi_like(
        SynthesisConfig(n_chemical_entities=args.entities, seed=args.seed)
    )
    dump_obo(ontology, args.output)
    print(
        f"wrote {args.output}: {ontology.num_entities} entities, "
        f"{ontology.num_statements} statements"
    )
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    ontology = load_obo(args.obo)
    result = census(ontology)
    table = Table(f"Census of {args.obo}", ["relation", "triples", "share"],
                  precision=3)
    for name, share in result.relation_shares().items():
        table.add_row(name, result.statements_by_relation[name], share)
    table.show()
    print(f"entities by sub-ontology: {result.entities_by_sub_ontology}")
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    if args.obo:
        ontology = load_obo(args.obo)
    else:
        ontology = synthesize_chebi_like(
            SynthesisConfig(n_chemical_entities=args.entities, seed=args.seed)
        )
    dataset = build_task_dataset(ontology, args.task, seed=args.seed)
    n_pos, n_neg = dataset.counts()
    split = train_test_split_9_1(dataset, seed=args.seed)
    print(f"task {args.task}: {n_pos} positive / {n_neg} negative triples")
    print(f"9:1 split: {len(split.train)} train / {len(split.test)} test")
    for triple in list(dataset)[: args.show]:
        print(f"  [{triple.label}] {triple.as_text()}")
    return 0


def _build_paradigm(args: argparse.Namespace, lab: Lab):
    if args.paradigm == "rf":
        return RandomForestParadigm(
            lab.embedding(args.embedding),
            token_filter=lab.adaptation_filter(args.adaptation, args.embedding),
            config=lab.rf_config(),
        )
    if args.paradigm == "lstm":
        return LSTMParadigm(
            lab.embedding(args.embedding),
            token_filter=lab.adaptation_filter(args.adaptation, args.embedding),
            config=lab.lstm_config(),
        )
    if args.paradigm == "ft":
        return FineTuneParadigm(lab.bert, lab.ft_config())
    # icl
    client = SimulatedChatModel(
        SIMULATED_MODELS[args.model],
        truth_table(lab.dataset(args.task)),
        args.task,
        seed=args.seed,
    )
    return ICLParadigm(client, seed=args.seed)


def cmd_evaluate(args: argparse.Namespace) -> int:
    lab = _small_lab(args)
    split = lab.ml_split(args.task)
    paradigm = _build_paradigm(args, lab)
    print(f"fitting {paradigm.name} on {len(split.train)} triples ...")
    paradigm.fit(list(split.train))
    row = evaluate_paradigm(paradigm, list(split.test))
    table = Table(
        f"{paradigm.name} on task {args.task}",
        ["accuracy", "precision", "recall", "F1", "unclassified"],
    )
    table.add_row(row.accuracy, row.precision, row.recall, row.f1,
                  row.n_unclassified)
    table.show()
    return 0


def _render_span(node: dict, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    details = dict(node.get("attrs") or {})
    details.update(node.get("counters") or {})
    extras = ""
    if details:
        extras = "  [" + ", ".join(
            f"{k}={v}" for k, v in sorted(details.items())
        ) + "]"
    lines.append(
        f"{pad}{node['name']:<{max(1, 40 - len(pad))}} "
        f"total {node['duration_s']*1000:10.2f} ms   "
        f"self {node['self_time_s']*1000:10.2f} ms{extras}"
    )
    for child in node.get("children", ()):
        _render_span(child, indent + 1, lines)


def _aggregate_self_times(node: dict, totals: dict) -> None:
    entry = totals.setdefault(node["name"], {"self": 0.0, "total": 0.0, "count": 0})
    entry["self"] += node.get("self_time_s", 0.0)
    entry["total"] += node.get("duration_s", 0.0)
    entry["count"] += 1
    for child in node.get("children", ()):
        _aggregate_self_times(child, totals)


#: Counter key fragments surfaced in the trace command's resilience section.
_RESILIENCE_PREFIXES = ("retry.", "faults.", "circuit.", "icl.resumes")
_RESILIENCE_SUFFIXES = (".deliveries_failed", ".deliveries_resumed")


def _resilience_lines(manifest: dict) -> List[str]:
    """Degraded-run accounting: resume state and retry/fault/failure counts."""
    lines: List[str] = []
    context = manifest.get("context") or {}
    if context.get("resumed"):
        lines.append(
            f"resumed: true ({context.get('resumed_deliveries', '?')} deliveries "
            f"from {context.get('resume_journal', '?')})"
        )
    counters = manifest.get("counters") or {}
    for name, value in sorted(counters.items()):
        if name.startswith(_RESILIENCE_PREFIXES) or name.endswith(
            _RESILIENCE_SUFFIXES
        ):
            lines.append(f"{name}: {int(value)}")
    return lines


def render_manifest(manifest: dict) -> str:
    """Flame-style text rendering of a manifest's span tree + summary."""
    lines: List[str] = []
    environment = manifest.get("environment", {})
    lines.append(f"manifest: {manifest.get('artefact', manifest.get('title', '?'))}")
    lines.append(
        f"created {manifest.get('created', '?')} | "
        f"python {environment.get('python_version', '?')} | "
        f"numpy {environment.get('numpy_version', '?')} | "
        f"platform {environment.get('platform', '?')}"
    )
    memory = manifest.get("memory") or {}
    if memory.get("peak_rss_mb") is not None:
        lines.append(f"peak RSS: {memory['peak_rss_mb']:.1f} MiB")
    resilience = _resilience_lines(manifest)
    if resilience:
        lines.append("")
        lines.append("resilience")
        lines.append("----------")
        lines.extend(resilience)
    lines.append("")
    lines.append("span tree")
    lines.append("---------")
    for root in manifest.get("spans", ()):
        _render_span(root, 0, lines)
    if not manifest.get("spans"):
        lines.append("(no spans recorded)")

    totals: dict = {}
    for root in manifest.get("spans", ()):
        _aggregate_self_times(root, totals)
    table = Table(
        "per-stage self time (descending)",
        ["stage", "self ms", "total ms", "spans"],
        precision=2,
    )
    for name, entry in sorted(
        totals.items(), key=lambda item: item[1]["self"], reverse=True
    ):
        table.add_row(
            name, entry["self"] * 1000, entry["total"] * 1000, entry["count"]
        )
    lines.append("")
    lines.append(table.render())
    lines.extend(_hotspot_lines(manifest))
    return "\n".join(lines)


def _hotspot_lines(manifest: dict, top_n: int = 10) -> List[str]:
    """Render the manifest's ``hotspots`` section (profiler extras)."""
    hotspots = manifest.get("hotspots") or {}
    lines: List[str] = []
    functions = hotspots.get("functions") or []
    if functions:
        table = Table(
            "hottest functions (profiled, by self time)",
            ["function", "ncalls", "self ms", "cumulative ms"],
            precision=2,
        )
        for row in functions[:top_n]:
            table.add_row(
                row.get("function", "?"),
                row.get("ncalls", 0),
                float(row.get("tottime_s", 0.0)) * 1000,
                float(row.get("cumtime_s", 0.0)) * 1000,
            )
        lines.append("")
        lines.append(table.render())
    allocations = hotspots.get("allocations") or []
    if allocations:
        table = Table(
            "top allocating spans (tracemalloc)",
            ["span", "KiB"],
            precision=1,
        )
        for row in allocations[:top_n]:
            table.add_row(
                row.get("span", "?"),
                float(row.get("alloc_bytes", 0)) / 1024.0,
            )
        lines.append("")
        lines.append(table.render())
    return lines


def render_slowest(manifest: dict, top_n: int) -> str:
    """The ``repro trace --slowest N`` view: ranked per-stage durations."""
    from repro.obs.manifest import slowest_stages

    hotspots = manifest.get("hotspots") or {}
    ranked = hotspots.get("slowest_stages")
    if ranked is None:  # pre-hotspots manifest: aggregate from the span tree
        ranked = slowest_stages(list(manifest.get("spans") or []), top_n)
    table = Table(
        f"slowest stages (top {top_n}, by aggregate self time)",
        ["stage", "self ms", "total ms", "max ms", "spans"],
        precision=2,
    )
    for row in ranked[:top_n]:
        table.add_row(
            row.get("name", "?"),
            float(row.get("self_s", 0.0)) * 1000,
            float(row.get("total_s", 0.0)) * 1000,
            float(row.get("max_s", 0.0)) * 1000,
            row.get("count", 0),
        )
    lines = [f"manifest: {manifest.get('artefact', manifest.get('title', '?'))}"]
    lines.append(table.render())
    lines.extend(_hotspot_lines(manifest))
    return "\n".join(lines)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.manifest import ManifestError, load_manifest

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.slowest is not None:
        if args.slowest < 1:
            print("error: --slowest needs a positive count", file=sys.stderr)
            return 2
        print(render_slowest(manifest, args.slowest))
        return 0
    print(render_manifest(manifest))
    return 0


def cmd_icl(args: argparse.Namespace) -> int:
    from repro.resilience.checkpoint import CheckpointAbort, Journal
    from repro.resilience.faults import FaultClock, FaultPlan, FaultyClient
    from repro.resilience.retry import RetryPolicy

    lab = _small_lab(args)
    dataset = lab.dataset(args.task)
    split = train_test_split_9_1(dataset, seed=args.seed)
    config = ICLConfig(seed=args.seed)
    queries = build_icl_queries(dataset, config)
    client = SimulatedChatModel(
        SIMULATED_MODELS[args.model], truth_table(dataset), args.task,
        seed=args.seed,
    )
    if args.faults:
        try:
            FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    use_engine = (
        args.jobs > 1
        or args.n_backends > 1
        or args.cache is not None
        or args.hedge_ms is not None
        or args.deadline_ms is not None
    )
    retry = None
    engine = None
    if use_engine:
        from repro.delivery import (
            DeliveryConfig,
            DeliveryEngine,
            ResponseCache,
            simulated_backends,
        )

        if args.faults:
            # Demo mode: back off on a virtual clock so the run stays instant.
            retry = RetryPolicy(seed=args.seed, clock=FaultClock())
        backends = simulated_backends(
            SIMULATED_MODELS[args.model], truth_table(dataset), args.task,
            n_backends=args.n_backends, seed=args.seed,
            fault_plan_text=args.faults, fault_seed=args.fault_seed,
            retry=retry,
        )
        cache = ResponseCache(args.cache) if args.cache else None
        engine = DeliveryEngine(
            backends,
            DeliveryConfig(
                jobs=args.jobs,
                hedge_s=(
                    args.hedge_ms / 1000.0 if args.hedge_ms is not None else None
                ),
                deadline_s=(
                    args.deadline_ms / 1000.0
                    if args.deadline_ms is not None
                    else None
                ),
                seed=args.seed,
            ),
            cache=cache,
        )
    elif args.faults:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        client = FaultyClient(client, plan)
        # Demo mode: back off on a virtual clock so the run stays instant.
        retry = RetryPolicy(seed=args.seed, clock=FaultClock())
    journal = args.journal
    if journal and not args.resume:
        Journal(journal).wipe()  # fresh start unless explicitly resuming
    variant = PromptVariant(args.variant)
    try:
        result = run_icl_experiment(
            client, list(split.train), queries, variant, config,
            retry=retry, journal=journal, max_deliveries=args.max_deliveries,
            engine=engine,
        )
    except CheckpointAbort as abort:
        print(f"stopped: {abort}", file=sys.stderr)
        if journal:
            print(
                f"journal {journal} holds the completed deliveries; "
                f"rerun with --resume to continue",
                file=sys.stderr,
            )
        return 3
    finally:
        if engine is not None:
            engine.close()
    table = Table(
        f"ICL protocol: {args.model}, variant #{args.variant}, task {args.task}",
        ["accuracy", "unclassified", "failed", "precision", "recall", "F1",
         "kappa"],
    )
    table.add_row(
        result.accuracy_mean, result.n_unclassified, result.n_failed,
        result.precision_mean, result.recall_mean, result.f1_mean,
        result.kappa,
    )
    table.show()
    if args.output:
        table.save(args.output)
    if isinstance(client, FaultyClient):
        injected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(client.injected.items())
        ) or "none"
        print(
            f"injected faults over {client.calls} calls: {injected}",
            file=sys.stderr,
        )
    if engine is not None:
        counters = engine.counters()
        summary = ", ".join(
            f"{name}={count}" for name, count in sorted(counters.items())
        ) or "no deliveries"
        print(
            f"delivery engine ({args.n_backends} backends, "
            f"{args.jobs} jobs): {summary}",
            file=sys.stderr,
        )
        injected: dict = {}
        calls = 0
        for backend in engine.backends:
            faulty = backend.client
            while faulty is not None and not isinstance(faulty, FaultyClient):
                faulty = getattr(faulty, "inner", None)
            if faulty is None:
                continue
            calls += faulty.calls
            for kind, count in faulty.injected.items():
                injected[kind] = injected.get(kind, 0) + count
        if calls:
            summary = ", ".join(
                f"{kind}={count}" for kind, count in sorted(injected.items())
            ) or "none"
            print(
                f"injected faults over {calls} backend calls: {summary}",
                file=sys.stderr,
            )
    if result.n_resumed:
        print(
            f"resumed {result.n_resumed} deliveries from {journal}",
            file=sys.stderr,
        )
    return 0


def _cache_store(args: argparse.Namespace):
    """The artifact store named by ``--dir`` or ``$REPRO_ARTIFACTS``."""
    from repro.pipeline.store import ARTIFACTS_ENV_VAR, ArtifactStore

    root = args.dir or os.environ.get(ARTIFACTS_ENV_VAR)
    if not root:
        print(
            f"error: no artifact store (pass --dir or set ${ARTIFACTS_ENV_VAR})",
            file=sys.stderr,
        )
        return None
    return ArtifactStore(root)


def cmd_cache_ls(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    infos = store.ls()
    table = Table(
        f"artifact store {store.root}",
        ["stage", "key", "files", "KiB", "age (min)"],
        precision=1,
    )
    now = time.time()  # statcheck: ignore[DET003] - display-only entry age, never hashed
    for info in infos:
        table.add_row(
            info.stage,
            info.key[:16],
            info.n_files,
            info.n_bytes / 1024.0,
            (now - info.created_unix) / 60.0,
        )
    table.show()
    total_bytes = sum(info.n_bytes for info in infos)
    print(f"{len(infos)} entries, {total_bytes / (1024.0 * 1024.0):.2f} MiB")
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    removed = store.gc(max_age_days=args.max_age_days)
    for path in removed:
        print(f"removed {path}")
    print(f"gc: removed {len(removed)} paths from {store.root}")
    return 0


def cmd_cache_invalidate(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    removed = store.invalidate(args.pattern)
    for info in removed:
        print(f"invalidated {info.stage}/{info.key[:16]}")
    print(
        f"invalidate: removed {len(removed)} entries matching "
        f"{args.pattern!r} from {store.root}"
    )
    return 0


def cmd_cache_warm(args: argparse.Namespace) -> int:
    from repro.obs.manifest import build_manifest
    from repro.pipeline.stage import StageError

    store = _cache_store(args)
    if store is None:
        return 2
    overrides = {"artifact_dir": str(store.root)}
    if args.entities is not None:
        overrides["n_chemical_entities"] = args.entities
    lab = Lab(LabConfig(**overrides))
    try:
        results = lab.warm(jobs=args.jobs, executor=args.executor)
    except StageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    stages = (build_manifest().get("context") or {}).get("stages", {})
    statuses = {}
    for name in sorted(results):
        status = stages.get(name, {}).get("status", results[name].status)
        statuses[status] = statuses.get(status, 0) + 1
        print(f"  {name}: {status}")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
    print(f"warmed {len(results)} stages into {store.root} ({summary})")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Summarise a checkpoint journal left by an interrupted run."""
    from repro.llm.icl import FAILED
    from repro.resilience.checkpoint import Journal

    entries = Journal(args.journal).load()
    meta = entries.pop("__meta__", None)
    if not entries and meta is None:
        print(f"{args.journal}: empty or missing journal", file=sys.stderr)
        return 1
    print(f"journal: {args.journal}")
    if isinstance(meta, dict):
        described = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        print(f"experiment: {described}")
        total = int(meta.get("queries", 0)) * int(meta.get("repeats", 0))
        if total:
            print(
                f"progress: {len(entries)}/{total} deliveries "
                f"({100.0 * len(entries) / total:.1f}%)"
            )
    histogram: dict = {}
    for value in entries.values():
        histogram[str(value)] = histogram.get(str(value), 0) + 1
    for outcome in sorted(histogram):
        print(f"  {outcome}: {histogram[outcome]}")
    n_failed = histogram.get(FAILED, 0)
    if n_failed:
        print(f"degraded deliveries (permanent failures): {n_failed}")
    return 0


def _perf_protocol(args: argparse.Namespace):
    """The timing protocol selected by ``--quick``/``--repeats``/``--warmup``."""
    from repro.perf import FULL, QUICK, Protocol

    protocol = QUICK if args.quick else FULL
    if args.repeats is not None or args.warmup is not None:
        protocol = Protocol(
            warmup=protocol.warmup if args.warmup is None else args.warmup,
            repeats=protocol.repeats if args.repeats is None else args.repeats,
        )
    return protocol


def _measure_areas(names, protocol) -> List[dict]:
    """Measure the selected perf areas; returns one payload per area."""
    from repro.perf import result_payload, select_areas

    payloads = []
    for area in select_areas(names):
        print(f"measuring {area.name} ({area.title}) ...", file=sys.stderr)
        benchmark, workload = area.build()
        result = benchmark.measure(protocol)
        payloads.append(result_payload(result, workload))
    return payloads


def cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.perf import PerfError, render_results, write_results

    try:
        payloads = _measure_areas(args.areas, _perf_protocol(args))
        print(render_results(payloads))
        if args.output:
            path = write_results(payloads, args.output)
            print(f"wrote {path}")
    except PerfError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf import (
        PerfError,
        compare_exit_code,
        compare_result,
        load_baseline,
        load_results,
        parse_tolerance,
        render_comparison,
    )

    try:
        tolerance = parse_tolerance(args.tolerance)
        if args.from_file:
            payloads = load_results(args.from_file)
        else:
            payloads = _measure_areas(args.areas, _perf_protocol(args))
        comparisons = []
        for payload in payloads:
            try:
                baseline = load_baseline(payload["area"], args.dir)
            except PerfError:
                baseline = None
            comparisons.append(
                compare_result(payload, baseline, tolerance=tolerance)
            )
    except PerfError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_comparison(comparisons, tolerance))
    code = compare_exit_code(comparisons)
    if code == 0:
        print("perf: all areas within tolerance")
    elif code == 1:
        print("perf: regression detected", file=sys.stderr)
    else:
        print("perf: missing baselines (run `repro perf update`)",
              file=sys.stderr)
    return code


def cmd_perf_update(args: argparse.Namespace) -> int:
    from repro.perf import PerfError, write_baseline

    try:
        payloads = _measure_areas(args.areas, _perf_protocol(args))
        for payload in payloads:
            path = write_baseline(payload, args.dir)
            print(f"wrote {path}")
    except PerfError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.perf import (
        PerfError,
        area_names,
        load_baseline,
        load_results,
        render_results,
    )

    try:
        if args.from_file:
            payloads = load_results(args.from_file)
            title = f"perf results ({args.from_file})"
        else:
            payloads = []
            for name in args.areas or area_names():
                try:
                    payloads.append(load_baseline(name, args.dir))
                except PerfError:
                    print(f"(no baseline for {name})", file=sys.stderr)
            title = f"committed baselines ({args.dir})"
    except PerfError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not payloads:
        print("error: nothing to report", file=sys.stderr)
        return 2
    print(render_results(payloads, title=title))
    environment = payloads[0].get("environment") or {}
    print(
        f"environment: python {environment.get('python_version', '?')} | "
        f"numpy {environment.get('numpy_version', '?')} | "
        f"{environment.get('platform', '?')}"
    )
    return 0


def _lint_selection(args) -> tuple:
    """Resolve --rules/--flow/--diff into (per-file rules, flow, stale).

    ``--diff`` lints only files changed against a ref; whole-program flow
    rules and stale detection are disabled there because both are only
    sound over the full tree (a call graph over three files proves
    nothing about seed provenance, and a suppression can only be declared
    dead when every rule actually ran against its file's callers).
    """
    from repro import statcheck
    from repro.statcheck.flow import select_flow_rules

    ids = (
        [token.strip() for token in args.rules.split(",") if token.strip()]
        if args.rules
        else None
    )
    if args.diff is not None:
        if args.flow:
            print(
                "note: --flow is ignored with --diff (whole-program "
                "analysis needs the whole program)",
                file=sys.stderr,
            )
        return statcheck.select_rules(ids), False, False
    if ids is None:
        return None, (True if args.flow else None), None
    flow_family = set(statcheck.FAMILIES["flow"])
    flow_ids = [
        token
        for token in ids
        if token.lower() == "flow" or token.upper() in flow_family
    ]
    rules = statcheck.select_rules(ids)
    if flow_ids or args.flow:
        return rules, select_flow_rules(flow_ids or None), False
    return rules, False, False


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer.

    Exit 0 clean / 1 findings / 2 crash / 3 stale suppressions only.
    """
    import json
    from pathlib import Path

    from repro import statcheck

    try:
        paths = args.paths or None
        if args.diff is not None:
            changed = statcheck.changed_files(args.diff)
            if not changed:
                print(f"statcheck: no python files changed vs {args.diff}")
                return 0
            paths = changed
        if args.quick:
            started = time.perf_counter()
            findings = statcheck.quick_check(paths)
            report = statcheck.LintReport(
                findings=findings,
                n_files=len(statcheck.discover_files(paths)),
                duration_s=time.perf_counter() - started,
            )
        else:
            rules, flow, stale = _lint_selection(args)
            report = statcheck.run_lint(paths, rules=rules, flow=flow, stale=stale)
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            count = statcheck.write_baseline(baseline_path, report.findings)
            print(
                f"statcheck: baseline {baseline_path} updated "
                f"({count} entr{'y' if count == 1 else 'ies'})"
            )
            return 0
        if baseline_path.is_file():
            baseline = statcheck.load_baseline(baseline_path)
            report.findings, report.baselined = statcheck.split_baselined(
                report.findings, baseline
            )
        statcheck.record_inventory(report)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                statcheck.write_json(report, handle)
        if args.sarif:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                statcheck.write_sarif(report, handle)
        if args.format == "json":
            print(
                json.dumps(
                    statcheck.render_json(report), indent=2, sort_keys=True
                )
            )
        elif args.format == "sarif":
            print(
                json.dumps(
                    statcheck.render_sarif(report), indent=2, sort_keys=True
                )
            )
        else:
            print(statcheck.render_text(report, verbose=args.verbose))
    except statcheck.StatcheckError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # statcheck: ignore[RES001] - exit code 2 IS the accounting; CI treats it as a crash
    except Exception as error:
        print(f"error: statcheck crashed: {error}", file=sys.stderr)
        return 2
    if report.findings:
        return 1
    if report.stale:
        return 3
    return 0


def _serve_service(args: argparse.Namespace):
    """Warm the requested backends and assemble the curation service."""
    from repro.serve.bench import bench_lab_config
    from repro.serve.curator import build_pool
    from repro.serve.service import CurationService

    lab = Lab(bench_lab_config(entities=args.entities, seed=args.seed))
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    print(f"warming backends: {', '.join(backends)} ...", file=sys.stderr)
    curators = build_pool(
        lab, backends, task=args.task, seed=args.seed, icl_model=args.model
    )
    return CurationService.from_curators(
        curators,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        max_queue=args.queue_size,
    )


def _serve_smoke(port: int) -> int:
    """One healthz + one classify round-trip over real HTTP; 0 on success."""
    import http.client
    import json

    from repro.serve.schemas import SERVE_FORMAT

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", "/healthz")
        health = json.loads(connection.getresponse().read().decode("utf-8"))
        if health.get("status") != "ok":
            print(f"smoke: unhealthy: {health}", file=sys.stderr)
            return 1
        body = json.dumps(
            {
                "triples": [
                    {
                        "subject": "smoke acid",
                        "relation": "has_role",
                        "object": "smoke inhibitor",
                    }
                ]
            },
            sort_keys=True,
        )
        connection.request(
            "POST", "/v1/classify", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        if response.status != 200 or payload.get("format") != SERVE_FORMAT:
            print(f"smoke: bad response {response.status}: {payload}",
                  file=sys.stderr)
            return 1
        print(f"smoke: ok (backend={payload['backend']}, "
              f"labels={payload['labels']})")
        return 0
    finally:
        connection.close()


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import start_server, stop_server

    service = _serve_service(args).start()
    # Smoke runs always bind an ephemeral port so they never collide with a
    # real server (or another CI job) on the default port.
    listen_port = 0 if args.smoke else args.port
    server, thread, port = start_server(service, host=args.host, port=listen_port)
    print(f"serving on http://{args.host}:{port} "
          f"(backends: {', '.join(sorted(service.pool))})")
    if args.smoke:
        try:
            return _serve_smoke(port)
        finally:
            stop_server(server, thread)
    try:
        while thread.is_alive():
            thread.join(timeout=1.0)
    except KeyboardInterrupt:
        print("shutting down ...", file=sys.stderr)
    finally:
        stop_server(server, thread)
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.perf import (
        PerfError,
        compare_exit_code,
        compare_result,
        load_baseline,
        parse_tolerance,
        render_comparison,
        write_baseline,
    )
    from repro.serve.bench import (
        SERVE_AREA,
        ServeWorkload,
        measure_serve,
        serve_payload,
    )

    workload = ServeWorkload(
        clients=args.clients,
        requests=args.requests,
        batch=args.batch,
        backend=args.backend,
        task=args.task,
        entities=args.entities,
        seed=args.seed,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=args.queue_size,
    )
    print(
        f"bench serve: {workload.clients} clients x {workload.requests} "
        f"requests x {workload.batch} triples against backend "
        f"{workload.backend!r} ...",
        file=sys.stderr,
    )
    try:
        result, serving = measure_serve(workload, _perf_protocol(args))
    except PerfError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = serve_payload(result, workload, serving)
    print(
        f"wave median {result.stats.median * 1e3:.1f} ms | "
        f"p50 {serving['latency_p50_ms']} ms | p99 {serving['latency_p99_ms']} ms | "
        f"{serving['throughput_rps']} req/s | shed rate {serving['shed_rate']} | "
        f"deterministic: {result.deterministic}"
    )
    if args.output:
        from repro.utils.atomic import atomic_write

        with atomic_write(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.manifest:
        from repro.obs.manifest import write_manifest

        write_manifest(args.manifest, extra={"serve_bench": payload})
        print(f"wrote {args.manifest}")
    if args.update:
        path = write_baseline(payload, args.dir)
        print(f"wrote {path}")
        return 0
    if args.compare:
        try:
            tolerance = parse_tolerance(args.tolerance)
            baseline = load_baseline(SERVE_AREA, args.dir)
        except PerfError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        comparison = compare_result(payload, baseline, tolerance=tolerance)
        print(render_comparison([comparison], tolerance))
        return compare_exit_code([comparison])
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChEBI knowledge-curation benchmark reproduction",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable span tracing and stderr progress (like REPRO_TRACE=1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable span profiling — implies --trace; manifests gain "
        "hotspots.functions/allocations (like REPRO_PROFILE=1)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synthesize", help="generate a synthetic ontology")
    synth.add_argument("output", help="OBO file to write")
    synth.add_argument("--entities", type=int, default=1_000)
    synth.set_defaults(func=cmd_synthesize)

    cen = subparsers.add_parser("census", help="census of an OBO file")
    cen.add_argument("obo", help="OBO file to read")
    cen.set_defaults(func=cmd_census)

    data = subparsers.add_parser("dataset", help="build a task dataset")
    data.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    data.add_argument("--obo", help="OBO file (default: synthesize)")
    data.add_argument("--entities", type=int, default=1_000)
    data.add_argument("--show", type=int, default=5,
                      help="sample triples to print")
    data.set_defaults(func=cmd_dataset)

    ev = subparsers.add_parser("evaluate", help="train and score one paradigm")
    ev.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    ev.add_argument("--paradigm", choices=("rf", "lstm", "ft", "icl"),
                    default="rf")
    ev.add_argument("--embedding", default="W2V-Chem")
    ev.add_argument("--adaptation", choices=("none", "naive", "task-oriented"),
                    default="naive")
    ev.add_argument("--model", choices=sorted(SIMULATED_MODELS), default="gpt-4")
    ev.add_argument("--entities", type=int, default=800)
    ev.add_argument("--max-train", type=int, default=1_500, dest="max_train")
    ev.add_argument("--max-test", type=int, default=400, dest="max_test")
    ev.set_defaults(func=cmd_evaluate)

    icl = subparsers.add_parser("icl", help="run the Table 5 ICL protocol")
    icl.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    icl.add_argument("--model", choices=sorted(SIMULATED_MODELS), default="gpt-4")
    icl.add_argument("--variant", type=int, choices=(1, 2, 3), default=1)
    icl.add_argument("--entities", type=int, default=800)
    icl.add_argument("--max-train", type=int, default=1_500, dest="max_train")
    icl.add_argument("--max-test", type=int, default=400, dest="max_test")
    icl.add_argument(
        "--journal", help="checkpoint journal path (JSONL, one line/delivery)"
    )
    icl.add_argument(
        "--resume", action="store_true",
        help="resume from --journal instead of starting fresh",
    )
    icl.add_argument(
        "--faults", metavar="SPEC",
        help="inject faults, e.g. 'timeout:0.1,http500:0.05,malformed:0.05'",
    )
    icl.add_argument("--fault-seed", type=int, default=0, dest="fault_seed")
    icl.add_argument(
        "--max-deliveries", type=int, default=None, dest="max_deliveries",
        help="stop (exit 3) after this many fresh deliveries; use with "
        "--journal to exercise resume",
    )
    icl.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent delivery workers (>1 routes through the delivery "
        "engine; the table stays byte-identical to --jobs 1)",
    )
    icl.add_argument(
        "--backends", type=int, default=1, dest="n_backends",
        help="simulated backend replicas the engine dispatches over",
    )
    icl.add_argument(
        "--hedge-ms", type=float, default=None, dest="hedge_ms",
        help="hedge a delivery to a second backend after this many ms "
        "without a response",
    )
    icl.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help="per-delivery deadline budget in ms (expired deliveries count "
        "as failed)",
    )
    icl.add_argument(
        "--cache", metavar="DIR",
        help="content-addressed response cache directory (an ArtifactStore); "
        "warm reruns rebuild zero completions",
    )
    icl.add_argument("--output", help="also save the table to this path")
    icl.set_defaults(func=cmd_icl)

    trace = subparsers.add_parser(
        "trace", help="pretty-print a saved run manifest"
    )
    trace.add_argument("manifest", help="path to a *.manifest.json file")
    trace.add_argument(
        "--slowest", type=int, default=None, metavar="N",
        help="show only the top-N stages ranked by aggregate self time",
    )
    trace.set_defaults(func=cmd_trace)

    perf = subparsers.add_parser(
        "perf", help="run, compare and refresh the perf-area benchmarks"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _perf_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "areas", nargs="*",
            help="perf areas to include (default: all registered areas)",
        )
        sub.add_argument(
            "--quick", action="store_true",
            help="abbreviated protocol (fewer warmup/repeats, same workload)",
        )
        sub.add_argument("--repeats", type=int, default=None,
                         help="override timed repeats")
        sub.add_argument("--warmup", type=int, default=None,
                         help="override warmup executions")
        sub.add_argument(
            "--dir", default=".",
            help="directory holding BENCH_<area>.json baselines (default: .)",
        )

    perf_run = perf_sub.add_parser(
        "run", help="measure perf areas and print robust stats"
    )
    _perf_common(perf_run)
    perf_run.add_argument(
        "--output", default=None,
        help="also write a results JSON document to this path",
    )
    perf_run.set_defaults(func=cmd_perf_run)

    perf_cmp = perf_sub.add_parser(
        "compare",
        help="diff current (or --from) numbers against committed baselines; "
        "exit 0 ok, 1 regression, 2 harness/baseline error",
    )
    _perf_common(perf_cmp)
    perf_cmp.add_argument(
        "--tolerance", default="25%",
        help="relative slowdown allowed before flagging (e.g. '25%%' or 0.25)",
    )
    perf_cmp.add_argument(
        "--from", dest="from_file", default=None, metavar="RESULTS",
        help="compare a results JSON from `perf run --output` instead of "
        "re-measuring",
    )
    perf_cmp.set_defaults(func=cmd_perf_compare)

    perf_upd = perf_sub.add_parser(
        "update", help="re-measure and rewrite the BENCH_<area>.json baselines"
    )
    _perf_common(perf_upd)
    perf_upd.set_defaults(func=cmd_perf_update)

    perf_rep = perf_sub.add_parser(
        "report", help="render committed baselines (or a results JSON)"
    )
    _perf_common(perf_rep)
    perf_rep.add_argument(
        "--from", dest="from_file", default=None, metavar="RESULTS",
        help="render a results JSON instead of the committed baselines",
    )
    perf_rep.set_defaults(func=cmd_perf_report)

    def _serve_knobs(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
        sub.add_argument(
            "--entities", type=int, default=120,
            help="ontology size the backends are trained on",
        )
        sub.add_argument(
            "--max-batch", type=int, default=32,
            help="flush a coalesced batch at this many triples",
        )
        sub.add_argument(
            "--max-wait-ms", type=float, default=2.0,
            help="flush once the oldest request waited this long "
            "(0 disables coalescing)",
        )
        sub.add_argument(
            "--queue-size", type=int, default=1024,
            help="bounded queue per backend; overflow is shed with 503",
        )

    serve = subparsers.add_parser(
        "serve", help="run the triple-classification HTTP server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8077,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--backends", default="rf,lstm,ft,icl",
        help="comma-separated backends to warm (rf, lstm, ft, icl)",
    )
    serve.add_argument(
        "--model", default="gpt-4",
        help="simulated chat model behind the icl backend",
    )
    _serve_knobs(serve)
    serve.add_argument(
        "--smoke", action="store_true",
        help="bind an ephemeral port, run one healthz + classify "
        "round-trip over HTTP, shut down, exit 0 on success",
    )
    serve.set_defaults(func=cmd_serve)

    bench = subparsers.add_parser(
        "bench", help="traffic-driven benchmarks for the serving layer"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_serve = bench_sub.add_parser(
        "serve", help="drive concurrent synthetic clients at an "
        "in-process server; optionally update/compare BENCH_serve.json",
    )
    bench_serve.add_argument(
        "--clients", type=int, default=200,
        help="concurrent client threads per wave",
    )
    bench_serve.add_argument(
        "--requests", type=int, default=3,
        help="sequential requests per client per wave",
    )
    bench_serve.add_argument(
        "--batch", type=int, default=4, help="triples per request"
    )
    bench_serve.add_argument(
        "--backend", default="rf", choices=("rf", "lstm", "ft", "icl"),
        help="backend the traffic targets",
    )
    _serve_knobs(bench_serve)
    bench_serve.add_argument(
        "--quick", action="store_true",
        help="abbreviated timing protocol (1 warmup / 3 waves)",
    )
    bench_serve.add_argument("--warmup", type=int, default=None)
    bench_serve.add_argument("--repeats", type=int, default=None)
    bench_serve.add_argument(
        "--update", action="store_true",
        help="write BENCH_serve.json in --dir",
    )
    bench_serve.add_argument(
        "--compare", action="store_true",
        help="diff against the committed BENCH_serve.json "
        "(exit 0 ok, 1 regression/drift, 2 harness error)",
    )
    bench_serve.add_argument(
        "--tolerance", default="25%",
        help="relative regression tolerance for --compare",
    )
    bench_serve.add_argument(
        "--dir", default=".", help="directory holding BENCH_serve.json"
    )
    bench_serve.add_argument(
        "--output", default=None, help="also write the full results JSON here"
    )
    bench_serve.add_argument(
        "--manifest", default=None,
        help="write an obs manifest (with the bench payload) here",
    )
    bench_serve.set_defaults(func=cmd_bench_serve)

    resume = subparsers.add_parser(
        "resume", help="inspect a checkpoint journal"
    )
    resume.add_argument("journal", help="path to a *.journal.jsonl file")
    resume.set_defaults(func=cmd_resume)

    cache = subparsers.add_parser(
        "cache", help="manage the persistent artifact store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def _dir_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir", default=None,
            help="store directory (default: $REPRO_ARTIFACTS)",
        )

    cache_ls = cache_sub.add_parser("ls", help="list complete store entries")
    _dir_option(cache_ls)
    cache_ls.set_defaults(func=cmd_cache_ls)

    cache_gc = cache_sub.add_parser(
        "gc", help="remove temp dirs, incomplete entries and stale locks"
    )
    _dir_option(cache_gc)
    cache_gc.add_argument(
        "--max-age-days", type=float, default=None, dest="max_age_days",
        help="also remove complete entries older than this many days",
    )
    cache_gc.set_defaults(func=cmd_cache_gc)

    cache_inv = cache_sub.add_parser(
        "invalidate", help="remove entries whose stage matches a glob"
    )
    cache_inv.add_argument(
        "pattern", help="stage-name glob, e.g. 'embedding-*' or 'bert'"
    )
    _dir_option(cache_inv)
    cache_inv.set_defaults(func=cmd_cache_invalidate)

    cache_warm = cache_sub.add_parser(
        "warm", help="build every persistable stage into the store"
    )
    _dir_option(cache_warm)
    cache_warm.add_argument(
        "--jobs", type=int, default=None,
        help="parallel stage builds (default: executor's choice)",
    )
    cache_warm.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
    )
    cache_warm.add_argument(
        "--entities", type=int, default=None,
        help="override n_chemical_entities (default: LabConfig default, "
        "matching the benchmark suite)",
    )
    cache_warm.set_defaults(func=cmd_cache_warm)

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: determinism, stage purity, concurrency, "
        "resilience/obs contracts",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/dirs to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument(
        "--quick", action="store_true",
        help="only the compile + import-cycle smoke check",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids or families, "
        "e.g. 'determinism,CONC001,flow'",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="run the whole-program flow rules (FLOW001-004/GRAPH001) "
        "even when --rules narrows the per-file selection; flow rules "
        "are part of the default run",
    )
    lint.add_argument(
        "--diff", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only python files changed vs REF (default HEAD), "
        "plus untracked ones; per-file rules only",
    )
    lint.add_argument(
        "--baseline", default=".statcheck-baseline.json", metavar="PATH",
        help="baseline file; when present, baselined findings are "
        "reported but do not fail the run",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from this run's findings and exit 0",
    )
    lint.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 report to this path "
        "(GitHub code scanning)",
    )
    lint.add_argument(
        "--output", default=None,
        help="also write the JSON report to this path",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed and baselined findings (text format)",
    )
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", False) or getattr(args, "profile", False):
        from repro import obs

        obs.enable()
    if getattr(args, "profile", False):
        from repro.perf import profiler

        profiler.install()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
