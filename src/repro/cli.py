"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``synthesize`` — generate a ChEBI-like ontology and write it as OBO;
* ``census`` — print the entity/relationship census of an OBO file;
* ``dataset`` — build one curation-task dataset and print its statistics;
* ``evaluate`` — train and score one paradigm on one task;
* ``icl`` — run the Table 5 prompting protocol with a simulated model;
* ``trace`` — pretty-print a saved run manifest as a span-time summary.

Every command is deterministic given ``--seed``.  The global ``--trace``
flag enables span tracing and stderr progress for any command (equivalent
to ``REPRO_TRACE=1``); ``--version`` prints the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Lab, LabConfig, build_task_dataset
from repro.core.comparison import evaluate_paradigm
from repro.core.datasets import train_test_split_9_1
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    LSTMParadigm,
    RandomForestParadigm,
)
from repro.core.reporting import Table
from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
from repro.llm.prompts import PromptVariant
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    LLAMA2_PROFILE,
    SimulatedChatModel,
    truth_table,
)
from repro.ontology import SynthesisConfig, census, synthesize_chebi_like
from repro.ontology.obo import dump_obo, load_obo

SIMULATED_MODELS = {
    "gpt-4": GPT4_PROFILE,
    "gpt-3.5-turbo": GPT35_PROFILE,
    "biogpt": BIOGPT_PROFILE,
    "llama-2": LLAMA2_PROFILE,
}


def _small_lab(args: argparse.Namespace) -> Lab:
    return Lab(
        LabConfig(
            n_chemical_entities=args.entities,
            ontology_seed=args.seed,
            seed=args.seed,
            max_train=args.max_train,
            max_test=args.max_test,
        )
    )


def cmd_synthesize(args: argparse.Namespace) -> int:
    ontology = synthesize_chebi_like(
        SynthesisConfig(n_chemical_entities=args.entities, seed=args.seed)
    )
    dump_obo(ontology, args.output)
    print(
        f"wrote {args.output}: {ontology.num_entities} entities, "
        f"{ontology.num_statements} statements"
    )
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    ontology = load_obo(args.obo)
    result = census(ontology)
    table = Table(f"Census of {args.obo}", ["relation", "triples", "share"],
                  precision=3)
    for name, share in result.relation_shares().items():
        table.add_row(name, result.statements_by_relation[name], share)
    table.show()
    print(f"entities by sub-ontology: {result.entities_by_sub_ontology}")
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    if args.obo:
        ontology = load_obo(args.obo)
    else:
        ontology = synthesize_chebi_like(
            SynthesisConfig(n_chemical_entities=args.entities, seed=args.seed)
        )
    dataset = build_task_dataset(ontology, args.task, seed=args.seed)
    n_pos, n_neg = dataset.counts()
    split = train_test_split_9_1(dataset, seed=args.seed)
    print(f"task {args.task}: {n_pos} positive / {n_neg} negative triples")
    print(f"9:1 split: {len(split.train)} train / {len(split.test)} test")
    for triple in list(dataset)[: args.show]:
        print(f"  [{triple.label}] {triple.as_text()}")
    return 0


def _build_paradigm(args: argparse.Namespace, lab: Lab):
    if args.paradigm == "rf":
        return RandomForestParadigm(
            lab.embedding(args.embedding),
            token_filter=lab.adaptation_filter(args.adaptation, args.embedding),
            config=lab.rf_config(),
        )
    if args.paradigm == "lstm":
        return LSTMParadigm(
            lab.embedding(args.embedding),
            token_filter=lab.adaptation_filter(args.adaptation, args.embedding),
            config=lab.lstm_config(),
        )
    if args.paradigm == "ft":
        return FineTuneParadigm(lab.bert, lab.ft_config())
    # icl
    client = SimulatedChatModel(
        SIMULATED_MODELS[args.model],
        truth_table(lab.dataset(args.task)),
        args.task,
        seed=args.seed,
    )
    return ICLParadigm(client, seed=args.seed)


def cmd_evaluate(args: argparse.Namespace) -> int:
    lab = _small_lab(args)
    split = lab.ml_split(args.task)
    paradigm = _build_paradigm(args, lab)
    print(f"fitting {paradigm.name} on {len(split.train)} triples ...")
    paradigm.fit(list(split.train))
    row = evaluate_paradigm(paradigm, list(split.test))
    table = Table(
        f"{paradigm.name} on task {args.task}",
        ["accuracy", "precision", "recall", "F1", "unclassified"],
    )
    table.add_row(row.accuracy, row.precision, row.recall, row.f1,
                  row.n_unclassified)
    table.show()
    return 0


def _render_span(node: dict, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    details = dict(node.get("attrs") or {})
    details.update(node.get("counters") or {})
    extras = ""
    if details:
        extras = "  [" + ", ".join(
            f"{k}={v}" for k, v in sorted(details.items())
        ) + "]"
    lines.append(
        f"{pad}{node['name']:<{max(1, 40 - len(pad))}} "
        f"total {node['duration_s']*1000:10.2f} ms   "
        f"self {node['self_time_s']*1000:10.2f} ms{extras}"
    )
    for child in node.get("children", ()):
        _render_span(child, indent + 1, lines)


def _aggregate_self_times(node: dict, totals: dict) -> None:
    entry = totals.setdefault(node["name"], {"self": 0.0, "total": 0.0, "count": 0})
    entry["self"] += node.get("self_time_s", 0.0)
    entry["total"] += node.get("duration_s", 0.0)
    entry["count"] += 1
    for child in node.get("children", ()):
        _aggregate_self_times(child, totals)


def render_manifest(manifest: dict) -> str:
    """Flame-style text rendering of a manifest's span tree + summary."""
    lines: List[str] = []
    environment = manifest.get("environment", {})
    lines.append(f"manifest: {manifest.get('artefact', manifest.get('title', '?'))}")
    lines.append(
        f"created {manifest.get('created', '?')} | "
        f"python {environment.get('python_version', '?')} | "
        f"numpy {environment.get('numpy_version', '?')} | "
        f"platform {environment.get('platform', '?')}"
    )
    memory = manifest.get("memory") or {}
    if memory.get("peak_rss_mb") is not None:
        lines.append(f"peak RSS: {memory['peak_rss_mb']:.1f} MiB")
    lines.append("")
    lines.append("span tree")
    lines.append("---------")
    for root in manifest.get("spans", ()):
        _render_span(root, 0, lines)
    if not manifest.get("spans"):
        lines.append("(no spans recorded)")

    totals: dict = {}
    for root in manifest.get("spans", ()):
        _aggregate_self_times(root, totals)
    table = Table(
        "per-stage self time (descending)",
        ["stage", "self ms", "total ms", "spans"],
        precision=2,
    )
    for name, entry in sorted(
        totals.items(), key=lambda item: item[1]["self"], reverse=True
    ):
        table.add_row(
            name, entry["self"] * 1000, entry["total"] * 1000, entry["count"]
        )
    lines.append("")
    lines.append(table.render())
    return "\n".join(lines)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.manifest import ManifestError, load_manifest

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_manifest(manifest))
    return 0


def cmd_icl(args: argparse.Namespace) -> int:
    lab = _small_lab(args)
    dataset = lab.dataset(args.task)
    split = train_test_split_9_1(dataset, seed=args.seed)
    config = ICLConfig(seed=args.seed)
    queries = build_icl_queries(dataset, config)
    client = SimulatedChatModel(
        SIMULATED_MODELS[args.model], truth_table(dataset), args.task,
        seed=args.seed,
    )
    variant = PromptVariant(args.variant)
    result = run_icl_experiment(client, list(split.train), queries, variant, config)
    table = Table(
        f"ICL protocol: {args.model}, variant #{args.variant}, task {args.task}",
        ["accuracy", "unclassified", "precision", "recall", "F1", "kappa"],
    )
    table.add_row(
        result.accuracy_mean, result.n_unclassified, result.precision_mean,
        result.recall_mean, result.f1_mean, result.kappa,
    )
    table.show()
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChEBI knowledge-curation benchmark reproduction",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable span tracing and stderr progress (like REPRO_TRACE=1)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synthesize", help="generate a synthetic ontology")
    synth.add_argument("output", help="OBO file to write")
    synth.add_argument("--entities", type=int, default=1_000)
    synth.set_defaults(func=cmd_synthesize)

    cen = subparsers.add_parser("census", help="census of an OBO file")
    cen.add_argument("obo", help="OBO file to read")
    cen.set_defaults(func=cmd_census)

    data = subparsers.add_parser("dataset", help="build a task dataset")
    data.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    data.add_argument("--obo", help="OBO file (default: synthesize)")
    data.add_argument("--entities", type=int, default=1_000)
    data.add_argument("--show", type=int, default=5,
                      help="sample triples to print")
    data.set_defaults(func=cmd_dataset)

    ev = subparsers.add_parser("evaluate", help="train and score one paradigm")
    ev.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    ev.add_argument("--paradigm", choices=("rf", "lstm", "ft", "icl"),
                    default="rf")
    ev.add_argument("--embedding", default="W2V-Chem")
    ev.add_argument("--adaptation", choices=("none", "naive", "task-oriented"),
                    default="naive")
    ev.add_argument("--model", choices=sorted(SIMULATED_MODELS), default="gpt-4")
    ev.add_argument("--entities", type=int, default=800)
    ev.add_argument("--max-train", type=int, default=1_500, dest="max_train")
    ev.add_argument("--max-test", type=int, default=400, dest="max_test")
    ev.set_defaults(func=cmd_evaluate)

    icl = subparsers.add_parser("icl", help="run the Table 5 ICL protocol")
    icl.add_argument("--task", type=int, choices=(1, 2, 3), default=1)
    icl.add_argument("--model", choices=sorted(SIMULATED_MODELS), default="gpt-4")
    icl.add_argument("--variant", type=int, choices=(1, 2, 3), default=1)
    icl.add_argument("--entities", type=int, default=800)
    icl.add_argument("--max-train", type=int, default=1_500, dest="max_train")
    icl.add_argument("--max-test", type=int, default=400, dest="max_test")
    icl.set_defaults(func=cmd_icl)

    trace = subparsers.add_parser(
        "trace", help="pretty-print a saved run manifest"
    )
    trace.add_argument("manifest", help="path to a *.manifest.json file")
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", False):
        from repro import obs

        obs.enable()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
