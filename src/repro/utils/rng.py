"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise that choice and let a
component derive independent, reproducible child streams keyed by a string
label, so that (for example) adding a new consumer of randomness in one module
does not silently reshuffle another module's draws.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_HASH_MASK = (1 << 63) - 1


def stable_hash(*parts: object) -> int:
    """Return a 63-bit hash of ``parts`` that is stable across processes.

    Python's built-in :func:`hash` is salted per process for strings, which
    would destroy reproducibility; this uses blake2b instead.

    >>> stable_hash("a", 1) == stable_hash("a", 1)
    True
    >>> stable_hash("a") != stable_hash("b")
    True
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & _HASH_MASK


def stable_digest(*parts: object) -> str:
    """Return a 32-hex-char digest of ``parts``, stable across processes.

    The content-addressed artifact store keys every stage by this digest of
    its configuration slice, code version and upstream keys; like
    :func:`stable_hash` it uses blake2b so keys agree between runs and hosts.

    >>> stable_digest("a", 1) == stable_digest("a", 1)
    True
    >>> stable_digest("a") != stable_digest("b")
    True
    """
    return hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=16
    ).hexdigest()


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a default, *fixed* generator (seed 0) rather than entropy
    from the OS: reproducibility is the default in this library, and callers
    that want true nondeterminism can pass ``np.random.default_rng()``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(seed))


def derive_rng(seed: SeedLike, *labels: object) -> np.random.Generator:
    """Derive an independent generator keyed by ``labels``.

    When ``seed`` is an integer (or ``None``), the child stream depends only on
    the seed and the labels, so two calls with the same arguments agree across
    processes.  When ``seed`` is already a generator, a child is spawned by
    drawing a base integer from it (order-dependent, as documented).
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, _HASH_MASK))
    else:
        base = 0 if seed is None else int(seed)
    return np.random.default_rng(stable_hash(base, *labels))


__all__ = ["SeedLike", "stable_hash", "stable_digest", "ensure_rng", "derive_rng"]
