"""Model persistence: save/load trained embeddings and mini-BERT models.

Two layouts coexist:

* single-file ``.npz`` archives (matrix + vocabulary + counts, or every
  BERT parameter tensor in construction order) — portable model exports;
* *store entry* layouts for static/fastText embeddings: the big matrix as
  a standalone uncompressed ``.npy`` (via :mod:`repro.pipeline.arrays`, so
  large tables memory-map on load) next to an ``embedding.json`` carrying
  the vocabulary and metadata.  Tokens are written in vocabulary-id order,
  so reloading needs no row realignment and the mapped matrix is served
  zero-copy.

Saves are crash-safe: files are written to a temp name in the target
directory and renamed into place, so a killed run never leaves a truncated
artifact behind.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.bert.model import BertConfig, MiniBert
from repro.bert.wordpiece import WordPieceTokenizer
from repro.embeddings.base import StaticEmbeddings
from repro.embeddings.fasttext import FastText, FastTextConfig
from repro.pipeline import serialize
from repro.pipeline.arrays import load_array, save_array
from repro.text.vocab import Vocabulary
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

_EMBEDDING_FORMAT = "repro-static-embeddings-v1"
_BERT_FORMAT = "repro-minibert-v1"
_FASTTEXT_FORMAT = "repro-fasttext-v1"
_EMBEDDING_ENTRY_FORMAT = "repro-static-embeddings-entry-v1"
_FASTTEXT_ENTRY_FORMAT = "repro-fasttext-entry-v1"


def _vocabulary_payload(vocabulary: Vocabulary) -> dict:
    tokens = list(vocabulary)  # iteration order == dense id order
    return {
        "tokens": tokens,
        "counts": [vocabulary.count(t) for t in tokens],
    }


def _vocabulary_and_order(payload: dict, matrix_rows: int):
    """Rebuild the vocabulary; returns ``(vocabulary, order_or_None)``.

    ``order`` is ``None`` when file rows already sit in dense-id order (the
    layout this module writes), letting callers keep a memory-mapped matrix
    as-is instead of realigning (which would copy it into RAM).
    """
    tokens = [str(t) for t in payload["tokens"]]
    counts = {t: int(c) for t, c in zip(tokens, payload["counts"])}
    vocabulary = Vocabulary(counts)
    if all(vocabulary.token_of(i) == tokens[i] for i in range(len(vocabulary))):
        return vocabulary, None
    row_of = {token: row for row, token in enumerate(tokens)}
    return vocabulary, [
        row_of[vocabulary.token_of(i)] for i in range(len(vocabulary))
    ]


def _npz_path(path: PathLike) -> Path:
    """Mirror numpy's string-path behaviour: append ``.npz`` if missing."""
    path = Path(path)
    if not str(path).endswith(".npz"):
        path = Path(str(path) + ".npz")
    return path


def save_embeddings(model: StaticEmbeddings, path: PathLike) -> None:
    """Serialise a static embedding table to ``path`` (``.npz``)."""
    tokens = list(model.vocabulary)
    counts = [model.vocabulary.count(t) for t in tokens]
    with atomic_write(_npz_path(path), "wb") as handle:
        np.savez_compressed(
            handle,
            format=np.array(_EMBEDDING_FORMAT),
            name=np.array(model.name),
            matrix=model.matrix,
            tokens=np.array(tokens, dtype=object),
            counts=np.array(counts, dtype=np.int64),
            oov_seed=np.array(getattr(model, "oov_seed", 0), dtype=np.int64),
        )


def load_embeddings(path: PathLike) -> StaticEmbeddings:
    """Load a static embedding table written by :func:`save_embeddings`."""
    with np.load(path, allow_pickle=True) as data:
        if str(data["format"]) != _EMBEDDING_FORMAT:
            raise ValueError(
                f"{path} is not a {_EMBEDDING_FORMAT} file "
                f"(found {data['format']!r})"
            )
        payload = {"tokens": data["tokens"], "counts": data["counts"]}
        matrix = np.asarray(data["matrix"])
        # Vocabulary re-sorts by (count, token); realign matrix rows only if
        # the file was written with a different ordering convention.
        vocabulary, order = _vocabulary_and_order(payload, matrix.shape[0])
        if order is not None:
            matrix = matrix[order]
        # oov_seed is absent from pre-pipeline archives; those were all
        # written with the default seed 0.
        oov_seed = int(data["oov_seed"]) if "oov_seed" in data.files else 0
        return StaticEmbeddings(
            vocabulary, matrix, name=str(data["name"]), oov_seed=oov_seed
        )


def save_fasttext(model: FastText, path: PathLike) -> None:
    """Serialise a :class:`FastText` model (word + n-gram bucket table).

    Unlike plain static embeddings, fastText composes vectors from hashed
    subword rows, so the full table (vocab + bucket rows) and the training
    config (n-gram lengths, bucket size) must round-trip exactly.
    """
    tokens = list(model.vocabulary)
    counts = [model.vocabulary.count(t) for t in tokens]
    config = model.config
    config_json = json.dumps(
        {
            "dim": config.dim,
            "window": config.window,
            "negative": config.negative,
            "epochs": config.epochs,
            "learning_rate": config.learning_rate,
            "min_count": config.min_count,
            "batch_size": config.batch_size,
            "min_n": config.min_n,
            "max_n": config.max_n,
            "bucket": config.bucket,
            "seed": config.seed,
        },
        sort_keys=True,
    )
    with atomic_write(_npz_path(path), "wb") as handle:
        np.savez_compressed(
            handle,
            format=np.array(_FASTTEXT_FORMAT),
            name=np.array(model.name),
            config=np.array(config_json),
            table=model.table,
            tokens=np.array(tokens, dtype=object),
            counts=np.array(counts, dtype=np.int64),
        )


def load_fasttext(path: PathLike) -> FastText:
    """Load a fastText model written by :func:`save_fasttext`."""
    with np.load(path, allow_pickle=True) as data:
        if str(data["format"]) != _FASTTEXT_FORMAT:
            raise ValueError(
                f"{path} is not a {_FASTTEXT_FORMAT} file "
                f"(found {data['format']!r})"
            )
        payload = {"tokens": data["tokens"], "counts": data["counts"]}
        table = np.asarray(data["table"])
        config = FastTextConfig(**json.loads(str(data["config"])))
        # Word rows are indexed by vocabulary id; realign them only if the
        # archive used a different ordering.  Bucket rows follow unchanged.
        vocabulary, order = _vocabulary_and_order(payload, table.shape[0])
        if order is not None:
            table = np.concatenate([table[order], table[len(vocabulary):]])
        return FastText(vocabulary, table, config, name=str(data["name"]))


# -- store entry layouts (mmap-backed) ---------------------------------------


def save_embeddings_entry(model: StaticEmbeddings, entry_dir: PathLike) -> None:
    """Store-entry layout: ``matrix.npy`` + ``embedding.json``.

    The matrix is a standalone uncompressed ``.npy`` with rows in dense
    vocabulary-id order, so loads can memory-map it and serve it without a
    realignment copy.
    """
    entry_dir = Path(entry_dir)
    save_array(entry_dir / "matrix.npy", model.matrix)
    serialize.write_json(
        entry_dir / "embedding.json",
        {
            "format": _EMBEDDING_ENTRY_FORMAT,
            "name": model.name,
            "oov_seed": int(getattr(model, "oov_seed", 0)),
            **_vocabulary_payload(model.vocabulary),
        },
    )


def load_embeddings_entry(entry_dir: PathLike) -> StaticEmbeddings:
    """Load a :func:`save_embeddings_entry` layout (matrix mmap-eligible)."""
    entry_dir = Path(entry_dir)
    payload = serialize.read_json(
        entry_dir / "embedding.json", _EMBEDDING_ENTRY_FORMAT
    )
    matrix = load_array(entry_dir / "matrix.npy")
    vocabulary, order = _vocabulary_and_order(payload, matrix.shape[0])
    if order is not None:  # foreign row order: realign (copies, drops mmap)
        matrix = np.asarray(matrix)[order]
    return StaticEmbeddings(
        vocabulary,
        matrix,
        name=str(payload["name"]),
        oov_seed=int(payload.get("oov_seed", 0)),
    )


def save_fasttext_entry(model: FastText, entry_dir: PathLike) -> None:
    """Store-entry layout: ``table.npy`` + ``embedding.json`` (+ config)."""
    entry_dir = Path(entry_dir)
    config = model.config
    save_array(entry_dir / "table.npy", model.table)
    serialize.write_json(
        entry_dir / "embedding.json",
        {
            "format": _FASTTEXT_ENTRY_FORMAT,
            "name": model.name,
            "config": {
                "dim": config.dim,
                "window": config.window,
                "negative": config.negative,
                "epochs": config.epochs,
                "learning_rate": config.learning_rate,
                "min_count": config.min_count,
                "batch_size": config.batch_size,
                "min_n": config.min_n,
                "max_n": config.max_n,
                "bucket": config.bucket,
                "seed": config.seed,
            },
            **_vocabulary_payload(model.vocabulary),
        },
    )


def load_fasttext_entry(entry_dir: PathLike) -> FastText:
    """Load a :func:`save_fasttext_entry` layout (table mmap-eligible)."""
    entry_dir = Path(entry_dir)
    payload = serialize.read_json(
        entry_dir / "embedding.json", _FASTTEXT_ENTRY_FORMAT
    )
    table = load_array(entry_dir / "table.npy")
    config = FastTextConfig(**payload["config"])
    vocabulary, order = _vocabulary_and_order(payload, table.shape[0])
    if order is not None:  # foreign row order: realign (copies, drops mmap)
        table = np.concatenate(
            [np.asarray(table)[order], np.asarray(table)[len(vocabulary):]]
        )
    return FastText(vocabulary, table, config, name=str(payload["name"]))


def save_bert(model: MiniBert, path: PathLike) -> None:
    """Serialise a mini-BERT (parameters + config + WordPiece vocab)."""
    config = model.config
    config_json = json.dumps(
        {
            "d_model": config.d_model,
            "n_heads": config.n_heads,
            "n_layers": config.n_layers,
            "d_ff": config.d_ff,
            "max_len": config.max_len,
            "dropout": config.dropout,
            "n_classes": config.n_classes,
            "seed": config.seed,
        },
        sort_keys=True,
    )
    pieces = [model.tokenizer.piece_of(i) for i in range(len(model.tokenizer))]
    arrays = {
        f"param_{index:04d}": parameter.value
        for index, parameter in enumerate(model.parameters())
    }
    with atomic_write(_npz_path(path), "wb") as handle:
        np.savez_compressed(
            handle,
            format=np.array(_BERT_FORMAT),
            config=np.array(config_json),
            pieces=np.array(pieces, dtype=object),
            **arrays,
        )


def load_bert(path: PathLike) -> MiniBert:
    """Load a mini-BERT written by :func:`save_bert`.

    Parameters are restored in construction order, which is deterministic
    for a given config, so the loaded model reproduces the saved one
    exactly (verified by the round-trip tests).
    """
    with np.load(path, allow_pickle=True) as data:
        if str(data["format"]) != _BERT_FORMAT:
            raise ValueError(
                f"{path} is not a {_BERT_FORMAT} file (found {data['format']!r})"
            )
        config = BertConfig(**json.loads(str(data["config"])))
        tokenizer = WordPieceTokenizer([str(p) for p in data["pieces"]])
        model = MiniBert(tokenizer, config)
        parameters = model.parameters()
        param_keys = sorted(k for k in data.files if k.startswith("param_"))
        if len(param_keys) != len(parameters):
            raise ValueError(
                f"parameter count mismatch: file has {len(param_keys)}, "
                f"model expects {len(parameters)}"
            )
        for key, parameter in zip(param_keys, parameters):
            saved = np.asarray(data[key])
            if saved.shape != parameter.value.shape:
                raise ValueError(
                    f"shape mismatch for {parameter.name}: "
                    f"{saved.shape} vs {parameter.value.shape}"
                )
            parameter.value[...] = saved
        model.set_training(False)
        return model


__all__ = [
    "save_embeddings",
    "load_embeddings",
    "save_fasttext",
    "load_fasttext",
    "save_embeddings_entry",
    "load_embeddings_entry",
    "save_fasttext_entry",
    "load_fasttext_entry",
    "save_bert",
    "load_bert",
]
