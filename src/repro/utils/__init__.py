"""Shared utilities: deterministic RNG plumbing and small helpers."""

from repro.utils.rng import derive_rng, ensure_rng, stable_hash

__all__ = ["derive_rng", "ensure_rng", "stable_hash"]
