"""Crash-safe file writes: write a temp file, then ``os.replace``.

Every artefact writer in the library (embedding/BERT archives, benchmark
tables, run manifests) routes through :func:`atomic_write`, so a run killed
mid-write never leaves a truncated file behind — the destination either
keeps its previous content or receives the complete new content.  The temp
file lives in the destination directory, keeping the final rename atomic
(``os.replace`` across filesystems is not).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator, Union

PathLike = Union[str, Path]


@contextlib.contextmanager
def atomic_write(
    path: PathLike, mode: str = "w", encoding: str = "utf-8"
) -> Iterator[IO]:
    """Context manager yielding a handle whose content lands atomically.

    ``mode`` must be a write mode (``"w"`` or ``"wb"``).  On normal exit the
    temp file is fsynced and renamed over ``path``; on any exception the temp
    file is removed and ``path`` is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write supports modes 'w' and 'wb', not {mode!r}")
    path = Path(path)
    if str(path.parent):
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, encoding=None if "b" in mode else encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()


__all__ = ["atomic_write"]
