"""Head-to-head comparison of paradigms on one shared test draw (Table 6).

The paper compares GPT-4 against Random Forests on GloVe-Chem, W2V-Chem and
PubmedBERT embeddings using 100 random triples from the held-out test set
(50 positive, 50 negative, no relationship-type restriction).  ICL metric
conventions apply to the GPT row (unclassified counted as accuracy errors
but excluded from precision/recall/F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.paradigms import Paradigm
from repro.core.triples import LabeledTriple
from repro.metrics.classification import evaluate_binary


@dataclass(frozen=True)
class ComparisonRow:
    """One paradigm's head-to-head result."""

    paradigm: str
    accuracy: float
    precision: float
    recall: float
    f1: float
    n_unclassified: int

    def as_row(self) -> dict:
        return {
            "paradigm": self.paradigm,
            "accuracy": round(self.accuracy, 4),
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "unclassified": self.n_unclassified,
        }


def evaluate_paradigm(
    paradigm: Paradigm, test: Sequence[LabeledTriple]
) -> ComparisonRow:
    """Evaluate a fitted paradigm with the paper's comparison conventions.

    Accuracy is over all triples, counting unclassified responses as wrong.
    Precision/recall/F1 are weighted-average metrics over the classified
    subset (the paper's ML convention; for a model with no unclassified
    responses they match the ordinary Table 3/4 numbers, and for GPT-4 they
    match the classified-only convention of Table 5/6).
    """
    if not test:
        raise ValueError("test set is empty")
    decisions = paradigm.classify(test)
    gold = [t.label for t in test]

    n_correct = sum(
        1 for decision, label in zip(decisions, gold) if decision == label
    )
    accuracy = n_correct / len(gold)

    classified_gold = [g for g, d in zip(gold, decisions) if d is not None]
    classified_pred = [d for d in decisions if d is not None]
    n_unclassified = len(gold) - len(classified_pred)
    if classified_pred:
        report = evaluate_binary(classified_gold, classified_pred)
        precision, recall, f1 = report.precision, report.recall, report.f1
    else:
        precision = recall = f1 = 0.0
    return ComparisonRow(
        paradigm=paradigm.name,
        accuracy=accuracy,
        precision=precision,
        recall=recall,
        f1=f1,
        n_unclassified=n_unclassified,
    )


def head_to_head(
    paradigms: Sequence[Paradigm],
    train: Sequence[LabeledTriple],
    test: Sequence[LabeledTriple],
    fit: bool = True,
) -> List[ComparisonRow]:
    """Fit every paradigm on the same training data and compare on ``test``.

    Set ``fit=False`` when the paradigms were already fitted (e.g. reusing a
    fine-tuned model across comparisons).
    """
    rows = []
    for paradigm in paradigms:
        if fit:
            paradigm.fit(train)
        rows.append(evaluate_paradigm(paradigm, test))
    return rows


__all__ = ["ComparisonRow", "evaluate_paradigm", "head_to_head"]
