"""Task datasets and stratified splitting (paper Section 3.2, Table 2).

The paper derives one full dataset per task (positives + generated negatives)
and splits it per paradigm: 9:1 train/test for supervised learning, 8:1:1
train/validation/test for fine-tuning, and small random draws for the ICL and
head-to-head experiments.  :class:`Dataset` implements those operations with
stratification (splits preserve the positive:negative ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tasks import (
    Task,
    generate_task1_negatives,
    generate_task2_negatives,
    generate_task3_negatives,
    positive_triples,
    task_by_number,
)
from repro.core.triples import LabeledTriple
from repro.ontology.model import Ontology
from repro.utils.rng import SeedLike, derive_rng


class Dataset:
    """An ordered collection of labelled triples with stratified operations."""

    def __init__(self, triples: Sequence[LabeledTriple], name: str = "dataset"):
        self._triples: Tuple[LabeledTriple, ...] = tuple(triples)
        if not self._triples:
            raise ValueError(f"dataset {name!r} must be non-empty")
        self.name = name

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[LabeledTriple]:
        return iter(self._triples)

    def __getitem__(self, index: int) -> LabeledTriple:
        return self._triples[index]

    @property
    def triples(self) -> Tuple[LabeledTriple, ...]:
        return self._triples

    def labels(self) -> np.ndarray:
        """Gold labels as an int array aligned with iteration order."""
        return np.array([t.label for t in self._triples], dtype=np.int64)

    def positives(self) -> List[LabeledTriple]:
        return [t for t in self._triples if t.label == 1]

    def negatives(self) -> List[LabeledTriple]:
        return [t for t in self._triples if t.label == 0]

    def counts(self) -> Tuple[int, int]:
        """``(n_positive, n_negative)``."""
        n_pos = sum(t.label for t in self._triples)
        return n_pos, len(self._triples) - n_pos

    def restrict_to_relation(self, relation_name: str) -> "Dataset":
        """Subset containing only triples of one relationship type.

        Used for the Figure 2 per-relationship breakdown.
        """
        subset = [t for t in self._triples if t.relation.name == relation_name]
        if not subset:
            raise ValueError(
                f"dataset {self.name!r} has no triples of relation {relation_name!r}"
            )
        return Dataset(subset, name=f"{self.name}/{relation_name}")

    def shuffled(self, seed: SeedLike = 0) -> "Dataset":
        """A deterministically shuffled copy."""
        rng = derive_rng(seed, "dataset-shuffle", self.name)
        order = rng.permutation(len(self._triples))
        return Dataset([self._triples[i] for i in order], name=self.name)

    def sample(
        self, n_positive: int, n_negative: int, seed: SeedLike = 0
    ) -> "Dataset":
        """Random draw of exactly ``n_positive`` + ``n_negative`` triples.

        Used for the ICL prompt pools (50+50 per task) and the head-to-head
        test draw (Section 3.2).  Raises when the dataset cannot supply the
        requested counts.
        """
        rng = derive_rng(seed, "dataset-sample", self.name, n_positive, n_negative)
        positives = self.positives()
        negatives = self.negatives()
        if n_positive > len(positives) or n_negative > len(negatives):
            raise ValueError(
                f"requested {n_positive}+/{n_negative}- but dataset has "
                f"{len(positives)}+/{len(negatives)}-"
            )
        chosen_pos = [positives[int(i)] for i in
                      rng.choice(len(positives), size=n_positive, replace=False)]
        chosen_neg = [negatives[int(i)] for i in
                      rng.choice(len(negatives), size=n_negative, replace=False)]
        combined = chosen_pos + chosen_neg
        order = rng.permutation(len(combined))
        return Dataset([combined[i] for i in order], name=f"{self.name}/sample")

    def stratified_split(
        self, fractions: Sequence[float], seed: SeedLike = 0
    ) -> List["Dataset"]:
        """Split into parts with the given fractions, per class.

        ``fractions`` must sum to 1 (within tolerance).  Each class is
        shuffled and partitioned independently so every part preserves the
        dataset's positive:negative ratio; the last part absorbs rounding.
        """
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")
        if any(f <= 0 for f in fractions):
            raise ValueError("all fractions must be positive")
        rng = derive_rng(seed, "dataset-split", self.name, tuple(fractions))
        parts: List[List[LabeledTriple]] = [[] for _ in fractions]
        for group in (self.positives(), self.negatives()):
            if not group:
                continue
            order = rng.permutation(len(group))
            boundaries = np.cumsum(
                [int(round(f * len(group))) for f in fractions[:-1]]
            )
            pieces = np.split(order, boundaries)
            for part, piece in zip(parts, pieces):
                part.extend(group[int(i)] for i in piece)
        datasets = []
        for index, part in enumerate(parts):
            shuffled_part = [part[int(i)] for i in rng.permutation(len(part))]
            datasets.append(
                Dataset(shuffled_part, name=f"{self.name}/part{index}")
            )
        return datasets


@dataclass(frozen=True)
class DatasetSplit:
    """Named train/test (and optionally validation) datasets."""

    train: Dataset
    test: Dataset
    validation: Optional[Dataset] = None


def build_task_dataset(
    ontology: Ontology, task_number: int, seed: SeedLike = 0
) -> Dataset:
    """Build the full dataset for one task (paper Table 2 construction).

    Positives come from :func:`~repro.core.tasks.positive_triples`; negatives
    from the task-specific generator.  The result interleaves classes in a
    deterministic shuffle.
    """
    task = task_by_number(task_number)
    positives = positive_triples(ontology)
    if task.number == 1:
        negatives = generate_task1_negatives(ontology, positives, seed=seed)
    elif task.number == 2:
        positives, negatives = generate_task2_negatives(ontology, positives)
    else:
        negatives = generate_task3_negatives(ontology, positives, seed=seed)
    dataset = Dataset(list(positives) + list(negatives), name=f"task{task.number}")
    return dataset.shuffled(seed=derive_rng(seed, "task-dataset", task.number))


def train_test_split_9_1(dataset: Dataset, seed: SeedLike = 0) -> DatasetSplit:
    """The supervised-learning 9:1 stratified split (Table 2)."""
    train, test = dataset.stratified_split([0.9, 0.1], seed=seed)
    return DatasetSplit(train=train, test=test)


def train_val_test_split_8_1_1(dataset: Dataset, seed: SeedLike = 0) -> DatasetSplit:
    """The fine-tuning 8:1:1 stratified split (Table 4)."""
    train, validation, test = dataset.stratified_split([0.8, 0.1, 0.1], seed=seed)
    return DatasetSplit(train=train, test=test, validation=validation)


__all__ = [
    "Dataset",
    "DatasetSplit",
    "build_task_dataset",
    "train_test_split_9_1",
    "train_val_test_split_8_1_1",
]
