"""The Lab: one-stop construction and caching of the whole apparatus.

Benchmarks and examples need the same expensive objects — the synthetic
ontology, the corpora, six trained embedding models, a pretrained mini-BERT,
task datasets and their splits.  :class:`Lab` exposes each lazily, exactly
as it always has; underneath, the substrates now form an explicit
**stage graph** (:mod:`repro.pipeline`) where every substrate is a named
stage with declared dependencies and a deterministic content-addressed
cache key.

Three consequences of the graph:

* **Persistent caching.**  With ``LabConfig.artifact_dir`` (or the
  ``$REPRO_ARTIFACTS`` environment variable) set, stage artifacts persist
  in an on-disk :class:`~repro.pipeline.store.ArtifactStore`; a second run
  with the same configuration loads every substrate instead of rebuilding
  it.  Cache keys hash the exact configuration slice each stage reads, so
  changing an upstream knob invalidates precisely the affected stages.
* **Parallel warming.**  :meth:`Lab.warm` topologically schedules ready
  stages concurrently (threads by default; a process pool for CPU-heavy
  builds against a shared store).
* **Observability.**  Every materialisation records a ``lab.<stage>`` span,
  bumps an ``artifacts.hit``/``miss``/``built`` counter, and lands in run
  manifests under ``context.stages``.

Results are independent of cache state and schedule: builders derive all
randomness from the configuration, artifacts round-trip byte-identically,
and the pretrained BERT is canonicalised so warm and cold runs produce
identical tables.

Scale note: the paper's full datasets hold ~620k triples; the Lab defaults
target minutes-not-hours runtimes (a few thousand entities, capped training
sets).  Every knob is in :class:`LabConfig`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.adaptation.naive import naive_token_filter
from repro.adaptation.task_oriented import (
    TaskOrientedConfig,
    select_stop_tokens,
    stopword_filter,
)
from repro.bert.finetune import FineTuneConfig, FineTunedClassifier, fine_tune
from repro.bert.model import MiniBert
from repro.bert.wordpiece import WordPieceTokenizer
from repro.core.datasets import (
    Dataset,
    DatasetSplit,
    build_task_dataset,
    train_test_split_9_1,
    train_val_test_split_8_1_1,
)
from repro.core.tasks import positive_triples
from repro.embeddings.base import EmbeddingModel
from repro.embeddings.registry import MODEL_NAMES
from repro.metrics.classification import ClassificationReport, evaluate_binary
from repro.ml.features import FeatureExtractor, TokenFilter
from repro.ml.forest import RandomForest, RandomForestConfig
from repro.ml.lstm import LSTMClassifier, LSTMConfig
from repro.obs.manifest import record_config, record_stage_event
from repro.obs.trace import get_tracer, span
from repro.ontology.model import Ontology
from repro.pipeline.graph import StageGraph
from repro.pipeline.scheduler import StageResult, StageScheduler
from repro.pipeline.stages import build_lab_graph
from repro.pipeline.store import ArtifactStore
from repro.utils.rng import SeedLike, stable_hash

#: Adaptation kinds accepted by :meth:`Lab.adaptation_filter`.
ADAPTATIONS = ("none", "naive", "task-oriented")


@dataclass(frozen=True)
class LabConfig:
    """Every knob of the experimental apparatus."""

    # ontology
    n_chemical_entities: int = 2_000
    ontology_seed: int = 7
    # corpora
    corpus_documents: int = 250
    corpus_sentences: int = 25
    corpus_seed: int = 11
    statement_coverage: float = 0.6
    generic_chemistry_fraction: float = 0.12
    biomedical_chemistry_fraction: float = 0.55
    # embeddings
    embedding_dim: int = 64
    embedding_epochs: int = 3
    glove_epochs: int = 10
    # BERT
    wordpiece_vocab: int = 900
    bert_d_model: int = 64
    bert_layers: int = 4
    bert_heads: int = 4
    bert_d_ff: int = 128
    bert_max_len: int = 64
    pretrain_epochs: int = 3
    pretrain_sentences: int = 3_000
    # datasets
    dataset_seed: int = 42
    max_train: Optional[int] = 4_000
    max_test: Optional[int] = 1_000
    # models
    rf_estimators: int = 30
    rf_max_depth: int = 16
    lstm_hidden: int = 32
    lstm_epochs: int = 5
    ft_epochs: int = 6
    ft_learning_rate: float = 1e-3
    seed: int = 0
    # resilience: directory for checkpoint journals (None disables them)
    journal_dir: Optional[str] = None
    # pipeline: directory for the persistent artifact store (None falls back
    # to $REPRO_ARTIFACTS; unset disables on-disk caching entirely)
    artifact_dir: Optional[str] = None


# The paper protocol's pinned subsample streams (Section 2.5): split caps
# draw from fixed streams so train/test membership never shifts under
# config sweeps.  PR 4's golden outputs encode exactly these values — both
# the Lab memo splits and the pipeline stage builders must use these
# constants (statcheck FLOW001 traces seed provenance to enforce it).
ML_TRAIN_SPLIT_SEED = 1
ML_TEST_SPLIT_SEED = 2
FT_TRAIN_SPLIT_SEED = 3
FT_TEST_SPLIT_SEED = 4
FT_VALIDATION_SPLIT_SEED = 5
GRID_SEARCH_CAP_SEED = 6


def subsample(
    dataset: Dataset, max_size: Optional[int], seed: Optional[SeedLike] = None
) -> Dataset:
    """Class-ratio-preserving random subsample of at most ``max_size``.

    With ``seed=None`` the draw's seed is derived from the dataset's
    identity (its name and the cap), so two different datasets subsampled
    "with the defaults" no longer share one hard-coded seed.  Callers that
    pin a protocol (the Lab's split stages, the grid-search cap) pass their
    seeds explicitly, which keeps historical golden values unchanged.
    """
    if max_size is None or len(dataset) <= max_size:
        return dataset
    if seed is None:
        seed = stable_hash("subsample", dataset.name, max_size)
    n_pos, n_neg = dataset.counts()
    total = n_pos + n_neg
    take_pos = max(1, int(round(max_size * n_pos / total)))
    take_neg = max(1, max_size - take_pos)
    return dataset.sample(min(take_pos, n_pos), min(take_neg, n_neg), seed=seed)


# The stage graph is pure structure (frozen stages, builder functions), so a
# single shared instance serves every Lab in the process.
_GRAPH: Optional[StageGraph] = None
_GRAPH_LOCK = threading.Lock()


def lab_graph() -> StageGraph:
    """The process-wide Lab stage graph (built once, shared by all Labs)."""
    global _GRAPH
    if _GRAPH is None:
        with _GRAPH_LOCK:
            if _GRAPH is None:
                _GRAPH = build_lab_graph()
    return _GRAPH


class Lab:
    """Lazily constructed, cached experimental apparatus (a stage-graph facade)."""

    def __init__(self, config: Optional[LabConfig] = None):
        self.config = config or LabConfig()
        self.graph = lab_graph()
        self.store: Optional[ArtifactStore] = ArtifactStore.from_config(
            self.config
        )
        self._cache: Dict[str, object] = {}
        self._stage_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._filter_cache: Dict[str, TokenFilter] = {}
        self._keys: Dict[str, str] = self.graph.keys(self.config)
        record_config(self.config)

    # -- pipeline plumbing ----------------------------------------------------

    def _lock_for(self, name: str) -> threading.Lock:
        """The per-stage lock serialising one stage's materialisation."""
        with self._locks_guard:
            lock = self._stage_locks.get(name)
            if lock is None:
                lock = self._stage_locks[name] = threading.Lock()
            return lock

    def stage_key(self, name: str) -> str:
        """The content-addressed cache key of one stage under this config."""
        try:
            return self._keys[name]
        except KeyError:
            return self.graph.key(name, self.config)

    def stage_keys(self) -> Dict[str, str]:
        """Stage name -> content-addressed key, for every graph stage."""
        return dict(self._keys)

    def materialize(self, name: str) -> object:
        """Materialise one stage (and, recursively, its dependencies).

        Resolution order: the in-process memo, then the artifact store
        (persistable stages with a store configured), then a build — which
        also persists the artifact for the next run.  Thread-safe: a
        per-stage lock guarantees each stage is materialised at most once
        per Lab even under the parallel scheduler, and lock acquisition
        follows dependency edges only (a DAG), so it cannot deadlock.
        """
        stage = self.graph.stage(name)
        with self._lock_for(name):
            if name in self._cache:
                return self._cache[name]
            start = time.perf_counter()
            with span(f"lab.{name}") as sp:
                inputs = {dep: self.materialize(dep) for dep in stage.deps}
                if self.store is not None and stage.persistable:
                    key = self.stage_key(name)
                    artifact, status = self.store.build_or_load(
                        stage, key, inputs, lambda: stage.build(self, inputs)
                    )
                else:
                    key = None
                    artifact = stage.build(self, inputs)
                    status = "built"
                duration = time.perf_counter() - start
                sp.annotate(stage=name, status=status, key=key)
                sp.incr(f"artifacts.{status}")
                get_tracer().count(f"artifacts.{status}")
                record_stage_event(name, status, key=key, duration_s=duration)
            self._cache[name] = artifact
            return artifact

    def _memo(self, key: str, build: Callable[[], object]) -> object:
        """Thread-safe memo for facade-level (non-stage) cached objects."""
        with self._lock_for(key):
            if key not in self._cache:
                with span(f"lab.{key}"):
                    self._cache[key] = build()
            return self._cache[key]

    def warm(
        self,
        targets: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        executor: str = "thread",
    ) -> Dict[str, StageResult]:
        """Materialise stages in parallel (default: every persistable stage).

        With an artifact store configured this populates it, so subsequent
        runs (and other processes sharing the store) load instead of
        building.  See :class:`~repro.pipeline.scheduler.StageScheduler`
        for executor semantics and failure isolation.
        """
        return StageScheduler(self).run(
            targets=targets, jobs=jobs, executor=executor
        )

    def journal(self, name: str):
        """A checkpoint :class:`~repro.resilience.checkpoint.Journal` for one
        long-running unit of work (e.g. one ICL table cell), or ``None`` when
        ``config.journal_dir`` is unset.  Callers pass it to
        ``run_icl_experiment(journal=...)`` to make the run resumable."""
        if self.config.journal_dir is None:
            return None
        from repro.resilience.checkpoint import Journal

        return Journal(
            os.path.join(self.config.journal_dir, f"{name}.journal.jsonl")
        )

    # -- substrates -----------------------------------------------------------

    @property
    def ontology(self) -> Ontology:
        return self.materialize("ontology")

    @property
    def chemistry_sentences(self):
        return self.materialize("corpus-chemistry")

    @property
    def generic_sentences(self):
        return self.materialize("corpus-generic")

    @property
    def biomedical_sentences(self):
        return self.materialize("corpus-biomedical")

    # -- BERT -------------------------------------------------------------------

    @property
    def wordpiece(self) -> WordPieceTokenizer:
        return self.materialize("wordpiece")

    @property
    def bert(self) -> MiniBert:
        return self.materialize("bert")

    # -- embeddings ----------------------------------------------------------------

    @property
    def embeddings(self) -> Dict[str, EmbeddingModel]:
        return self._memo(
            "embeddings",
            lambda: {
                name: self.materialize(f"embedding-{name}")
                for name in MODEL_NAMES
            },
        )

    def embedding(self, name: str) -> EmbeddingModel:
        if f"embedding-{name}" in self.graph:
            return self.materialize(f"embedding-{name}")
        raise KeyError(
            f"unknown embedding {name!r}; have {sorted(self.embeddings)}"
        )

    # -- datasets ---------------------------------------------------------------------

    def dataset(self, task: int) -> Dataset:
        stage_name = f"dataset-{task}"
        if stage_name in self.graph:
            return self.materialize(stage_name)
        # Unusual task numbers fall through to the direct construction so
        # the original diagnostics (unknown task, ...) surface unchanged.
        return self._memo(
            stage_name,
            lambda: build_task_dataset(
                self.ontology, task, seed=self.config.dataset_seed
            ),
        )

    def ml_split(self, task: int) -> DatasetSplit:
        """9:1 supervised-learning split with the configured size caps."""
        stage_name = f"ml-split-{task}"
        if stage_name in self.graph:
            return self.materialize(stage_name)

        def build():
            split = train_test_split_9_1(self.dataset(task), seed=self.config.seed)
            return DatasetSplit(
                train=subsample(
                    split.train, self.config.max_train,
                    seed=ML_TRAIN_SPLIT_SEED,
                ),
                test=subsample(
                    split.test, self.config.max_test, seed=ML_TEST_SPLIT_SEED
                ),
            )

        return self._memo(stage_name, build)

    def ft_split(self, task: int) -> DatasetSplit:
        """8:1:1 fine-tuning split with the configured size caps."""
        stage_name = f"ft-split-{task}"
        if stage_name in self.graph:
            return self.materialize(stage_name)

        def build():
            split = train_val_test_split_8_1_1(
                self.dataset(task), seed=self.config.seed
            )
            return DatasetSplit(
                train=subsample(
                    split.train, self.config.max_train,
                    seed=FT_TRAIN_SPLIT_SEED,
                ),
                test=subsample(
                    split.test, self.config.max_test, seed=FT_TEST_SPLIT_SEED
                ),
                validation=subsample(
                    split.validation, self.config.max_test,
                    seed=FT_VALIDATION_SPLIT_SEED,
                ),
            )

        return self._memo(stage_name, build)

    # -- adaptations --------------------------------------------------------------------

    def adaptation_filter(
        self, kind: str, embedding_name: Optional[str] = None
    ) -> Optional[TokenFilter]:
        """Token filter for an adaptation kind (and embedding, if needed).

        ``none`` returns ``None``; ``naive`` is shared across embeddings;
        ``task-oriented`` runs Algorithm 2 once per embedding and caches the
        stop-word set (in the artifact store too, when configured).
        """
        if kind not in ADAPTATIONS:
            raise ValueError(f"unknown adaptation {kind!r}; valid: {ADAPTATIONS}")
        if kind == "none":
            return None
        if kind == "naive":
            return naive_token_filter()
        if embedding_name is None:
            raise ValueError("task-oriented adaptation needs an embedding name")
        with self._lock_for(f"filter-{embedding_name}"):
            cached = self._filter_cache.get(embedding_name)
            if cached is not None:
                return cached
            stage_name = f"task-filter-{embedding_name}"
            if stage_name in self.graph:
                stop_tokens = self.materialize(stage_name)
            else:
                # Embeddings outside the static lineup (e.g. contextual
                # models) have no graph stage; build inline as before.
                def build():
                    positives = positive_triples(self.ontology)
                    return select_stop_tokens(
                        positives,
                        self.embedding(embedding_name),
                        TaskOrientedConfig(seed=self.config.seed),
                    )

                stop_tokens = self._memo(stage_name, build)
            token_filter = stopword_filter(stop_tokens)
            self._filter_cache[embedding_name] = token_filter
            return token_filter

    # -- evaluation helpers -----------------------------------------------------------------

    def rf_config(self) -> RandomForestConfig:
        return RandomForestConfig(
            n_estimators=self.config.rf_estimators,
            max_depth=self.config.rf_max_depth,
            seed=self.config.seed,
        )

    def lstm_config(self) -> LSTMConfig:
        return LSTMConfig(
            hidden_size=self.config.lstm_hidden,
            epochs=self.config.lstm_epochs,
            seed=self.config.seed,
        )

    def trained_forest(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[FeatureExtractor, RandomForest]:
        """Memoized (extractor, fitted forest) for one RF cell.

        Several experiments reuse the same trained forests (Tables 3/6,
        Figures 2/A1), so cells are trained once per Lab.
        """
        stage_name = f"forest-{task}-{embedding_name}-{adaptation}"
        if stage_name in self.graph:
            return self.materialize(stage_name)

        # Combinations outside the graph (unknown embeddings, task-oriented
        # on a contextual model) build directly so the original diagnostics
        # surface unchanged.
        def build():
            split = self.ml_split(task)
            token_filter = self.adaptation_filter(adaptation, embedding_name)
            extractor = FeatureExtractor(
                self.embedding(embedding_name), token_filter
            )
            forest = RandomForest(self.rf_config()).fit(
                extractor.matrix(split.train.triples),
                extractor.labels(split.train.triples),
            )
            return extractor, forest

        return self._memo(stage_name, build)

    def evaluate_random_forest(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[ClassificationReport, RandomForest]:
        """Train (cached) + evaluate one (task, embedding, adaptation) cell."""
        split = self.ml_split(task)
        extractor, forest = self.trained_forest(task, embedding_name, adaptation)
        predictions = forest.predict(extractor.matrix(split.test.triples))
        report = evaluate_binary(split.test.labels(), predictions)
        return report, forest

    def ft_config(self) -> FineTuneConfig:
        return FineTuneConfig(
            epochs=self.config.ft_epochs,
            learning_rate=self.config.ft_learning_rate,
            seed=self.config.seed,
        )

    def fine_tuned(self, task: int) -> FineTunedClassifier:
        """Memoized fine-tuned classifier for a task (Table 4 protocol)."""
        stage_name = f"fine-tuned-{task}"
        if stage_name in self.graph:
            return self.materialize(stage_name)

        def build():
            split = self.ft_split(task)
            return fine_tune(
                self.bert,
                split.train.triples,
                self.ft_config(),
                validation_triples=(
                    split.validation.triples if split.validation else None
                ),
            )

        return self._memo(stage_name, build)

    def evaluate_fine_tuned(self, task: int) -> ClassificationReport:
        """Evaluate the cached fine-tuned model on the FT test split."""
        split = self.ft_split(task)
        classifier = self.fine_tuned(task)
        predictions = classifier.predict(split.test.triples)
        return evaluate_binary(split.test.labels(), predictions)

    def grid_search_random_forest(
        self,
        task: int,
        embedding_name: str,
        adaptation: str = "naive",
        grid: Optional[Dict[str, Sequence[object]]] = None,
        n_folds: int = 5,
        max_samples: Optional[int] = 1_000,
    ):
        """The paper's hyperparameter protocol: 5-fold CV grid search on the
        training split, scored by F1 (Section 2.6).

        Returns a :class:`~repro.ml.grid_search.GridSearchResult`.  The
        default grid covers tree count and depth; ``max_samples`` caps the
        search data (CV multiplies training cost by folds x combinations).
        """
        from repro.ml.grid_search import grid_search

        grid = grid or {
            "n_estimators": [10, self.config.rf_estimators],
            "max_depth": [8, self.config.rf_max_depth],
        }
        split = self.ml_split(task)
        train = subsample(split.train, max_samples, seed=GRID_SEARCH_CAP_SEED)
        extractor = FeatureExtractor(
            self.embedding(embedding_name),
            self.adaptation_filter(adaptation, embedding_name),
        )
        features = extractor.matrix(train.triples)
        labels = extractor.labels(train.triples)

        def factory(params):
            return RandomForest(
                RandomForestConfig(seed=self.config.seed, **params)
            )

        return grid_search(
            factory, grid, features, labels, n_folds=n_folds,
            seed=self.config.seed,
        )

    def evaluate_lstm(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[ClassificationReport, LSTMClassifier]:
        """Train + evaluate one LSTM cell (Appendix Table A6)."""
        split = self.ml_split(task)
        token_filter = self.adaptation_filter(adaptation, embedding_name)
        extractor = FeatureExtractor(self.embedding(embedding_name), token_filter)
        model = LSTMClassifier(
            extractor.embeddings.dim, self.lstm_config()
        ).fit(
            extractor.sequences(split.train.triples),
            extractor.labels(split.train.triples),
        )
        predictions = model.predict(extractor.sequences(split.test.triples))
        report = evaluate_binary(split.test.labels(), predictions)
        return report, model


__all__ = ["LabConfig", "Lab", "subsample", "lab_graph", "ADAPTATIONS"]
