"""The Lab: one-stop construction and caching of the whole apparatus.

Benchmarks and examples need the same expensive objects — the synthetic
ontology, the corpora, six trained embedding models, a pretrained mini-BERT,
task datasets and their splits.  :class:`Lab` builds each lazily once and
caches it, so a benchmark module can share a single Lab across tables.

Scale note: the paper's full datasets hold ~620k triples; the Lab defaults
target minutes-not-hours runtimes (a few thousand entities, capped training
sets).  Every knob is in :class:`LabConfig`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adaptation.naive import naive_token_filter
from repro.adaptation.task_oriented import (
    TaskOrientedConfig,
    select_stop_tokens,
    stopword_filter,
)
from repro.bert.finetune import FineTuneConfig, FineTunedClassifier, fine_tune
from repro.bert.model import BertConfig, MiniBert
from repro.bert.pretrain import PretrainConfig, pretrain_mlm
from repro.bert.wordpiece import WordPieceTokenizer, train_wordpiece
from repro.core.datasets import (
    Dataset,
    DatasetSplit,
    build_task_dataset,
    train_test_split_9_1,
    train_val_test_split_8_1_1,
)
from repro.core.tasks import positive_triples
from repro.core.triples import LabeledTriple
from repro.embeddings.base import EmbeddingModel
from repro.embeddings.registry import RegistryConfig, build_embedding_models
from repro.metrics.classification import ClassificationReport, evaluate_binary
from repro.ml.features import FeatureExtractor, TokenFilter
from repro.obs.manifest import record_config
from repro.obs.trace import span
from repro.ml.forest import RandomForest, RandomForestConfig
from repro.ml.lstm import LSTMClassifier, LSTMConfig
from repro.ontology.model import Ontology
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like
from repro.text.corpus import (
    CorpusConfig,
    corpus_sentences,
    generate_chemistry_corpus,
    generate_generic_corpus,
)
from repro.utils.rng import derive_rng

#: Adaptation kinds accepted by :meth:`Lab.adaptation_filter`.
ADAPTATIONS = ("none", "naive", "task-oriented")


@dataclass(frozen=True)
class LabConfig:
    """Every knob of the experimental apparatus."""

    # ontology
    n_chemical_entities: int = 2_000
    ontology_seed: int = 7
    # corpora
    corpus_documents: int = 250
    corpus_sentences: int = 25
    corpus_seed: int = 11
    statement_coverage: float = 0.6
    generic_chemistry_fraction: float = 0.12
    biomedical_chemistry_fraction: float = 0.55
    # embeddings
    embedding_dim: int = 64
    embedding_epochs: int = 3
    glove_epochs: int = 10
    # BERT
    wordpiece_vocab: int = 900
    bert_d_model: int = 64
    bert_layers: int = 4
    bert_heads: int = 4
    bert_d_ff: int = 128
    bert_max_len: int = 64
    pretrain_epochs: int = 3
    pretrain_sentences: int = 3_000
    # datasets
    dataset_seed: int = 42
    max_train: Optional[int] = 4_000
    max_test: Optional[int] = 1_000
    # models
    rf_estimators: int = 30
    rf_max_depth: int = 16
    lstm_hidden: int = 32
    lstm_epochs: int = 5
    ft_epochs: int = 6
    ft_learning_rate: float = 1e-3
    seed: int = 0
    # resilience: directory for checkpoint journals (None disables them)
    journal_dir: Optional[str] = None


def subsample(dataset: Dataset, max_size: Optional[int], seed: int = 0) -> Dataset:
    """Class-ratio-preserving random subsample of at most ``max_size``."""
    if max_size is None or len(dataset) <= max_size:
        return dataset
    n_pos, n_neg = dataset.counts()
    total = n_pos + n_neg
    take_pos = max(1, int(round(max_size * n_pos / total)))
    take_neg = max(1, max_size - take_pos)
    return dataset.sample(min(take_pos, n_pos), min(take_neg, n_neg), seed=seed)


class Lab:
    """Lazily constructed, cached experimental apparatus."""

    def __init__(self, config: Optional[LabConfig] = None):
        self.config = config or LabConfig()
        self._cache: Dict[str, object] = {}
        record_config(self.config)

    def _memo(self, key: str, build: Callable[[], object]) -> object:
        if key not in self._cache:
            with span(f"lab.{key}"):
                self._cache[key] = build()
        return self._cache[key]

    def journal(self, name: str):
        """A checkpoint :class:`~repro.resilience.checkpoint.Journal` for one
        long-running unit of work (e.g. one ICL table cell), or ``None`` when
        ``config.journal_dir`` is unset.  Callers pass it to
        ``run_icl_experiment(journal=...)`` to make the run resumable."""
        if self.config.journal_dir is None:
            return None
        from repro.resilience.checkpoint import Journal

        return Journal(
            os.path.join(self.config.journal_dir, f"{name}.journal.jsonl")
        )

    # -- substrates -----------------------------------------------------------

    @property
    def ontology(self) -> Ontology:
        return self._memo(
            "ontology",
            lambda: synthesize_chebi_like(
                SynthesisConfig(
                    n_chemical_entities=self.config.n_chemical_entities,
                    seed=self.config.ontology_seed,
                )
            ),
        )

    def _corpus_config(self, seed_offset: int) -> CorpusConfig:
        return CorpusConfig(
            n_documents=self.config.corpus_documents,
            sentences_per_document=self.config.corpus_sentences,
            statement_coverage=self.config.statement_coverage,
            seed=self.config.corpus_seed + seed_offset,
        )

    @property
    def chemistry_sentences(self) -> List[List[str]]:
        return self._memo(
            "chem_sentences",
            lambda: corpus_sentences(
                generate_chemistry_corpus(self.ontology, self._corpus_config(0))
            ),
        )

    @property
    def generic_sentences(self) -> List[List[str]]:
        return self._memo(
            "generic_sentences",
            lambda: corpus_sentences(
                generate_generic_corpus(
                    self.ontology,
                    self._corpus_config(1),
                    chemistry_fraction=self.config.generic_chemistry_fraction,
                )
            ),
        )

    @property
    def biomedical_sentences(self) -> List[List[str]]:
        return self._memo(
            "biomedical_sentences",
            lambda: corpus_sentences(
                generate_generic_corpus(
                    self.ontology,
                    self._corpus_config(2),
                    chemistry_fraction=self.config.biomedical_chemistry_fraction,
                )
            ),
        )

    # -- BERT -------------------------------------------------------------------

    @property
    def wordpiece(self) -> WordPieceTokenizer:
        return self._memo(
            "wordpiece",
            lambda: train_wordpiece(
                self.chemistry_sentences, vocab_size=self.config.wordpiece_vocab
            ),
        )

    @property
    def bert(self) -> MiniBert:
        def build():
            config = BertConfig(
                d_model=self.config.bert_d_model,
                n_heads=self.config.bert_heads,
                n_layers=self.config.bert_layers,
                d_ff=self.config.bert_d_ff,
                max_len=self.config.bert_max_len,
                seed=self.config.seed,
            )
            sentences = self.chemistry_sentences[: self.config.pretrain_sentences]
            return pretrain_mlm(
                sentences,
                self.wordpiece,
                config,
                PretrainConfig(
                    epochs=self.config.pretrain_epochs, seed=self.config.seed
                ),
            )

        return self._memo("bert", build)

    # -- embeddings ----------------------------------------------------------------

    @property
    def embeddings(self) -> Dict[str, EmbeddingModel]:
        return self._memo(
            "embeddings",
            lambda: build_embedding_models(
                self.chemistry_sentences,
                self.generic_sentences,
                self.biomedical_sentences,
                bert=self.bert,
                config=RegistryConfig(
                    dim=self.config.embedding_dim,
                    epochs=self.config.embedding_epochs,
                    glove_epochs=self.config.glove_epochs,
                    seed=self.config.seed,
                ),
            ),
        )

    def embedding(self, name: str) -> EmbeddingModel:
        try:
            return self.embeddings[name]
        except KeyError:
            raise KeyError(
                f"unknown embedding {name!r}; have {sorted(self.embeddings)}"
            ) from None

    # -- datasets ---------------------------------------------------------------------

    def dataset(self, task: int) -> Dataset:
        return self._memo(
            f"dataset-{task}",
            lambda: build_task_dataset(
                self.ontology, task, seed=self.config.dataset_seed
            ),
        )

    def ml_split(self, task: int) -> DatasetSplit:
        """9:1 supervised-learning split with the configured size caps."""

        def build():
            split = train_test_split_9_1(self.dataset(task), seed=self.config.seed)
            return DatasetSplit(
                train=subsample(split.train, self.config.max_train, seed=1),
                test=subsample(split.test, self.config.max_test, seed=2),
            )

        return self._memo(f"ml-split-{task}", build)

    def ft_split(self, task: int) -> DatasetSplit:
        """8:1:1 fine-tuning split with the configured size caps."""

        def build():
            split = train_val_test_split_8_1_1(
                self.dataset(task), seed=self.config.seed
            )
            return DatasetSplit(
                train=subsample(split.train, self.config.max_train, seed=3),
                test=subsample(split.test, self.config.max_test, seed=4),
                validation=subsample(
                    split.validation, self.config.max_test, seed=5
                ),
            )

        return self._memo(f"ft-split-{task}", build)

    # -- adaptations --------------------------------------------------------------------

    def adaptation_filter(
        self, kind: str, embedding_name: Optional[str] = None
    ) -> Optional[TokenFilter]:
        """Token filter for an adaptation kind (and embedding, if needed).

        ``none`` returns ``None``; ``naive`` is shared across embeddings;
        ``task-oriented`` runs Algorithm 2 once per embedding and caches the
        stop-word set.
        """
        if kind not in ADAPTATIONS:
            raise ValueError(f"unknown adaptation {kind!r}; valid: {ADAPTATIONS}")
        if kind == "none":
            return None
        if kind == "naive":
            return naive_token_filter()
        if embedding_name is None:
            raise ValueError("task-oriented adaptation needs an embedding name")

        def build():
            positives = positive_triples(self.ontology)
            stop_tokens = select_stop_tokens(
                positives,
                self.embedding(embedding_name),
                TaskOrientedConfig(seed=self.config.seed),
            )
            return stopword_filter(stop_tokens)

        return self._memo(f"task-filter-{embedding_name}", build)

    # -- evaluation helpers -----------------------------------------------------------------

    def rf_config(self) -> RandomForestConfig:
        return RandomForestConfig(
            n_estimators=self.config.rf_estimators,
            max_depth=self.config.rf_max_depth,
            seed=self.config.seed,
        )

    def lstm_config(self) -> LSTMConfig:
        return LSTMConfig(
            hidden_size=self.config.lstm_hidden,
            epochs=self.config.lstm_epochs,
            seed=self.config.seed,
        )

    def trained_forest(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[FeatureExtractor, RandomForest]:
        """Memoized (extractor, fitted forest) for one RF cell.

        Several experiments reuse the same trained forests (Tables 3/6,
        Figures 2/A1), so cells are trained once per Lab.
        """

        def build():
            split = self.ml_split(task)
            token_filter = self.adaptation_filter(adaptation, embedding_name)
            extractor = FeatureExtractor(
                self.embedding(embedding_name), token_filter
            )
            forest = RandomForest(self.rf_config()).fit(
                extractor.matrix(split.train.triples),
                extractor.labels(split.train.triples),
            )
            return extractor, forest

        return self._memo(f"forest-{task}-{embedding_name}-{adaptation}", build)

    def evaluate_random_forest(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[ClassificationReport, RandomForest]:
        """Train (cached) + evaluate one (task, embedding, adaptation) cell."""
        split = self.ml_split(task)
        extractor, forest = self.trained_forest(task, embedding_name, adaptation)
        predictions = forest.predict(extractor.matrix(split.test.triples))
        report = evaluate_binary(split.test.labels(), predictions)
        return report, forest

    def ft_config(self) -> FineTuneConfig:
        return FineTuneConfig(
            epochs=self.config.ft_epochs,
            learning_rate=self.config.ft_learning_rate,
            seed=self.config.seed,
        )

    def fine_tuned(self, task: int) -> FineTunedClassifier:
        """Memoized fine-tuned classifier for a task (Table 4 protocol)."""

        def build():
            split = self.ft_split(task)
            return fine_tune(
                self.bert,
                split.train.triples,
                self.ft_config(),
                validation_triples=(
                    split.validation.triples if split.validation else None
                ),
            )

        return self._memo(f"fine-tuned-{task}", build)

    def evaluate_fine_tuned(self, task: int) -> ClassificationReport:
        """Evaluate the cached fine-tuned model on the FT test split."""
        split = self.ft_split(task)
        classifier = self.fine_tuned(task)
        predictions = classifier.predict(split.test.triples)
        return evaluate_binary(split.test.labels(), predictions)

    def grid_search_random_forest(
        self,
        task: int,
        embedding_name: str,
        adaptation: str = "naive",
        grid: Optional[Dict[str, Sequence[object]]] = None,
        n_folds: int = 5,
        max_samples: Optional[int] = 1_000,
    ):
        """The paper's hyperparameter protocol: 5-fold CV grid search on the
        training split, scored by F1 (Section 2.6).

        Returns a :class:`~repro.ml.grid_search.GridSearchResult`.  The
        default grid covers tree count and depth; ``max_samples`` caps the
        search data (CV multiplies training cost by folds x combinations).
        """
        from repro.ml.grid_search import grid_search

        grid = grid or {
            "n_estimators": [10, self.config.rf_estimators],
            "max_depth": [8, self.config.rf_max_depth],
        }
        split = self.ml_split(task)
        train = subsample(split.train, max_samples, seed=6)
        extractor = FeatureExtractor(
            self.embedding(embedding_name),
            self.adaptation_filter(adaptation, embedding_name),
        )
        features = extractor.matrix(train.triples)
        labels = extractor.labels(train.triples)

        def factory(params):
            return RandomForest(
                RandomForestConfig(seed=self.config.seed, **params)
            )

        return grid_search(
            factory, grid, features, labels, n_folds=n_folds,
            seed=self.config.seed,
        )

    def evaluate_lstm(
        self, task: int, embedding_name: str, adaptation: str = "none"
    ) -> Tuple[ClassificationReport, LSTMClassifier]:
        """Train + evaluate one LSTM cell (Appendix Table A6)."""
        split = self.ml_split(task)
        token_filter = self.adaptation_filter(adaptation, embedding_name)
        extractor = FeatureExtractor(self.embedding(embedding_name), token_filter)
        model = LSTMClassifier(
            extractor.embeddings.dim, self.lstm_config()
        ).fit(
            extractor.sequences(split.train.triples),
            extractor.labels(split.train.triples),
        )
        predictions = model.predict(extractor.sequences(split.test.triples))
        report = evaluate_binary(split.test.labels(), predictions)
        return report, model


__all__ = ["LabConfig", "Lab", "subsample", "ADAPTATIONS"]
