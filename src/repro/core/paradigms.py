"""Unified interface over the three NLP paradigms.

The head-to-head comparison (Table 6) and the data-availability scenarios
(Figure 3) evaluate heterogeneous models on the same triples.  Every paradigm
is wrapped as: ``fit(train_triples)`` then ``classify(triples) ->
List[Optional[int]]`` where ``None`` marks an unclassified response (only the
ICL paradigm produces those; the paper counts them as errors for accuracy and
excludes them from precision/recall/F1).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.bert.finetune import FineTuneConfig, fine_tune
from repro.bert.model import MiniBert
from repro.core.triples import LabeledTriple
from repro.embeddings.base import EmbeddingModel
from repro.llm.client import ChatClient, ChatClientError
from repro.llm.icl import FALSE, TRUE, UNCLASSIFIED, parse_response
from repro.llm.prompts import PromptVariant, render_prompt
from repro.resilience.retry import CircuitOpenError, RetryError, RetryPolicy
from repro.ml.features import FeatureExtractor, TokenFilter
from repro.ml.forest import RandomForest, RandomForestConfig
from repro.ml.lstm import LSTMClassifier, LSTMConfig
from repro.obs.trace import get_tracer
from repro.utils.rng import SeedLike, derive_rng

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.delivery.engine import DeliveryEngine


class Paradigm(abc.ABC):
    """A fit/classify wrapper around one modelling approach."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def fit(self, train: Sequence[LabeledTriple]) -> "Paradigm":
        """Train (or prepare) the paradigm on labelled triples."""

    @abc.abstractmethod
    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        """Per-triple 0/1 decision, or ``None`` when unclassified."""

    def predict(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """Hard labels with unclassified responses mapped to 0 (reject)."""
        return np.array(
            [0 if c is None else c for c in self.classify(triples)], dtype=np.int64
        )


class RandomForestParadigm(Paradigm):
    """Supervised learning: embedding features + Random Forest."""

    def __init__(
        self,
        embeddings: EmbeddingModel,
        token_filter: Optional[TokenFilter] = None,
        config: Optional[RandomForestConfig] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name or f"RF({embeddings.name})")
        self.extractor = FeatureExtractor(embeddings, token_filter)
        self.config = config or RandomForestConfig()
        self.model: Optional[RandomForest] = None

    def fit(self, train: Sequence[LabeledTriple]) -> "RandomForestParadigm":
        features = self.extractor.matrix(train)
        labels = self.extractor.labels(train)
        self.model = RandomForest(self.config).fit(features, labels)
        return self

    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return [int(p) for p in self.model.predict(self.extractor.matrix(triples))]

    def predict_proba(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """Positive-class probabilities (for ROC analyses)."""
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return self.model.predict_proba(self.extractor.matrix(triples))


class LogisticRegressionParadigm(Paradigm):
    """Supervised learning: embedding features + logistic regression.

    The linear comparator to :class:`RandomForestParadigm` (an extension
    beyond the paper's RF/LSTM archetypes).
    """

    def __init__(
        self,
        embeddings: EmbeddingModel,
        token_filter: Optional[TokenFilter] = None,
        config: Optional["LogisticRegressionConfig"] = None,
        name: Optional[str] = None,
    ):
        from repro.ml.logistic import LogisticRegression, LogisticRegressionConfig

        super().__init__(name or f"LogReg({embeddings.name})")
        self.extractor = FeatureExtractor(embeddings, token_filter)
        self.config = config or LogisticRegressionConfig()
        self.model: Optional[LogisticRegression] = None

    def fit(self, train: Sequence[LabeledTriple]) -> "LogisticRegressionParadigm":
        from repro.ml.logistic import LogisticRegression

        self.model = LogisticRegression(self.config).fit(
            self.extractor.matrix(train), self.extractor.labels(train)
        )
        return self

    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return [int(p) for p in self.model.predict(self.extractor.matrix(triples))]

    def predict_proba(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return self.model.predict_proba(self.extractor.matrix(triples))


class LSTMParadigm(Paradigm):
    """Supervised learning: embedding sequences + LSTM classifier."""

    def __init__(
        self,
        embeddings: EmbeddingModel,
        token_filter: Optional[TokenFilter] = None,
        config: Optional[LSTMConfig] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name or f"LSTM({embeddings.name})")
        self.extractor = FeatureExtractor(embeddings, token_filter)
        self.config = config or LSTMConfig()
        self.model: Optional[LSTMClassifier] = None

    def fit(self, train: Sequence[LabeledTriple]) -> "LSTMParadigm":
        sequences = self.extractor.sequences(train)
        labels = self.extractor.labels(train)
        self.model = LSTMClassifier(self.extractor.embeddings.dim, self.config)
        self.model.fit(sequences, labels)
        return self

    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return [int(p) for p in self.model.predict(self.extractor.sequences(triples))]

    def predict_proba(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return self.model.predict_proba(self.extractor.sequences(triples))


class FineTuneParadigm(Paradigm):
    """Fine-tuning: pretrained mini-BERT + classification head."""

    def __init__(
        self,
        pretrained: MiniBert,
        config: Optional[FineTuneConfig] = None,
        name: str = "FT(PubmedBERT)",
    ):
        super().__init__(name)
        self.pretrained = pretrained
        self.config = config or FineTuneConfig()
        self.classifier = None

    def fit(self, train: Sequence[LabeledTriple]) -> "FineTuneParadigm":
        self.classifier = fine_tune(self.pretrained, train, self.config)
        return self

    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        if self.classifier is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return [int(p) for p in self.classifier.predict(triples)]

    def predict_proba(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        if self.classifier is None:
            raise RuntimeError(f"{self.name} is not fitted")
        return self.classifier.predict_proba(triples)


class ICLParadigm(Paradigm):
    """In-context learning: few-shot prompting of a chat model.

    ``fit`` stores the training triples as the example pool (no parameters
    are updated — the defining property of the paradigm).  ``classify``
    renders one prompt per triple and parses the single completion;
    unparseable or abstaining completions come back as ``None``, as do
    deliveries whose client failed permanently (transient failures are
    retried when a ``retry`` policy is supplied).

    When an ``engine`` (:class:`repro.delivery.DeliveryEngine`) is supplied,
    completions route through it instead of the raw client — gaining the
    engine's retries, rate limits, hedging, and response cache.  Each query
    is delivered at repeat index 0, so the answer is a pure function of the
    prompt regardless of what else the engine is serving (the serving
    batch-invariance contract).
    """

    def __init__(
        self,
        client: ChatClient,
        variant: PromptVariant = PromptVariant.BASE,
        n_examples_per_class: int = 3,
        seed: SeedLike = 0,
        name: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        engine: Optional["DeliveryEngine"] = None,
    ):
        super().__init__(name or f"ICL({client.name})")
        self.client = client
        self.variant = variant
        self.n_examples_per_class = n_examples_per_class
        self.seed = seed
        self.retry = retry
        self.engine = engine
        self._pool_pos: List[LabeledTriple] = []
        self._pool_neg: List[LabeledTriple] = []

    def fit(self, train: Sequence[LabeledTriple]) -> "ICLParadigm":
        self._pool_pos = [t for t in train if t.label == 1]
        self._pool_neg = [t for t in train if t.label == 0]
        if (
            len(self._pool_pos) < self.n_examples_per_class
            or len(self._pool_neg) < self.n_examples_per_class
        ):
            raise ValueError("training pool too small for the few-shot budget")
        return self

    def _examples(
        self, query: LabeledTriple, pool: List[LabeledTriple],
        rng: np.random.Generator,
    ) -> List[LabeledTriple]:
        chosen: List[LabeledTriple] = []
        seen = {query.key()}
        attempts = 0
        while len(chosen) < self.n_examples_per_class:
            attempts += 1
            if attempts > 100 * self.n_examples_per_class:
                raise ValueError("example pool too small to avoid duplicates")
            candidate = pool[int(rng.integers(0, len(pool)))]
            if candidate.key() in seen:
                continue
            seen.add(candidate.key())
            chosen.append(candidate)
        return chosen

    def _deliver(self, prompt: str) -> str:
        """One completion via the engine when present, the client otherwise.

        Engine failures surface as a non-retryable
        :class:`~repro.llm.client.ChatClientError` so ``classify`` handles
        both paths through one except clause.
        """
        if self.engine is not None:
            from repro.delivery.engine import DeliveryError

            try:
                return self.engine.complete(prompt, repeat=0)
            except DeliveryError as error:
                raise ChatClientError(
                    f"delivery failed: {error.outcome.status}",
                    retryable=False,
                    kind="delivery",
                ) from error
        if self.retry is None:
            return self.client.complete(prompt)
        return self.retry.call(self.client.complete, prompt)

    def classify(self, triples: Sequence[LabeledTriple]) -> List[Optional[int]]:
        if not self._pool_pos:
            raise RuntimeError(f"{self.name} is not fitted")
        results: List[Optional[int]] = []
        for index, query in enumerate(triples):
            rng = derive_rng(self.seed, "icl-paradigm", index, query.as_text())
            prompt = render_prompt(
                self._examples(query, self._pool_pos, rng),
                self._examples(query, self._pool_neg, rng),
                query,
                variant=self.variant,
                seed=derive_rng(self.seed, "icl-paradigm-order", index),
            )
            try:
                text = self._deliver(prompt)
            except (ChatClientError, RetryError, CircuitOpenError):
                get_tracer().count("icl.client_failures")
                results.append(None)
                continue
            answer = parse_response(text)
            if answer == UNCLASSIFIED:
                results.append(None)
            else:
                results.append(1 if answer == TRUE else 0)
        return results


__all__ = [
    "Paradigm",
    "RandomForestParadigm",
    "LogisticRegressionParadigm",
    "LSTMParadigm",
    "FineTuneParadigm",
    "ICLParadigm",
]
