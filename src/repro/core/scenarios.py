"""Data-availability scenarios (paper Section 2.8 / 3.6.1, Figure 3).

The paper simulates five scenarios over a random ~10% subset of each task's
data: the test set is held constant (balanced) while the training set shrinks
and becomes increasingly imbalanced:

=========  =================  =====================
scenario   train:test ratio   positive:negative
=========  =================  =====================
S1         9 : 1              1 : 1
S2         7 : 1              0.75 : 1
S3         4 : 1              0.5  : 1
S4         1 : 1              0.25 : 1
S5         0.5 : 1            0.125 : 1
=========  =================  =====================

(The ratios reproduce the paper's reported training sizes, e.g. task 1:
55,835 / 43,427 / 24,815 / 6,204 / 3,102 against a constant 6,204 test set.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.datasets import Dataset, DatasetSplit
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class Scenario:
    """One data-availability scenario.

    Attributes:
        name: short identifier, e.g. ``"S4"``.
        train_test_ratio: training-set size as a multiple of the test size.
        positive_per_negative: positive:negative ratio in the training set
            (1.0 is balanced; 0.125 is the paper's most extreme imbalance).
    """

    name: str
    train_test_ratio: float
    positive_per_negative: float

    def __post_init__(self):
        if self.train_test_ratio <= 0:
            raise ValueError("train_test_ratio must be positive")
        if not 0 < self.positive_per_negative <= 1:
            raise ValueError("positive_per_negative must be in (0, 1]")

    @property
    def positive_fraction(self) -> float:
        """Share of positives in the training set."""
        return self.positive_per_negative / (1.0 + self.positive_per_negative)

    def describe(self) -> str:
        return (
            f"{self.name} (split {self.train_test_ratio:g}:1, "
            f"P:N {self.positive_per_negative:g}:1)"
        )


#: The paper's five scenarios, most to least favourable.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("S1", 9.0, 1.0),
    Scenario("S2", 7.0, 0.75),
    Scenario("S3", 4.0, 0.5),
    Scenario("S4", 1.0, 0.25),
    Scenario("S5", 0.5, 0.125),
)


def build_scenario_split(
    dataset: Dataset,
    scenario: Scenario,
    subset_fraction: float = 0.1,
    seed: SeedLike = 0,
) -> DatasetSplit:
    """Materialise one scenario from a full task dataset.

    A random ``subset_fraction`` of the dataset is drawn (stratified); 10% of
    the subset becomes the constant balanced test set; the training set is
    then sampled from the remainder at the scenario's size and imbalance.

    The test set is identical across scenarios for a given ``(dataset,
    subset_fraction, seed)`` so scenario curves are comparable, exactly as in
    the paper's Figure 3.
    """
    if not 0 < subset_fraction <= 1:
        raise ValueError("subset_fraction must be in (0, 1]")
    rng_tag = derive_rng(seed, "scenario-subset", dataset.name, subset_fraction)
    if subset_fraction < 1.0:
        subset, _ = dataset.stratified_split(
            [subset_fraction, 1.0 - subset_fraction], seed=rng_tag
        )
    else:
        subset = dataset

    pool, test = subset.stratified_split(
        [0.9, 0.1], seed=derive_rng(seed, "scenario-test", dataset.name)
    )

    n_train = int(round(scenario.train_test_ratio * len(test)))
    n_pos = int(round(n_train * scenario.positive_fraction))
    n_neg = n_train - n_pos
    pool_pos, pool_neg = pool.counts()
    n_pos = min(n_pos, pool_pos)
    n_neg = min(n_neg, pool_neg)
    if n_pos < 1 or n_neg < 1:
        raise ValueError(
            f"scenario {scenario.name} infeasible: pool has "
            f"{pool_pos}+/{pool_neg}-, needs {n_pos}+/{n_neg}-"
        )
    train = pool.sample(
        n_pos, n_neg, seed=derive_rng(seed, "scenario-train", scenario.name)
    )
    return DatasetSplit(train=train, test=test)


__all__ = ["Scenario", "SCENARIOS", "build_scenario_split"]
