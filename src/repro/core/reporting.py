"""Plain-text table rendering for the benchmark harness.

Every benchmark prints a table with the paper's reported values next to the
values measured on the scaled-down synthetic apparatus, and writes the same
text to ``benchmarks/results/`` so runs leave an inspectable artefact.  When
tracing is enabled (``REPRO_TRACE=1`` or ``repro.obs.enable()``), saving a
table also writes a ``<table>.manifest.json`` run manifest beside it.
"""

from __future__ import annotations

import numbers
from typing import Iterable, List, Optional, Sequence, Union

from repro.utils.atomic import atomic_write

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    # numbers.Integral / numbers.Real also catch numpy int64 / float32
    # scalars, which are not instances of the builtin int / float.
    if isinstance(value, numbers.Integral):
        return str(int(value))
    if isinstance(value, numbers.Real):
        return f"{float(value):.{precision}f}"
    return str(value)


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str], precision: int = 4):
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self._rows: List[List[str]] = []

    def add_row(self, *cells: Cell):
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([format_cell(c, self.precision) for c in cells])

    def add_section(self, label: str):
        """A full-width separator row used to group related rows."""
        self._rows.append([f"-- {label} --"] + [""] * (len(self.columns) - 1))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> str:
        """Print and return the rendered table."""
        text = self.render()
        print("\n" + text + "\n")
        return text

    def save(self, path: str) -> str:
        """Write the rendered table to ``path`` (directories created).

        The write is atomic (temp file + rename), so a killed run leaves
        either the previous table or the complete new one.  With tracing
        enabled, a ``<path-stem>.manifest.json`` run manifest (environment,
        config, span tree, counters) is written next to the table; untraced
        runs write only the table, exactly as before.
        """
        text = self.render()
        with atomic_write(path, "w") as handle:
            handle.write(text + "\n")
        from repro.obs.manifest import write_artefact_manifest

        write_artefact_manifest(path, title=self.title)
        return text


__all__ = ["Table", "format_cell"]
