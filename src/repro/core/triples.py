"""Labelled triples — the unit of data for all three curation tasks.

A triple ``(s, o, l)`` pairs two entities with a relationship label; the
curation task is the binary classification ``f(t) = 1`` iff the triple states
a true piece of knowledge (paper Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.ontology.relations import RelationType


@dataclass(frozen=True)
class LabeledTriple:
    """A triple with its gold label.

    Attributes:
        subject_id / object_id: ontology identifiers (kept for graph queries).
        subject_name / object_name: entity labels used for tokenisation,
            prompting and BERT input.
        relation: the relationship type.
        label: 1 for a correct triple, 0 for an erroneous one.
    """

    subject_id: str
    subject_name: str
    relation: RelationType
    object_id: str
    object_name: str
    label: int

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {self.label!r}")

    def key(self) -> Tuple[str, str, str]:
        """Identity of the underlying triple, ignoring the label."""
        return (self.subject_id, self.relation.name, self.object_id)

    def as_text(self) -> str:
        """Human-readable rendering, e.g. for prompts.

        >>> from repro.ontology.relations import HAS_ROLE
        >>> LabeledTriple("a", "ammonium chloride", HAS_ROLE,
        ...               "b", "ferroptosis inhibitor", 1).as_text()
        '(ammonium chloride, has_role, ferroptosis inhibitor)'
        """
        return f"({self.subject_name}, {self.relation.name}, {self.object_name})"


def triple_text(triple: LabeledTriple, separator: str = " [SEP] ") -> str:
    """Serialise a triple for sequence models.

    The paper converts triples into word sequences by concatenating subject,
    relationship and object labels with a separator token (Section 2.5).
    """
    return separator.join(
        (triple.subject_name, triple.relation.label, triple.object_name)
    )


__all__ = ["LabeledTriple", "triple_text"]
