"""Core benchmark: the paper's three curation tasks, datasets, scenarios,
paradigm interfaces, comparison runners and the Lab orchestration object."""

from repro.core.comparison import ComparisonRow, evaluate_paradigm, head_to_head
from repro.core.datasets import (
    Dataset,
    DatasetSplit,
    build_task_dataset,
    train_test_split_9_1,
    train_val_test_split_8_1_1,
)
from repro.core.experiment import ADAPTATIONS, Lab, LabConfig, subsample
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    LSTMParadigm,
    Paradigm,
    RandomForestParadigm,
)
from repro.core.scenarios import SCENARIOS, Scenario, build_scenario_split
from repro.core.tasks import (
    TASKS,
    Task,
    generate_task1_negatives,
    generate_task2_negatives,
    generate_task3_negatives,
    positive_triples,
    task_by_number,
)
from repro.core.triples import LabeledTriple, triple_text

__all__ = [
    "LabeledTriple",
    "triple_text",
    "Task",
    "TASKS",
    "task_by_number",
    "positive_triples",
    "generate_task1_negatives",
    "generate_task2_negatives",
    "generate_task3_negatives",
    "Dataset",
    "DatasetSplit",
    "build_task_dataset",
    "train_test_split_9_1",
    "train_val_test_split_8_1_1",
    "Scenario",
    "SCENARIOS",
    "build_scenario_split",
    "Paradigm",
    "RandomForestParadigm",
    "LSTMParadigm",
    "FineTuneParadigm",
    "ICLParadigm",
    "ComparisonRow",
    "evaluate_paradigm",
    "head_to_head",
    "Lab",
    "LabConfig",
    "subsample",
    "ADAPTATIONS",
]
