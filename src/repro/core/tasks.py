"""The three knowledge-curation tasks (paper Section 2.2 / 3.2).

All three tasks are binary classification over triples:

* **Task 1** — true vs *random* negatives: for every positive triple, a
  negative ``(s, o, l)`` is drawn uniformly over entity pairs such that the
  triple is not in the ontology.  The relation of each negative mirrors a
  positive triple's relation, preserving the relationship distribution (the
  paper breaks results down by relationship type in Figure 2).
* **Task 2** — true vs *wrong-direction* negatives: each positive triple is
  flipped to ``(o, s, l)``; symmetric ``is_tautomer_of`` triples are excluded
  from the positives because their flip is also true.
* **Task 3** — true vs *wrong-object* negatives: the object is replaced by a
  sibling entity (one sharing an ``is_a`` parent).  Positives without a
  usable sibling produce no negative.

Positives for all tasks are the ontology statements minus
``is_conjugate_acid_of`` (the inverse of ``is_conjugate_base_of``,
dropped in Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.ontology.model import Ontology
from repro.ontology.queries import siblings
from repro.ontology.relations import (
    IS_CONJUGATE_ACID_OF,
    IS_TAUTOMER_OF,
    RelationType,
)
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class Task:
    """Descriptor for one curation task."""

    number: int
    name: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"task{self.number}"


TASK1 = Task(1, "random-negatives", "true vs randomly generated false triples")
TASK2 = Task(2, "wrong-direction", "true vs direction-flipped triples")
TASK3 = Task(3, "wrong-object", "true vs sibling-object triples")

TASKS: Tuple[Task, ...] = (TASK1, TASK2, TASK3)


def task_by_number(number: int) -> Task:
    """Look up a task descriptor by its paper number (1-3)."""
    for task in TASKS:
        if task.number == number:
            return task
    raise KeyError(f"no task {number}; valid numbers are 1-3")


def positive_triples(
    ontology: Ontology,
    exclude_relations: FrozenSet[str] = frozenset({IS_CONJUGATE_ACID_OF.name}),
) -> List[LabeledTriple]:
    """All true triples used as positives.

    ``is_conjugate_acid_of`` is excluded by default (paper Section 2.1).
    """
    positives = []
    for statement in ontology.statements():
        if statement.relation.name in exclude_relations:
            continue
        positives.append(
            LabeledTriple(
                subject_id=statement.subject,
                subject_name=ontology.entity(statement.subject).name,
                relation=statement.relation,
                object_id=statement.object,
                object_name=ontology.entity(statement.object).name,
                label=1,
            )
        )
    return positives


def _negative(
    ontology: Ontology, subject_id: str, relation: RelationType, object_id: str
) -> LabeledTriple:
    return LabeledTriple(
        subject_id=subject_id,
        subject_name=ontology.entity(subject_id).name,
        relation=relation,
        object_id=object_id,
        object_name=ontology.entity(object_id).name,
        label=0,
    )


def generate_task1_negatives(
    ontology: Ontology,
    positives: Sequence[LabeledTriple],
    seed: SeedLike = 0,
    max_attempts: int = 64,
) -> List[LabeledTriple]:
    """Random negatives, one per positive, matching its relation type.

    Raises :class:`RuntimeError` if a fresh random pair cannot be found after
    ``max_attempts`` draws (only possible on degenerate tiny ontologies).
    """
    rng = derive_rng(seed, "task1-negatives")
    entity_ids = ontology.entity_ids()
    negatives: List[LabeledTriple] = []
    produced = set()
    for positive in positives:
        relation = positive.relation
        for _ in range(max_attempts):
            subject = entity_ids[int(rng.integers(0, len(entity_ids)))]
            obj = entity_ids[int(rng.integers(0, len(entity_ids)))]
            if subject == obj:
                continue
            key = (subject, relation.name, obj)
            if key in produced or ontology.has_statement(subject, relation, obj):
                continue
            produced.add(key)
            negatives.append(_negative(ontology, subject, relation, obj))
            break
        else:
            raise RuntimeError(
                f"could not generate a random negative for relation "
                f"{relation.name} after {max_attempts} attempts"
            )
    return negatives


def generate_task2_negatives(
    ontology: Ontology,
    positives: Sequence[LabeledTriple],
    exclude_relations: FrozenSet[str] = frozenset({IS_TAUTOMER_OF.name}),
) -> Tuple[List[LabeledTriple], List[LabeledTriple]]:
    """Direction-flipped negatives.

    Returns ``(kept_positives, negatives)``: positives whose relation is in
    ``exclude_relations`` (symmetric ``is_tautomer_of`` by default, paper
    Section 3.2) are dropped, and flips that happen to be true triples are
    skipped together with their positive so the classes stay paired.
    """
    kept: List[LabeledTriple] = []
    negatives: List[LabeledTriple] = []
    for positive in positives:
        if positive.relation.name in exclude_relations:
            continue
        if ontology.has_statement(
            positive.object_id, positive.relation, positive.subject_id
        ):
            continue
        kept.append(positive)
        negatives.append(
            _negative(
                ontology, positive.object_id, positive.relation, positive.subject_id
            )
        )
    return kept, negatives


def generate_task3_negatives(
    ontology: Ontology,
    positives: Sequence[LabeledTriple],
    seed: SeedLike = 0,
) -> List[LabeledTriple]:
    """Sibling-object negatives (the hardest task).

    For each positive ``(s, o, l)`` the object is replaced by a sibling of
    ``o`` — an entity sharing at least one ``is_a`` parent — chosen uniformly
    among siblings that do not form a true triple.  Positives with no usable
    sibling generate no negative (paper Section 3.2: 307,188 negatives from
    310,193 positives), so the output may be slightly shorter than the input.
    """
    rng = derive_rng(seed, "task3-negatives")
    sibling_cache: Dict[str, List[str]] = {}
    negatives: List[LabeledTriple] = []
    for positive in positives:
        pool = sibling_cache.get(positive.object_id)
        if pool is None:
            pool = sorted(siblings(ontology, positive.object_id))
            sibling_cache[positive.object_id] = pool
        candidates = [
            candidate
            for candidate in pool
            if candidate != positive.subject_id
            and not ontology.has_statement(
                positive.subject_id, positive.relation, candidate
            )
        ]
        if not candidates:
            continue
        chosen = candidates[int(rng.integers(0, len(candidates)))]
        negatives.append(
            _negative(ontology, positive.subject_id, positive.relation, chosen)
        )
    return negatives


__all__ = [
    "Task",
    "TASK1",
    "TASK2",
    "TASK3",
    "TASKS",
    "task_by_number",
    "positive_triples",
    "generate_task1_negatives",
    "generate_task2_negatives",
    "generate_task3_negatives",
]
