"""Content-addressed response cache for chat completions.

Completions are the expensive unit of the ICL protocol (a real API charges
per token; even the simulators dominate benchmark time once latency is
modelled), and they are *pure*: a completion is a function of ``(model,
prompt, repeat-index)`` — the repeat index covers the protocol's
deliberate repeated deliveries of one prompt.  That makes them cacheable
under exactly that key.

The cache is a thin veneer over the existing
:class:`~repro.pipeline.store.ArtifactStore`: each completion is one store
entry under stage ``llm-response`` whose key is
``stable_digest("llm-response", model, stable_digest(prompt), repeat)``
(hashing the prompt first keeps keys short and filename-safe for arbitrary
prompt text).  Entries inherit the store's atomic tmp+rename commit, so
concurrent workers caching the same completion race harmlessly.

Only *successful* completions are cached — a failed delivery must be
re-attempted on the next run, never replayed from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.trace import get_tracer
from repro.pipeline.stage import Stage
from repro.pipeline.store import ArtifactStore
from repro.utils.atomic import atomic_write
from repro.utils.rng import stable_digest

PathLike = Union[str, Path]

#: The store stage name every cached completion lives under.
RESPONSE_STAGE_NAME = "llm-response"

_RESPONSE_FILE = "response.json"


def _save_response(artifact: object, directory: Path) -> None:
    with atomic_write(directory / _RESPONSE_FILE, "w") as handle:
        json.dump(artifact, handle, sort_keys=True)


def _load_response(directory: Path, inputs: Dict[str, object]) -> object:
    with open(directory / _RESPONSE_FILE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _build_unsupported(lab: object, inputs: Dict[str, object]) -> object:
    raise RuntimeError(
        "llm-response entries are written by the delivery engine, "
        "never built by the stage graph"
    )


#: Store stage for cached completions (save/load hooks only; the engine is
#: the builder).
RESPONSE_STAGE = Stage(
    name=RESPONSE_STAGE_NAME,
    build=_build_unsupported,
    version="1",
    save=_save_response,
    load=_load_response,
)


class ResponseCache:
    """Completion cache keyed by ``(model, prompt-hash, repeat)``."""

    def __init__(self, store: Union[ArtifactStore, PathLike]):
        self.store = (
            store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        )

    @staticmethod
    def key(model: str, prompt: str, repeat: int) -> str:
        """The content address of one completion."""
        return stable_digest(
            RESPONSE_STAGE_NAME, model, stable_digest(prompt), int(repeat)
        )

    def get(self, model: str, prompt: str, repeat: int) -> Optional[str]:
        """The cached completion text, or ``None`` on a miss."""
        key = self.key(model, prompt, repeat)
        if not self.store.has(RESPONSE_STAGE_NAME, key):
            return None
        try:
            record = self.store.load(RESPONSE_STAGE, key, {})
        except (OSError, json.JSONDecodeError, ValueError):
            # A mangled entry is a miss, not a crash — but never silently:
            # the rebuild cost shows up in the counters.
            get_tracer().count("delivery.cache_corrupt")
            return None
        text = record.get("text") if isinstance(record, dict) else None
        return text if isinstance(text, str) else None

    def put(self, model: str, prompt: str, repeat: int, text: str) -> None:
        """Persist one successful completion (atomic, race-safe)."""
        record = {
            "model": model,
            "repeat": int(repeat),
            "prompt_digest": stable_digest(prompt),
            "text": text,
        }
        self.store.put(RESPONSE_STAGE, self.key(model, prompt, repeat), record)


__all__ = ["RESPONSE_STAGE", "RESPONSE_STAGE_NAME", "ResponseCache"]
