"""Concurrent, fault-tolerant delivery of chat completions.

The paper's ICL protocol issues thousands of completions (100 prompts x 5
repeats x several models); delivering them strictly sequentially means one
slow or flaky backend stalls the whole table.  :mod:`repro.delivery` is the
dispatch layer between the experiment loops and the chat clients:

* :class:`~repro.delivery.engine.DeliveryEngine` fans deliveries out over a
  thread pool across N named :class:`~repro.delivery.backends.DeliveryBackend`
  replicas (simulated profiles and HTTP endpoints alike), hedging stragglers
  to a second healthy backend after a seeded threshold;
* each backend sits behind the existing
  :class:`~repro.resilience.retry.RetryPolicy` +
  :class:`~repro.resilience.retry.CircuitBreaker`, plus a per-backend
  :class:`~repro.delivery.ratelimit.TokenBucket` and a per-request
  :class:`~repro.delivery.deadline.DeadlineBudget` — all pure functions of
  an injectable :class:`~repro.resilience.retry.Clock`;
* deadline-exceeded and all-backends-shedding degrade into *typed*
  :class:`~repro.delivery.engine.DeliveryOutcome` statuses that feed the ICL
  loop's existing ``failed`` accounting and the resume
  :class:`~repro.resilience.checkpoint.Journal`;
* a content-addressed :class:`~repro.delivery.cache.ResponseCache` keyed by
  ``(model, prompt-hash, repeat)`` in the
  :class:`~repro.pipeline.store.ArtifactStore` means reruns never re-pay a
  completion.

Determinism survives concurrency because delivery behaviour is pure in
``(prompt, repeat)``: clients expose
:meth:`~repro.llm.client.ChatClient.complete_indexed`, so whichever thread,
backend, or hedge wins produces the same completion the sequential loop
would have — the engine's table is byte-identical to the sequential one.
"""

from repro.delivery.backends import DeliveryBackend, LatencyClient, simulated_backends
from repro.delivery.cache import ResponseCache
from repro.delivery.deadline import DeadlineBudget, DeadlineExceeded
from repro.delivery.engine import (
    DeliveryConfig,
    DeliveryEngine,
    DeliveryError,
    DeliveryOutcome,
    DeliveryReport,
    DeliveryRequest,
)
from repro.delivery.ratelimit import TokenBucket

__all__ = [
    "DeliveryBackend",
    "LatencyClient",
    "simulated_backends",
    "ResponseCache",
    "DeadlineBudget",
    "DeadlineExceeded",
    "DeliveryConfig",
    "DeliveryEngine",
    "DeliveryError",
    "DeliveryOutcome",
    "DeliveryReport",
    "DeliveryRequest",
    "TokenBucket",
]
