"""Per-request deadline budgets.

A delivery that retries for minutes is worse than one that fails fast: the
caller (a benchmark wave, a serving request) has long since moved on.  A
:class:`DeadlineBudget` is started when a delivery begins and consulted at
every expensive step — before each attempt, before each rate-limit wait,
and as the socket timeout of the HTTP client — so the whole pipeline
degrades into one typed :class:`DeadlineExceeded` instead of burning the
full retry schedule after the budget is already gone.

Time comes from the injectable :class:`~repro.resilience.retry.Clock`, so
deadline policy is testable on a virtual clock without real waiting.
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.retry import Clock, SYSTEM_CLOCK


class DeadlineExceeded(RuntimeError):
    """The per-request deadline budget ran out.

    Not retryable: more attempts cannot create more budget.  The engine
    maps it to the typed ``deadline`` outcome (scored as a failed
    delivery), never a crash.
    """

    retryable = False


class DeadlineBudget:
    """Countdown from ``budget_s`` seconds on an injectable clock.

    ``budget_s=None`` means unlimited: :meth:`remaining` is ``None`` and
    :meth:`check` never raises, so unlimited callers pay no branching.
    """

    def __init__(self, budget_s: Optional[float], clock: Optional[Clock] = None):
        if budget_s is not None and budget_s <= 0:
            raise ValueError("budget_s must be positive (or None for unlimited)")
        self.budget_s = budget_s
        self.clock = clock or SYSTEM_CLOCK
        self._started = self.clock.monotonic()

    def elapsed(self) -> float:
        return self.clock.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left, clamped at 0; ``None`` when unlimited."""
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        return self.budget_s is not None and self.remaining() <= 0.0

    def check(self, what: str = "delivery") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s:g}s deadline "
                f"(elapsed {self.elapsed():.3f}s)"
            )


__all__ = ["DeadlineBudget", "DeadlineExceeded"]
