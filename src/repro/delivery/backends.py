"""Named delivery backends: one chat client plus its protection stack.

A :class:`DeliveryBackend` is the unit the engine dispatches over — a
:class:`~repro.llm.client.ChatClient` (a simulated profile replica or an
HTTP endpoint) wrapped in the protections a production path needs:

* an optional :class:`~repro.resilience.retry.RetryPolicy` retrying
  transient failures per attempt;
* an optional :class:`~repro.resilience.retry.CircuitBreaker` cutting off a
  persistently failing client (an open breaker marks the backend unhealthy,
  so the engine routes and hedges around it);
* an optional :class:`~repro.delivery.ratelimit.TokenBucket` shaping the
  request rate, with waits bounded by the request's
  :class:`~repro.delivery.deadline.DeadlineBudget`.

Deliveries go through :meth:`~repro.llm.client.ChatClient.complete_indexed`
with the repeat index made explicit, so a backend's answer is pure in
``(prompt, repeat)`` and identical replicas are interchangeable — the
foundation of the engine's byte-identical-to-sequential guarantee.

:class:`LatencyClient` models per-call network/inference latency on the
injectable clock; it is what makes concurrency measurable for simulated
backends (pure-CPU simulators finish in microseconds, so a thread pool
under the GIL would show nothing).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.delivery.deadline import DeadlineBudget, DeadlineExceeded
from repro.delivery.ratelimit import TokenBucket
from repro.llm.client import ChatClient
from repro.resilience.retry import (
    CircuitBreaker,
    CircuitOpenError,
    Clock,
    RetryPolicy,
    SYSTEM_CLOCK,
    is_retryable,
)
from repro.utils.rng import derive_rng, stable_digest


class LatencyClient(ChatClient):
    """Add deterministic per-call latency to a wrapped client.

    The delay for one call is ``latency_s`` scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from ``(seed, prompt-digest,
    repeat)`` — the same call always takes the same simulated time.  Sleeps
    go through the injectable clock, so fake-clock tests pay nothing.
    """

    def __init__(
        self,
        inner: ChatClient,
        latency_s: float,
        jitter: float = 0.0,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ):
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.inner = inner
        self.latency_s = latency_s
        self.jitter = jitter
        self.seed = seed
        self.clock = clock or SYSTEM_CLOCK

    @property
    def name(self) -> str:
        return self.inner.name

    def reset(self) -> None:
        reset = getattr(self.inner, "reset", None)
        if callable(reset):
            reset()

    def skip_delivery(self, prompt: str) -> None:
        self.inner.skip_delivery(prompt)

    def delay_s(self, prompt: str, repeat: int) -> float:
        """The deterministic latency of one (prompt, repeat) call."""
        if self.latency_s == 0:
            return 0.0
        scale = 1.0
        if self.jitter:
            rng = derive_rng(
                self.seed, "delivery-latency", stable_digest(prompt), repeat
            )
            scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return self.latency_s * scale

    def complete(self, prompt: str) -> str:
        self.clock.sleep(self.delay_s(prompt, 0))
        return self.inner.complete(prompt)

    def complete_indexed(
        self, prompt: str, repeat: int, *, timeout_s: Optional[float] = None
    ) -> str:
        self.clock.sleep(self.delay_s(prompt, repeat))
        return self.inner.complete_indexed(prompt, repeat, timeout_s=timeout_s)


class DeliveryBackend:
    """One named backend: client + retry + breaker + rate limit."""

    def __init__(
        self,
        name: str,
        client: ChatClient,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        bucket: Optional[TokenBucket] = None,
        clock: Optional[Clock] = None,
    ):
        if not name:
            raise ValueError("backend name must be non-empty")
        self.name = name
        self.client = client
        self.retry = retry
        self.breaker = breaker
        self.bucket = bucket
        self.clock = clock or SYSTEM_CLOCK

    def healthy(self) -> bool:
        """Whether the engine should route new deliveries here.

        An open breaker (still inside its cool-down) is unhealthy; closed
        and half-open (due a probe) both accept work.
        """
        if self.breaker is None:
            return True
        try:
            self.breaker.before_call()
        except CircuitOpenError:
            return False
        return True

    def _acquire_slot(self, deadline: Optional[DeadlineBudget]) -> None:
        """Wait for a rate-limit token, never past the deadline budget."""
        if self.bucket is None:
            return
        max_wait = deadline.remaining() if deadline is not None else None
        if not self.bucket.acquire(max_wait_s=max_wait):
            raise DeadlineExceeded(
                f"backend {self.name!r} rate limit leaves no budget "
                f"for this delivery"
            )

    def deliver(
        self,
        prompt: str,
        repeat: int,
        deadline: Optional[DeadlineBudget] = None,
    ) -> str:
        """One delivery through the full protection stack.

        Raises whatever the stack raises —
        :class:`~repro.llm.client.ChatClientError`,
        :class:`~repro.resilience.retry.RetryError`,
        :class:`~repro.resilience.retry.CircuitOpenError`, or
        :class:`~repro.delivery.deadline.DeadlineExceeded` — for the engine
        to map into a typed outcome.
        """
        self._acquire_slot(deadline)

        def attempt() -> str:
            if deadline is not None:
                deadline.check(f"delivery via {self.name}")
            timeout_s = deadline.remaining() if deadline is not None else None
            return self.client.complete_indexed(
                prompt, repeat, timeout_s=timeout_s
            )

        def classify(error: BaseException) -> bool:
            # A spent budget makes every error final: retrying after the
            # deadline has already passed only burns the schedule.
            if deadline is not None and deadline.expired():
                return False
            return is_retryable(error)

        if self.retry is not None:
            return self.retry.call(
                attempt,
                classify=classify,
                breaker=self.breaker,
                key=(self.name, stable_digest(prompt), repeat),
            )
        if self.breaker is not None:
            return self.breaker.call(attempt)
        return attempt()


def simulated_backends(
    profile,
    truth,
    task_number: int,
    *,
    n_backends: int = 1,
    seed: int = 0,
    latency_s: float = 0.0,
    latency_jitter: float = 0.2,
    fault_plan_text: Optional[str] = None,
    fault_seed: int = 0,
    retry: Optional[RetryPolicy] = None,
    rate: Optional[float] = None,
    burst: float = 8.0,
    clock: Optional[Clock] = None,
) -> List["DeliveryBackend"]:
    """N interchangeable simulated replicas of one behaviour profile.

    Every replica shares ``(profile, truth, task, seed)``, so each answers
    any ``(prompt, repeat)`` identically — routing and hedging cannot change
    the table.  Faults (when ``fault_plan_text`` is set) and latency jitter
    are seeded per backend, so each replica misbehaves on its own schedule
    while the underlying completions stay shared.
    """
    from repro.llm.simulated import SimulatedChatModel
    from repro.resilience.faults import FaultPlan, FaultyClient

    if n_backends < 1:
        raise ValueError("n_backends must be >= 1")
    backends: List[DeliveryBackend] = []
    for index in range(n_backends):
        client: ChatClient = SimulatedChatModel(
            profile, truth, task_number, seed=seed
        )
        if fault_plan_text:
            plan = FaultPlan.parse(fault_plan_text, seed=fault_seed + index)
            client = FaultyClient(client, plan)
        if latency_s > 0:
            client = LatencyClient(
                client,
                latency_s,
                jitter=latency_jitter,
                seed=seed + index,
                clock=clock,
            )
        bucket = (
            TokenBucket(rate, burst=burst, clock=clock) if rate else None
        )
        backends.append(
            DeliveryBackend(
                f"{profile.name}-{index}",
                client,
                retry=retry,
                bucket=bucket,
                clock=clock,
            )
        )
    return backends


__all__ = ["DeliveryBackend", "LatencyClient", "simulated_backends"]
