"""The concurrent delivery engine: dispatch, hedge, degrade, cache.

:class:`DeliveryEngine` routes completions over N
:class:`~repro.delivery.backends.DeliveryBackend` replicas:

* :meth:`run` fans a batch of :class:`DeliveryRequest`\\ s out over a thread
  pool (``jobs`` workers), invoking a callback per finished delivery so the
  caller journals progress from any thread;
* a straggler is *hedged*: once the primary backend's attempt outlives a
  seeded threshold, the same request is re-issued to the next healthy
  backend and the first typed success wins — the loser is discarded, and
  the delivery is counted exactly once;
* failures degrade into **typed outcomes** (``failed``, ``deadline``,
  ``shed``) rather than exceptions, feeding the ICL loop's existing
  ``failed`` accounting and the resume journal;
* successful completions are written to an optional
  :class:`~repro.delivery.cache.ResponseCache`; a warm rerun serves every
  delivery from the cache and rebuilds nothing.

Concurrency cannot change results: backends answer through
``complete_indexed(prompt, repeat)`` and replicas are interchangeable, so
the outcome map is a pure function of the request set.  The ``--jobs 8``
table is byte-identical to the sequential one.

Wall-clock calls are forbidden here by statcheck RES002 — every time read
and sleep goes through the injected :class:`~repro.resilience.retry.Clock`
(the blocking shell around futures uses bounded ``wait``, not sleeps).
"""

from __future__ import annotations

import threading
from concurrent import futures
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.delivery.backends import DeliveryBackend
from repro.delivery.cache import ResponseCache
from repro.delivery.deadline import DeadlineBudget, DeadlineExceeded
from repro.llm.client import ChatClientError
from repro.obs.trace import get_tracer, span
from repro.resilience.retry import CircuitOpenError, RetryError
from repro.utils.rng import derive_rng, stable_digest

#: Typed delivery statuses.
OK, FAILED, DEADLINE, SHED = "ok", "failed", "deadline", "shed"


@dataclass(frozen=True)
class DeliveryConfig:
    """Engine knobs (all optional protections default off)."""

    #: Worker threads draining the request queue.
    jobs: int = 1
    #: Re-issue a straggling delivery after this many seconds (None = never).
    hedge_s: Optional[float] = None
    #: Seeded jitter fraction applied to the hedge threshold per request.
    hedge_jitter: float = 0.2
    #: Per-request deadline budget in seconds (None = unlimited).
    deadline_s: Optional[float] = None
    #: Seed for the deterministic hedge-threshold jitter.
    seed: int = 0

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.hedge_s is not None and self.hedge_s < 0:
            raise ValueError("hedge_s must be >= 0")
        if not 0.0 <= self.hedge_jitter < 1.0:
            raise ValueError("hedge_jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


@dataclass(frozen=True)
class DeliveryRequest:
    """One completion to deliver: a keyed ``(prompt, repeat)`` pair."""

    key: str
    prompt: str
    repeat: int = 0
    #: Stable per-run position; drives backend rotation and hedge jitter.
    index: int = 0


@dataclass(frozen=True)
class DeliveryOutcome:
    """The typed result of one delivery."""

    key: str
    status: str  # ok | failed | deadline | shed
    text: Optional[str] = None
    backend: Optional[str] = None
    hedged: bool = False
    cache_hit: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass(frozen=True)
class DeliveryReport:
    """What one :meth:`DeliveryEngine.run` accomplished."""

    outcomes: Dict[str, DeliveryOutcome]
    #: Fresh (non-cached) deliveries attempted, successful or not.
    delivered: int = 0
    cache_hits: int = 0
    #: Requests never started because the delivery budget ran out.
    skipped: int = 0
    counters: Dict[str, int] = field(default_factory=dict)


class DeliveryError(RuntimeError):
    """A single delivery did not produce a completion (typed outcome)."""

    #: The outcome already absorbed the retry schedule; don't re-retry.
    retryable = False

    def __init__(self, outcome: DeliveryOutcome):
        super().__init__(
            f"delivery {outcome.key!r} ended {outcome.status}: "
            f"{outcome.error or 'no completion'}"
        )
        self.outcome = outcome


class _Budget:
    """Thread-safe fresh-delivery budget (the ``--max-deliveries`` kill)."""

    def __init__(self, limit: Optional[int]):
        self._lock = threading.Lock()
        self._left = limit

    def reserve(self) -> bool:
        if self._left is None:
            return True
        with self._lock:
            if self._left <= 0:
                return False
            self._left -= 1
            return True


class DeliveryEngine:
    """Dispatch completions over backends with hedging and degradation."""

    def __init__(
        self,
        backends: Sequence[DeliveryBackend],
        config: Optional[DeliveryConfig] = None,
        cache: Optional[ResponseCache] = None,
        model: Optional[str] = None,
    ):
        backends = list(backends)
        if not backends:
            raise ValueError("the engine needs at least one backend")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"backend names must be unique, got {names}")
        self.backends: List[DeliveryBackend] = backends
        self.config = config or DeliveryConfig()
        self.cache = cache
        #: Cache identity; replicas of one model share cache entries.
        self.model = model or backends[0].client.name
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._attempt_pool: Optional[futures.ThreadPoolExecutor] = None

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        get_tracer().count(f"delivery.{name}", amount)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> Dict[str, int]:
        """Snapshot of the engine's own delivery counters."""
        with self._lock:
            return dict(self._counters)

    # -- routing and hedging policy (pure) -----------------------------------

    def _order(self, index: int) -> List[DeliveryBackend]:
        """Healthy backends, rotated by request index for even spread."""
        healthy = [backend for backend in self.backends if backend.healthy()]
        if not healthy:
            return []
        start = index % len(healthy)
        return healthy[start:] + healthy[:start]

    def hedge_delay_s(self, index: int) -> Optional[float]:
        """The straggler threshold for request ``index`` (seeded jitter)."""
        hedge_s = self.config.hedge_s
        if hedge_s is None:
            return None
        if self.config.hedge_jitter:
            rng = derive_rng(self.config.seed, "delivery-hedge", index)
            hedge_s *= 1.0 + self.config.hedge_jitter * (2.0 * rng.random() - 1.0)
        return hedge_s

    # -- single delivery -----------------------------------------------------

    def complete(self, prompt: str, repeat: int = 0) -> str:
        """Deliver one prompt; raises :class:`DeliveryError` unless ``ok``.

        The serving path (``ICLParadigm`` behind an engine) uses this: one
        request, key derived from content, index pinned to 0 so routing and
        hedge jitter are pure functions of the prompt.
        """
        request = DeliveryRequest(
            key=stable_digest("delivery-single", stable_digest(prompt), repeat),
            prompt=prompt,
            repeat=repeat,
            index=0,
        )
        outcome = self.deliver(request)
        if not outcome.ok:
            raise DeliveryError(outcome)
        return outcome.text

    def deliver(self, request: DeliveryRequest) -> DeliveryOutcome:
        """Deliver one request end to end: cache, route, hedge, degrade."""
        cached = self._from_cache(request)
        if cached is not None:
            return cached
        return self._deliver_fresh(request)

    def _from_cache(self, request: DeliveryRequest) -> Optional[DeliveryOutcome]:
        if self.cache is None:
            return None
        text = self.cache.get(self.model, request.prompt, request.repeat)
        if text is None:
            return None
        self._count("cache_hit")
        return DeliveryOutcome(
            key=request.key, status=OK, text=text, cache_hit=True
        )

    def _deliver_fresh(self, request: DeliveryRequest) -> DeliveryOutcome:
        self._count("deliveries")
        deadline = (
            DeadlineBudget(self.config.deadline_s, self.backends[0].clock)
            if self.config.deadline_s is not None
            else None
        )
        order = self._order(request.index)
        if not order:
            self._count("shed")
            return DeliveryOutcome(
                key=request.key,
                status=SHED,
                error="no healthy backend (all circuit breakers open)",
            )
        try:
            hedge_delay = self.hedge_delay_s(request.index)
            if hedge_delay is None or len(order) < 2:
                text = order[0].deliver(request.prompt, request.repeat, deadline)
                backend_name, hedged = order[0].name, False
            else:
                text, backend_name, hedged = self._deliver_hedged(
                    request, order[0], order[1], hedge_delay, deadline
                )
        except DeadlineExceeded as error:
            self._count("deadline")
            return DeliveryOutcome(
                key=request.key, status=DEADLINE, error=str(error)
            )
        except CircuitOpenError as error:
            self._count("shed")
            return DeliveryOutcome(key=request.key, status=SHED, error=str(error))
        except (ChatClientError, RetryError) as error:  # statcheck: ignore[RES001] - _count records delivery.failed
            self._count("failed")
            return DeliveryOutcome(
                key=request.key, status=FAILED, error=str(error)
            )
        if self.cache is not None:
            self.cache.put(self.model, request.prompt, request.repeat, text)
        self._count("completions")
        return DeliveryOutcome(
            key=request.key,
            status=OK,
            text=text,
            backend=backend_name,
            hedged=hedged,
        )

    def _deliver_hedged(
        self,
        request: DeliveryRequest,
        primary: DeliveryBackend,
        secondary: DeliveryBackend,
        hedge_delay: float,
        deadline: Optional[DeadlineBudget],
    ) -> Tuple[str, str, bool]:
        """Primary attempt, then a hedge once the threshold elapses.

        The first successful attempt wins and the loser is discarded — its
        eventual result (or error) is never recorded anywhere, so metrics
        count this delivery exactly once.  When every issued attempt fails,
        the last error propagates for :meth:`_deliver_fresh` to type.
        """
        pool = self._hedge_pool()
        pending: Dict[futures.Future, str] = {
            pool.submit(
                primary.deliver, request.prompt, request.repeat, deadline
            ): primary.name
        }
        hedged = False
        last_error: Optional[BaseException] = None
        timeout: Optional[float] = hedge_delay
        while pending:
            done, _ = futures.wait(
                list(pending), timeout=timeout, return_when=futures.FIRST_COMPLETED
            )
            if not done:
                if not hedged:
                    # The primary outlived the straggler threshold: hedge.
                    hedged = True
                    self._count("hedged")
                    pending[
                        pool.submit(
                            secondary.deliver,
                            request.prompt,
                            request.repeat,
                            deadline,
                        )
                    ] = secondary.name
                    timeout = None
                continue
            for future in done:
                name = pending.pop(future)
                try:
                    return future.result(), name, hedged
                except (  # statcheck: ignore[RES001] - losers are discarded by design; re-raised below when all fail
                    ChatClientError,
                    RetryError,
                    CircuitOpenError,
                    DeadlineExceeded,
                ) as error:
                    last_error = error
        assert last_error is not None
        raise last_error

    def _hedge_pool(self) -> futures.ThreadPoolExecutor:
        with self._lock:
            if self._attempt_pool is None:
                self._attempt_pool = futures.ThreadPoolExecutor(
                    max_workers=max(2, 2 * self.config.jobs),
                    thread_name_prefix="delivery-attempt",
                )
            return self._attempt_pool

    # -- batch dispatch ------------------------------------------------------

    def run(
        self,
        requests: Iterable[DeliveryRequest],
        on_outcome: Optional[
            Callable[[DeliveryRequest, DeliveryOutcome], None]
        ] = None,
        max_deliveries: Optional[int] = None,
    ) -> DeliveryReport:
        """Deliver a batch over the worker pool; returns a full report.

        ``on_outcome`` fires once per finished delivery *from the worker
        thread* — the ICL loop journals there, so a kill loses at most the
        deliveries in flight.  ``max_deliveries`` bounds *fresh* deliveries
        (cache hits are free, mirroring resumed journal entries); requests
        beyond the budget are reported as ``skipped`` and the caller raises
        its :class:`~repro.resilience.checkpoint.CheckpointAbort`.
        """
        requests = list(requests)
        budget = _Budget(max_deliveries)
        outcomes: Dict[str, DeliveryOutcome] = {}
        tallies = {"delivered": 0, "cache_hits": 0, "skipped": 0}
        tally_lock = threading.Lock()

        def work(request: DeliveryRequest) -> None:
            cached = self._from_cache(request)
            if cached is not None:
                outcome = cached
                with tally_lock:
                    tallies["cache_hits"] += 1
                    outcomes[request.key] = outcome
            else:
                if not budget.reserve():
                    with tally_lock:
                        tallies["skipped"] += 1
                    return
                outcome = self._deliver_fresh(request)
                with tally_lock:
                    tallies["delivered"] += 1
                    outcomes[request.key] = outcome
            if on_outcome is not None:
                on_outcome(request, outcome)

        with span(
            "delivery.run",
            jobs=self.config.jobs,
            backends=len(self.backends),
            requests=len(requests),
        ) as sp:
            if self.config.jobs == 1:
                for request in requests:
                    work(request)
            else:
                with futures.ThreadPoolExecutor(
                    max_workers=self.config.jobs,
                    thread_name_prefix="delivery-worker",
                ) as pool:
                    pending = [pool.submit(work, request) for request in requests]
                    for future in futures.as_completed(pending):
                        future.result()  # propagate unexpected worker crashes
            sp.annotate(
                delivered=tallies["delivered"],
                cache_hits=tallies["cache_hits"],
                skipped=tallies["skipped"],
            )
        return DeliveryReport(
            outcomes=outcomes,
            delivered=tallies["delivered"],
            cache_hits=tallies["cache_hits"],
            skipped=tallies["skipped"],
            counters=self.counters(),
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the hedge pool (idempotent)."""
        with self._lock:
            pool, self._attempt_pool = self._attempt_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "DeliveryEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


__all__ = [
    "DeliveryConfig",
    "DeliveryRequest",
    "DeliveryOutcome",
    "DeliveryReport",
    "DeliveryError",
    "DeliveryEngine",
]
