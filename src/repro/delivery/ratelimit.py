"""Per-backend token-bucket rate limiting.

A real chat endpoint enforces requests-per-minute quotas; hammering past
them converts a healthy backend into a wall of 429s.  The
:class:`TokenBucket` shapes traffic *before* it leaves: a bucket holds up to
``burst`` tokens, refills at ``rate`` tokens/second, and every delivery
takes one.  When the bucket is empty the caller either backs off
(:meth:`next_ready_s` says how long) or blocks (:meth:`acquire`).

Like the micro-batcher's coalescing policy, the refill arithmetic is a pure
function of the injectable :class:`~repro.resilience.retry.Clock`, so tests
drive the policy on a virtual clock deterministically; only
:meth:`acquire`'s wait goes through ``clock.sleep``.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.resilience.retry import Clock, SYSTEM_CLOCK


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at ``rate``/s.

    ``rate=None`` (or ``0``) disables limiting — every acquire succeeds
    immediately — so an unlimited backend costs no branching at call sites.
    Thread-safe: concurrent deliveries draw from one shared bucket.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 1.0,
        clock: Optional[Clock] = None,
    ):
        if rate is not None and rate < 0:
            raise ValueError("rate must be >= 0 (or None to disable)")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = None if not rate else float(rate)
        self.burst = float(burst)
        self.clock = clock or SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._tokens = self.burst  # start full: the first burst is free
        self._updated = self.clock.monotonic()

    def _refill_locked(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def available(self) -> float:
        """Tokens available right now (after refill)."""
        with self._lock:
            self._refill_locked(self.clock.monotonic())
            return self._tokens if self.rate is not None else self.burst

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            self._refill_locked(self.clock.monotonic())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def next_ready_s(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when they are now)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            self._refill_locked(self.clock.monotonic())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self.rate

    def acquire(
        self, tokens: float = 1.0, max_wait_s: Optional[float] = None
    ) -> bool:
        """Block (via ``clock.sleep``) until ``tokens`` are taken.

        Returns ``False`` without taking anything when the wait would
        exceed ``max_wait_s`` — the caller's deadline budget decides what
        shedding means.
        """
        waited = 0.0
        while True:
            if self.try_acquire(tokens):
                return True
            wait = self.next_ready_s(tokens)
            if max_wait_s is not None and waited + wait > max_wait_s:
                return False
            self.clock.sleep(wait)
            waited += wait


__all__ = ["TokenBucket"]
