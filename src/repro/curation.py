"""High-level curation API — the workflow the paper motivates.

An ontology curator receives candidate triples (proposed additions) and
must accept, reject, or manually review each.  :class:`CurationAssistant`
wraps any probability-producing paradigm into that triage loop: candidates
with confident scores are decided automatically; the uncertain band goes to
a human.  This is the "automated knowledge curation" application the paper
benchmarks its three paradigms for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple


class Decision(enum.Enum):
    """Triage outcome for one candidate triple."""

    ACCEPT = "accept"
    REJECT = "reject"
    REVIEW = "review"


@dataclass(frozen=True)
class TriageResult:
    """One candidate's triage outcome."""

    triple: LabeledTriple
    probability: float
    decision: Decision


@dataclass
class TriageSummary:
    """Aggregate outcome of a triage batch."""

    results: List[TriageResult]

    def by_decision(self, decision: Decision) -> List[TriageResult]:
        return [r for r in self.results if r.decision is decision]

    @property
    def automation_rate(self) -> float:
        """Fraction of candidates decided without human review."""
        automated = len(self.results) - len(self.by_decision(Decision.REVIEW))
        return automated / len(self.results) if self.results else 0.0

    def automated_error_rate(self) -> float:
        """Error rate among automated decisions (needs gold labels)."""
        errors = 0
        automated = 0
        for result in self.results:
            if result.decision is Decision.REVIEW:
                continue
            automated += 1
            predicted = 1 if result.decision is Decision.ACCEPT else 0
            errors += predicted != result.triple.label
        return errors / automated if automated else 0.0

    def counts(self) -> dict:
        return {
            decision.value: len(self.by_decision(decision))
            for decision in Decision
        }


class CurationAssistant:
    """Triage candidate triples with a trained scoring model.

    ``scorer`` is anything with ``predict_proba(triples) -> array`` over
    labelled triples (all three paradigm wrappers and the fine-tuned
    classifier qualify).  The review band defaults to probabilities in
    (0.35, 0.65); widen it to trade automation rate for error rate.
    """

    def __init__(
        self,
        scorer,
        reject_below: float = 0.35,
        accept_above: float = 0.65,
    ):
        if not hasattr(scorer, "predict_proba"):
            raise TypeError("scorer must expose predict_proba(triples)")
        if not 0.0 <= reject_below <= accept_above <= 1.0:
            raise ValueError(
                "need 0 <= reject_below <= accept_above <= 1, got "
                f"({reject_below}, {accept_above})"
            )
        self.scorer = scorer
        self.reject_below = reject_below
        self.accept_above = accept_above

    def triage(self, candidates: Sequence[LabeledTriple]) -> TriageSummary:
        """Score and bucket a batch of candidate triples."""
        if not candidates:
            raise ValueError("no candidates to triage")
        probabilities = np.asarray(self.scorer.predict_proba(list(candidates)))
        results = []
        for triple, probability in zip(candidates, probabilities):
            if probability >= self.accept_above:
                decision = Decision.ACCEPT
            elif probability <= self.reject_below:
                decision = Decision.REJECT
            else:
                decision = Decision.REVIEW
            results.append(
                TriageResult(
                    triple=triple,
                    probability=float(probability),
                    decision=decision,
                )
            )
        return TriageSummary(results=results)

    def calibrate_band(
        self,
        validation: Sequence[LabeledTriple],
        max_error_rate: float = 0.05,
        grid: int = 20,
    ) -> Tuple[float, float]:
        """Choose the widest symmetric automation band whose automated
        error rate on ``validation`` stays within ``max_error_rate``.

        Returns the chosen ``(reject_below, accept_above)`` and installs it
        on the assistant.  Falls back to the narrowest candidate band (most
        conservative) when no band meets the target.
        """
        if not 0.0 < max_error_rate < 1.0:
            raise ValueError("max_error_rate must be in (0, 1)")
        best: Optional[Tuple[float, float]] = None
        # widest band first: margin 0 means automate everything
        for margin in np.linspace(0.0, 0.49, grid):
            self.reject_below = 0.5 - margin
            self.accept_above = 0.5 + margin
            summary = self.triage(validation)
            if summary.automated_error_rate() <= max_error_rate:
                best = (self.reject_below, self.accept_above)
                break
        if best is None:
            best = (0.5 - 0.49, 0.5 + 0.49)
        self.reject_below, self.accept_above = best
        return best


__all__ = [
    "Decision",
    "TriageResult",
    "TriageSummary",
    "CurationAssistant",
]
