"""The ICL experiment protocol (paper Sections 2.4 and 3.2, Table 5).

For each task: 100 query triples (50 positive, 50 negative) of relationship
type ``is_a`` and fewer than 60 tokens are drawn; each query is wrapped in a
few-shot prompt with three positive and three negative example triples from
the training data; each prompt is delivered five times.  Reported metrics:

* **overall accuracy** per delivery pass, counting unclassified responses
  (no parsable True/False, or an explicit "I don't know") as errors —
  mean (SD) over the five passes;
* **precision / recall / F1** per pass over the *classified* responses only;
* **number unclassified** — total over all deliveries, with percentage;
* **Fleiss' kappa** across the five deliveries of each prompt.

The delivery loop is resilient: transient client failures are retried per an
optional :class:`~repro.resilience.retry.RetryPolicy`; a permanently failed
or malformed delivery degrades into an explicit ``failed`` outcome (scored
as unclassified, tallied in ``ICLResult.n_failed``) instead of crashing the
table; and an optional journal checkpoints every completed delivery so a
killed run resumes where it stopped (recorded in the run manifest).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.datasets import Dataset
from repro.core.triples import LabeledTriple
from repro.llm.client import ChatClient, ChatClientError
from repro.llm.prompts import PromptVariant, render_prompt
from repro.metrics.agreement import fleiss_kappa
from repro.obs.manifest import set_context
from repro.obs.progress import StageProgress
from repro.obs.trace import get_tracer, span
from repro.resilience.checkpoint import CheckpointAbort, Journal
from repro.resilience.retry import CircuitOpenError, RetryError, RetryPolicy
from repro.text.tokenizer import ChemTokenizer
from repro.utils.rng import SeedLike, derive_rng

if TYPE_CHECKING:  # imported lazily at run time to keep the module light
    from repro.delivery.engine import DeliveryEngine

#: Parse outcomes.
TRUE, FALSE, UNCLASSIFIED = "true", "false", "unclassified"

#: Delivery outcome for a permanently failed completion (scored unclassified).
FAILED = "failed"

_TRUE_RE = re.compile(r"\btrue\b", re.IGNORECASE)
_FALSE_RE = re.compile(r"\bfalse\b", re.IGNORECASE)
_ABSTAIN_RE = re.compile(r"\bi\s+(?:don'?t|do\s+not)\s+know\b", re.IGNORECASE)


def parse_response(text: str) -> str:
    """Map a free-text completion to ``true`` / ``false`` / ``unclassified``.

    Explicit abstentions and responses mentioning both or neither label are
    unclassified, as in the paper's evaluation.
    """
    if _ABSTAIN_RE.search(text):
        return UNCLASSIFIED
    has_true = bool(_TRUE_RE.search(text))
    has_false = bool(_FALSE_RE.search(text))
    if has_true == has_false:
        return UNCLASSIFIED
    return TRUE if has_true else FALSE


@dataclass(frozen=True)
class ICLConfig:
    """Protocol parameters (defaults reproduce the paper's setup)."""

    n_positive_queries: int = 50
    n_negative_queries: int = 50
    n_repeats: int = 5
    n_examples_per_class: int = 3
    relation_name: Optional[str] = "is_a"
    max_query_tokens: int = 60
    seed: int = 0

    def __post_init__(self):
        if self.n_positive_queries < 1 or self.n_negative_queries < 1:
            raise ValueError("need at least one query per class")
        if self.n_repeats < 2:
            raise ValueError("n_repeats must be >= 2 for consistency metrics")
        if self.n_examples_per_class < 1:
            raise ValueError("n_examples_per_class must be >= 1")


@dataclass(frozen=True)
class ICLResult:
    """Aggregated outcome of one (model, variant, task) experiment."""

    model_name: str
    variant: PromptVariant
    accuracy_mean: float
    accuracy_sd: float
    n_unclassified: int
    unclassified_percent: float
    precision_mean: float
    precision_sd: float
    recall_mean: float
    recall_sd: float
    f1_mean: float
    f1_sd: float
    kappa: float
    #: Deliveries that permanently failed (after retries) and degraded into
    #: the unclassified bucket, and deliveries served from a resume journal.
    n_failed: int = 0
    n_resumed: int = 0

    def as_row(self) -> dict:
        return {
            "model": self.model_name,
            "variant": self.variant.value,
            "accuracy": round(self.accuracy_mean, 4),
            "accuracy_sd": round(self.accuracy_sd, 4),
            "unclassified": self.n_unclassified,
            "unclassified_pct": round(self.unclassified_percent, 1),
            "precision": round(self.precision_mean, 4),
            "recall": round(self.recall_mean, 4),
            "f1": round(self.f1_mean, 4),
            "kappa": round(self.kappa, 2),
            "failed": self.n_failed,
        }


def build_icl_queries(
    dataset: Dataset, config: Optional[ICLConfig] = None
) -> List[LabeledTriple]:
    """Draw the query pool: 50+50 short ``is_a`` triples (Section 3.2)."""
    config = config or ICLConfig()
    tokenizer = ChemTokenizer()

    def eligible(triple: LabeledTriple) -> bool:
        if (
            config.relation_name is not None
            and triple.relation.name != config.relation_name
        ):
            return False
        return len(tokenizer(triple.as_text())) < config.max_query_tokens

    pool = [t for t in dataset if eligible(t)]
    positives = [t for t in pool if t.label == 1]
    negatives = [t for t in pool if t.label == 0]
    if len(positives) < config.n_positive_queries:
        raise ValueError(
            f"only {len(positives)} eligible positive queries, need "
            f"{config.n_positive_queries}"
        )
    if len(negatives) < config.n_negative_queries:
        raise ValueError(
            f"only {len(negatives)} eligible negative queries, need "
            f"{config.n_negative_queries}"
        )
    rng = derive_rng(config.seed, "icl-queries", dataset.name)
    chosen_pos = [positives[int(i)] for i in
                  rng.choice(len(positives), config.n_positive_queries, replace=False)]
    chosen_neg = [negatives[int(i)] for i in
                  rng.choice(len(negatives), config.n_negative_queries, replace=False)]
    combined = chosen_pos + chosen_neg
    order = rng.permutation(len(combined))
    return [combined[int(i)] for i in order]


def _draw_examples(
    pool_pos: Sequence[LabeledTriple],
    pool_neg: Sequence[LabeledTriple],
    query: LabeledTriple,
    k: int,
    rng: np.random.Generator,
) -> Tuple[List[LabeledTriple], List[LabeledTriple]]:
    """k positive and k negative example triples, excluding the query."""

    def draw(pool: Sequence[LabeledTriple]) -> List[LabeledTriple]:
        chosen: List[LabeledTriple] = []
        seen = {query.key()}
        attempts = 0
        while len(chosen) < k:
            attempts += 1
            if attempts > 100 * k:
                raise ValueError("example pool too small to avoid duplicates")
            candidate = pool[int(rng.integers(0, len(pool)))]
            if candidate.key() in seen:
                continue
            seen.add(candidate.key())
            chosen.append(candidate)
        return chosen

    return draw(pool_pos), draw(pool_neg)


def _positive_metrics(gold: List[int], predicted: List[int]) -> Tuple[float, float, float]:
    tp = sum(1 for g, p in zip(gold, predicted) if g == 1 and p == 1)
    fp = sum(1 for g, p in zip(gold, predicted) if g == 0 and p == 1)
    fn = sum(1 for g, p in zip(gold, predicted) if g == 1 and p == 0)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return precision, recall, f1


def _deliver(client: ChatClient, prompt: str, retry: Optional[RetryPolicy]) -> str:
    """One delivery -> parse outcome; client failures degrade to ``failed``."""
    try:
        if retry is None:
            text = client.complete(prompt)
        else:
            text = retry.call(client.complete, prompt)
    except (ChatClientError, RetryError, CircuitOpenError):
        get_tracer().count("icl.client_failures")
        return FAILED
    return parse_response(text)


def _run_with_engine(
    engine: "DeliveryEngine",
    prompts: Sequence[str],
    completed: Dict[str, object],
    config: ICLConfig,
    journal_obj: Optional[Journal],
    max_deliveries: Optional[int],
    sp,
    progress,
) -> Tuple[List[List[str]], int, int, int]:
    """The concurrent delivery path: fan out, journal per worker, merge.

    Returns ``(responses, n_failed, n_resumed, delivered)`` with exactly the
    same semantics as the sequential loop; requests the engine skipped for
    the ``max_deliveries`` budget raise
    :class:`~repro.resilience.checkpoint.CheckpointAbort` after in-flight
    deliveries drained (and were journaled).
    """
    from repro.delivery.engine import DeliveryOutcome, DeliveryRequest

    n_queries = len(prompts)
    pending: List[DeliveryRequest] = []
    n_resumed = 0
    for repeat in range(config.n_repeats):
        for q_index in range(n_queries):
            key = f"{repeat}:{q_index}"
            if key in completed:
                n_resumed += 1
            else:
                pending.append(
                    DeliveryRequest(
                        key=key,
                        prompt=prompts[q_index],
                        repeat=repeat,
                        index=repeat * n_queries + q_index,
                    )
                )
    if n_resumed:
        sp.incr("deliveries_resumed", n_resumed)

    def value_of(outcome: DeliveryOutcome) -> str:
        return parse_response(outcome.text) if outcome.ok else FAILED

    def on_outcome(request: DeliveryRequest, outcome: DeliveryOutcome) -> None:
        # Runs on the engine's worker threads: Journal.record is
        # thread-safe and progress display tolerates racy increments.
        if journal_obj is not None:
            journal_obj.record(request.key, value_of(outcome))
        progress.advance(1)

    report = engine.run(
        pending, on_outcome=on_outcome, max_deliveries=max_deliveries
    )
    if report.skipped:
        raise CheckpointAbort(
            f"delivery budget of {max_deliveries} reached "
            f"({n_resumed} resumed, {report.delivered} delivered, "
            f"{report.skipped} skipped)",
            delivered=report.delivered,
            journal_path=journal_obj.path if journal_obj else None,
        )
    sp.incr("deliveries", report.delivered + report.cache_hits)

    responses: List[List[str]] = []
    n_failed = 0
    for repeat in range(config.n_repeats):
        passes: List[str] = []
        for q_index in range(n_queries):
            key = f"{repeat}:{q_index}"
            if key in completed:
                value = completed[key]
            else:
                value = value_of(report.outcomes[key])
            if value == FAILED:
                n_failed += 1
                sp.incr("deliveries_failed")
                value = UNCLASSIFIED
            passes.append(value)
        responses.append(passes)
    return responses, n_failed, n_resumed, report.delivered


def run_icl_experiment(
    client: ChatClient,
    example_pool: Sequence[LabeledTriple],
    queries: Sequence[LabeledTriple],
    variant: PromptVariant = PromptVariant.BASE,
    config: Optional[ICLConfig] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[Journal, str, Path]] = None,
    max_deliveries: Optional[int] = None,
    engine: Optional["DeliveryEngine"] = None,
) -> ICLResult:
    """Deliver every prompt ``n_repeats`` times and aggregate Table 5 metrics.

    ``retry`` retries transient client failures per delivery; a delivery
    that still fails (or raises a non-retryable
    :class:`~repro.llm.client.ChatClientError`) is scored as unclassified
    and counted in ``ICLResult.n_failed`` instead of aborting the run.

    ``journal`` (a path or :class:`~repro.resilience.checkpoint.Journal`)
    checkpoints every completed delivery; on restart, journaled deliveries
    are skipped (the client is told via ``skip_delivery`` so per-prompt
    repeat tracking stays aligned) and the resume is recorded in the run
    manifest.  ``max_deliveries`` stops the run with
    :class:`~repro.resilience.checkpoint.CheckpointAbort` after that many
    *new* deliveries — the controlled kill used to exercise resume.

    ``engine`` (a :class:`~repro.delivery.engine.DeliveryEngine`) routes the
    deliveries through the concurrent dispatch path instead of the
    sequential loop: prompts fan out over the engine's worker pool and
    backends, each finished delivery is journaled from its worker thread,
    and typed failures (``failed`` / ``deadline`` / ``shed``) degrade into
    the same ``failed`` outcome the sequential path records.  Because
    backend completions are pure in ``(prompt, repeat)``, the resulting
    table is byte-identical to the sequential one.  ``retry`` is ignored
    with an engine — each backend carries its own policy.
    """
    config = config or ICLConfig()
    if not queries:
        raise ValueError("no queries supplied")
    pool_pos = [t for t in example_pool if t.label == 1]
    pool_neg = [t for t in example_pool if t.label == 0]
    if len(pool_pos) <= config.n_examples_per_class or (
        len(pool_neg) <= config.n_examples_per_class
    ):
        raise ValueError("example pool too small for the few-shot budget")

    prompts: List[str] = []
    for index, query in enumerate(queries):
        rng = derive_rng(config.seed, "icl-examples", index)
        pos_examples, neg_examples = _draw_examples(
            pool_pos, pool_neg, query, config.n_examples_per_class, rng
        )
        prompts.append(
            render_prompt(
                pos_examples,
                neg_examples,
                query,
                variant=variant,
                seed=derive_rng(config.seed, "icl-order", index),
            )
        )

    journal_obj: Optional[Journal] = None
    owns_journal = False
    completed: Dict[str, object] = {}
    if journal is not None:
        journal_obj = journal if isinstance(journal, Journal) else Journal(journal)
        owns_journal = journal_obj is not journal
        completed = journal_obj.load()
        meta = {
            "model": client.name,
            "variant": variant.value,
            "queries": len(queries),
            "repeats": config.n_repeats,
        }
        stored_meta = completed.pop("__meta__", None)
        if stored_meta is not None and stored_meta != meta:
            raise ValueError(
                f"journal {journal_obj.path} belongs to a different experiment: "
                f"{stored_meta!r} != {meta!r}"
            )
        if stored_meta is None:
            journal_obj.record("__meta__", meta)
        if completed:
            set_context(
                resumed=True,
                resume_journal=str(journal_obj.path),
                resumed_deliveries=len(completed),
            )
            get_tracer().count("icl.resumes")

    gold = [query.label for query in queries]
    # responses[r][q] in {true, false, unclassified}
    responses: List[List[str]] = []
    n_failed = 0
    n_resumed = 0
    delivered = 0
    try:
        with span(
            "icl.experiment",
            model=client.name,
            variant=variant.value,
            queries=len(queries),
            repeats=config.n_repeats,
        ) as sp, StageProgress("icl.experiment", unit="deliveries") as progress:
            if completed:
                sp.annotate(resumed=True)
            if engine is not None:
                responses, n_failed, n_resumed, delivered = _run_with_engine(
                    engine,
                    prompts,
                    completed,
                    config,
                    journal_obj,
                    max_deliveries,
                    sp,
                    progress,
                )
            else:
                for repeat in range(config.n_repeats):
                    passes = []
                    for q_index, prompt in enumerate(prompts):
                        key = f"{repeat}:{q_index}"
                        outcome = completed.get(key)
                        if outcome is not None:
                            client.skip_delivery(prompt)
                            n_resumed += 1
                            sp.incr("deliveries_resumed")
                        else:
                            if (
                                max_deliveries is not None
                                and delivered >= max_deliveries
                            ):
                                raise CheckpointAbort(
                                    f"delivery budget of {max_deliveries} "
                                    f"reached ({n_resumed} resumed, "
                                    f"{delivered} delivered)",
                                    delivered=delivered,
                                    journal_path=(
                                        journal_obj.path if journal_obj else None
                                    ),
                                )
                            outcome = _deliver(client, prompt, retry)
                            delivered += 1
                            if journal_obj is not None:
                                journal_obj.record(key, outcome)
                            sp.incr("deliveries")
                            progress.advance(1)
                        if outcome == FAILED:
                            n_failed += 1
                            sp.incr("deliveries_failed")
                            outcome = UNCLASSIFIED
                        passes.append(outcome)
                    responses.append(passes)
    finally:
        if owns_journal and journal_obj is not None:
            journal_obj.close()

    accuracies, precisions, recalls, f1s = [], [], [], []
    n_unclassified = 0
    for answers in responses:
        correct = 0
        classified_gold: List[int] = []
        classified_pred: List[int] = []
        for answer, label in zip(answers, gold):
            if answer == UNCLASSIFIED:
                n_unclassified += 1
                continue
            predicted = 1 if answer == TRUE else 0
            classified_gold.append(label)
            classified_pred.append(predicted)
            if predicted == label:
                correct += 1
        accuracies.append(correct / len(gold))
        precision, recall, f1 = _positive_metrics(classified_gold, classified_pred)
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)

    ratings = [
        [responses[r][q] for r in range(config.n_repeats)]
        for q in range(len(queries))
    ]
    kappa = fleiss_kappa(ratings)
    total_deliveries = config.n_repeats * len(queries)

    def mean_sd(values: List[float]) -> Tuple[float, float]:
        arr = np.asarray(values)
        return float(arr.mean()), float(arr.std(ddof=1))

    acc_m, acc_s = mean_sd(accuracies)
    pre_m, pre_s = mean_sd(precisions)
    rec_m, rec_s = mean_sd(recalls)
    f1_m, f1_s = mean_sd(f1s)
    return ICLResult(
        model_name=client.name,
        variant=variant,
        accuracy_mean=acc_m,
        accuracy_sd=acc_s,
        n_unclassified=n_unclassified,
        unclassified_percent=100.0 * n_unclassified / total_deliveries,
        precision_mean=pre_m,
        precision_sd=pre_s,
        recall_mean=rec_m,
        recall_sd=rec_s,
        f1_mean=f1_m,
        f1_sd=f1_s,
        kappa=kappa,
        n_failed=n_failed,
        n_resumed=n_resumed,
    )


__all__ = [
    "ICLConfig",
    "ICLResult",
    "parse_response",
    "build_icl_queries",
    "run_icl_experiment",
    "TRUE",
    "FALSE",
    "UNCLASSIFIED",
    "FAILED",
]
