"""Simulated GPT-4 / GPT-3.5 / BioGPT chat models.

OpenAI's APIs and a GPU for BioGPT are unavailable offline, so the ICL
experiments run against behaviour-calibrated simulators.  Each simulator is
a :class:`~repro.llm.client.ChatClient`: it receives only the rendered
prompt text, parses the query triple out of it, consults a ground-truth
table, and produces a *free-text* completion through a behaviour model with
the failure modes the paper analyses:

* per-task knowledge levels (probability of answering correctly for positive
  and negative queries), calibrated to the paper's Table 5 variant-#1 rows;
* **order bias** — with some probability the model copies the label of the
  *last* few-shot example.  Under the blocked Table 1 ordering the last
  example is always negative, which is the mechanism behind BioGPT's
  near-zero recall; the shuffled variant #3 dissolves the effect;
* **informed abstention** — when the prompt permits "I don't know"
  (variant #2), abstention is more likely when the model would have answered
  incorrectly, which raises precision while lowering overall accuracy;
* **invalid responses** — off-task completions that the parser cannot map to
  True/False (frequent for BioGPT);
* **consistency** — repeated deliveries of the same prompt resample the
  behaviour with small probability, producing the Fleiss-kappa spread of
  Table 5.

Everything is deterministic given (profile, seed, prompt, repeat index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.llm.client import ChatClient
from repro.llm.prompts import (
    ABSTAIN_SENTENCE,
    example_order_signature,
    extract_query_text,
)
from repro.utils.rng import stable_hash


@dataclass(frozen=True)
class TaskAbility:
    """Knowledge level on one task: P(correct | positive/negative query)."""

    p_pos: float
    p_neg: float

    def __post_init__(self):
        for value in (self.p_pos, self.p_neg):
            if not 0.0 <= value <= 1.0:
                raise ValueError("ability probabilities must be in [0, 1]")


@dataclass(frozen=True)
class BehaviourProfile:
    """Calibrated behaviour of one simulated LLM."""

    name: str
    abilities: Mapping[int, TaskAbility]
    order_bias: float = 0.0
    invalid_rate: float = 0.0
    abstain_when_wrong: float = 0.0
    abstain_when_right: float = 0.0
    consistency: float = 1.0

    def __post_init__(self):
        for value in (
            self.order_bias,
            self.invalid_rate,
            self.abstain_when_wrong,
            self.abstain_when_right,
            self.consistency,
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError("behaviour probabilities must be in [0, 1]")

    def ability(self, task_number: int) -> TaskAbility:
        try:
            return self.abilities[task_number]
        except KeyError:
            raise KeyError(
                f"profile {self.name!r} has no ability for task {task_number}"
            ) from None


#: Calibrated to Table 5 variant #1 (see module docstring for derivation).
GPT4_PROFILE = BehaviourProfile(
    name="gpt-4",
    abilities={
        1: TaskAbility(p_pos=0.88, p_neg=1.00),
        2: TaskAbility(p_pos=0.80, p_neg=0.79),
        3: TaskAbility(p_pos=0.86, p_neg=0.93),
    },
    order_bias=0.06,
    invalid_rate=0.0,
    abstain_when_wrong=0.40,
    abstain_when_right=0.03,
    consistency=0.985,
)

GPT35_PROFILE = BehaviourProfile(
    name="gpt-3.5-turbo",
    abilities={
        1: TaskAbility(p_pos=0.70, p_neg=0.98),
        2: TaskAbility(p_pos=0.69, p_neg=0.76),
        3: TaskAbility(p_pos=0.62, p_neg=0.76),
    },
    order_bias=0.07,
    invalid_rate=0.0,
    abstain_when_wrong=0.55,
    abstain_when_right=0.08,
    consistency=0.99,
)

#: Extension beyond the paper (its stated future work): an open-source
#: chat model of the Llama-2-70B class, plausibly between GPT-3.5 and
#: BioGPT — weaker chemistry knowledge than the GPT models, mild order
#: bias, occasional off-task completions, decent consistency.
LLAMA2_PROFILE = BehaviourProfile(
    name="llama-2",
    abilities={
        1: TaskAbility(p_pos=0.62, p_neg=0.85),
        2: TaskAbility(p_pos=0.58, p_neg=0.64),
        3: TaskAbility(p_pos=0.55, p_neg=0.70),
    },
    order_bias=0.18,
    invalid_rate=0.05,
    abstain_when_wrong=0.25,
    abstain_when_right=0.05,
    consistency=0.90,
)

BIOGPT_PROFILE = BehaviourProfile(
    name="biogpt",
    abilities={
        1: TaskAbility(p_pos=0.5, p_neg=0.5),
        2: TaskAbility(p_pos=0.5, p_neg=0.5),
        3: TaskAbility(p_pos=0.5, p_neg=0.5),
    },
    order_bias=0.82,
    invalid_rate=0.20,
    abstain_when_wrong=0.05,
    abstain_when_right=0.05,
    consistency=0.35,
)

_TRUE_PHRASINGS = (
    "True",
    "True.",
    "<classification>: True",
    "The triple is True.",
)
_FALSE_PHRASINGS = (
    "False",
    "False.",
    "<classification>: False",
    "The triple is False.",
)
_ABSTAIN_PHRASINGS = (
    "I don't know",
    "I don't know.",
    "I do not know the answer to this one.",
)
_INVALID_PHRASINGS = (
    "The triple describes a chemical relationship between two entities.",
    "is a compound of biological interest that has been studied extensively",
    "classification of chemical entities requires careful consideration of",
    "the answer depends on additional experimental context not provided here",
)


def truth_table(triples: Iterable[LabeledTriple]) -> Dict[str, int]:
    """Ground-truth lookup from rendered triple text to gold label."""
    return {triple.as_text(): triple.label for triple in triples}


class SimulatedChatModel(ChatClient):
    """Offline ChatClient driven by a :class:`BehaviourProfile`.

    ``truth`` maps rendered triple texts (``LabeledTriple.as_text``) to gold
    labels; queries missing from the table are answered by a fair coin,
    modelling out-of-knowledge entities.  Repeat indices are tracked per
    prompt internally, so delivering the same prompt five times exercises the
    consistency behaviour without any API change.
    """

    def __init__(
        self,
        profile: BehaviourProfile,
        truth: Mapping[str, int],
        task_number: int,
        seed: int = 0,
    ):
        self.profile = profile
        self.truth = dict(truth)
        self.ability = profile.ability(task_number)
        self.task_number = task_number
        self.seed = seed
        self._deliveries: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return self.profile.name

    def reset(self):
        """Forget delivery counts (start a fresh repeated-delivery protocol)."""
        self._deliveries.clear()

    def skip_delivery(self, prompt: str) -> None:
        """Advance the repeat index for a delivery served from a checkpoint.

        Keeps a resumed run's consistency behaviour identical to an
        uninterrupted one: the repeat counter must reflect every delivery,
        journaled or live.
        """
        self._deliveries[prompt] = self._deliveries.get(prompt, 0) + 1

    # -- behaviour ----------------------------------------------------------

    def _decide(
        self,
        rng: np.random.Generator,
        label: Optional[int],
        last_example_label: Optional[bool],
        abstain_allowed: bool,
    ) -> str:
        profile = self.profile
        if rng.random() < profile.invalid_rate:
            return "invalid"
        if last_example_label is not None and rng.random() < profile.order_bias:
            answer = 1 if last_example_label else 0
        elif label is None:
            answer = int(rng.random() < 0.5)
        else:
            p_correct = self.ability.p_pos if label == 1 else self.ability.p_neg
            correct = rng.random() < p_correct
            answer = label if correct else 1 - label
        if abstain_allowed:
            wrong = label is not None and answer != label
            p_abstain = (
                profile.abstain_when_wrong if wrong else profile.abstain_when_right
            )
            if rng.random() < p_abstain:
                return "abstain"
        return "true" if answer == 1 else "false"

    def _render(self, decision: str, rng: np.random.Generator) -> str:
        pools = {
            "true": _TRUE_PHRASINGS,
            "false": _FALSE_PHRASINGS,
            "abstain": _ABSTAIN_PHRASINGS,
            "invalid": _INVALID_PHRASINGS,
        }
        pool = pools[decision]
        return pool[int(rng.integers(0, len(pool)))]

    def complete(self, prompt: str) -> str:
        repeat = self._deliveries.get(prompt, 0)
        self._deliveries[prompt] = repeat + 1
        return self.complete_indexed(prompt, repeat)

    def complete_indexed(
        self, prompt: str, repeat: int, *, timeout_s: Optional[float] = None
    ) -> str:
        """The completion for delivery ``repeat`` of ``prompt``.

        Pure in ``(prompt, repeat)`` — no delivery history is consulted or
        mutated — which is what lets the concurrent delivery engine produce
        byte-identical tables whatever the thread schedule.  ``timeout_s``
        is ignored: there is no network to time out.
        """
        query = extract_query_text(prompt)
        label = self.truth.get(query)
        signature = example_order_signature(prompt)
        last_example_label = signature[-1] if signature else None
        abstain_allowed = ABSTAIN_SENTENCE in prompt

        canonical_rng = np.random.default_rng(
            stable_hash("sim-llm", self.profile.name, self.seed, prompt)
        )
        rng = canonical_rng
        if repeat > 0:
            repeat_rng = np.random.default_rng(
                stable_hash(
                    "sim-llm-repeat", self.profile.name, self.seed, prompt, repeat
                )
            )
            if repeat_rng.random() < (1.0 - self.profile.consistency):
                rng = repeat_rng  # resample the whole behaviour this delivery

        decision = self._decide(rng, label, last_example_label, abstain_allowed)
        return self._render(decision, rng)


__all__ = [
    "TaskAbility",
    "BehaviourProfile",
    "SimulatedChatModel",
    "truth_table",
    "GPT4_PROFILE",
    "GPT35_PROFILE",
    "BIOGPT_PROFILE",
    "LLAMA2_PROFILE",
]
