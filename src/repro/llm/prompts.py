"""Few-shot prompt construction (paper Table 1 and Section 2.4).

Three prompt formulations were tested:

* **#1 BASE** — three positive examples, then three negative examples, then
  the query (the Table 1 template verbatim);
* **#2 ABSTAIN** — #1 plus "If you do not know the answer, state 'I don't
  know'", aimed at reducing hallucinations;
* **#3 SHUFFLED** — #1 with positive and negative examples interleaved in
  random order, motivated by BioGPT's tendency to copy the trailing block of
  negative examples.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.utils.rng import SeedLike, derive_rng

INSTRUCTION = "Your task is to classify triples as True or False."
ABSTAIN_SENTENCE = "If you do not know the answer, state 'I don't know'."

TRIPLE_TAG = "<triple>"
CLASSIFICATION_TAG = "<classification>"


class PromptVariant(enum.Enum):
    """The paper's three prompt formulations."""

    BASE = 1
    ABSTAIN = 2
    SHUFFLED = 3


def format_example(triple: LabeledTriple, label: bool) -> str:
    """One few-shot example block."""
    word = "True" if label else "False"
    return (
        f"{TRIPLE_TAG}: {triple.as_text()}\n"
        f"{CLASSIFICATION_TAG}: {word}"
    )


def render_prompt(
    positive_examples: Sequence[LabeledTriple],
    negative_examples: Sequence[LabeledTriple],
    query: LabeledTriple,
    variant: PromptVariant = PromptVariant.BASE,
    seed: SeedLike = 0,
) -> str:
    """Render the full prompt string for one query.

    For :attr:`PromptVariant.SHUFFLED` the example order is drawn from
    ``seed``; the other variants keep the Table 1 order (positives first).
    """
    if not positive_examples or not negative_examples:
        raise ValueError("need at least one positive and one negative example")
    examples: List[Tuple[LabeledTriple, bool]] = [
        (t, True) for t in positive_examples
    ] + [(t, False) for t in negative_examples]

    if variant is PromptVariant.SHUFFLED:
        rng = derive_rng(seed, "prompt-shuffle", query.as_text())
        order = rng.permutation(len(examples))
        examples = [examples[int(i)] for i in order]

    lines = [INSTRUCTION]
    if variant is PromptVariant.ABSTAIN:
        lines.append(ABSTAIN_SENTENCE)
    lines.append("")
    for triple, label in examples:
        lines.append(format_example(triple, label))
    lines.append(f"{TRIPLE_TAG}: {query.as_text()}")
    lines.append(f"{CLASSIFICATION_TAG}:")
    return "\n".join(lines)


def extract_query_text(prompt: str) -> str:
    """The query triple text of a rendered prompt (its last ``<triple>:``).

    Used by the simulated models to look the query up in their knowledge
    oracle; raises :class:`ValueError` for texts this module did not render.
    """
    marker = f"{TRIPLE_TAG}: "
    position = prompt.rfind(marker)
    if position < 0:
        raise ValueError("prompt contains no <triple>: line")
    rest = prompt[position + len(marker):]
    return rest.split("\n", 1)[0].strip()


def example_order_signature(prompt: str) -> List[bool]:
    """Labels of the few-shot examples in prompt order.

    Lets the simulated models detect blocked orderings (all positives first)
    and reproduce the order-bias behaviour discussed in Section 2.4.
    """
    labels: List[bool] = []
    for line in prompt.splitlines():
        if line.startswith(f"{CLASSIFICATION_TAG}:"):
            value = line.split(":", 1)[1].strip().lower()
            if value == "true":
                labels.append(True)
            elif value == "false":
                labels.append(False)
    return labels


__all__ = [
    "PromptVariant",
    "render_prompt",
    "format_example",
    "extract_query_text",
    "example_order_signature",
    "INSTRUCTION",
    "ABSTAIN_SENTENCE",
]
