"""Chat-completion client interface.

:class:`SimulatedChatModel` (in :mod:`repro.llm.simulated`) implements this
interface offline; :class:`HTTPChatClient` talks to a real OpenAI-compatible
endpoint for users with API access, reproducing the paper's original setup
(``gpt-3.5-turbo-0613`` / ``gpt-4-0613`` via the chat-completions API).
"""

from __future__ import annotations

import abc
import json
import urllib.request
from typing import Optional


class ChatClient(abc.ABC):
    """Anything that maps a prompt string to a completion string."""

    @abc.abstractmethod
    def complete(self, prompt: str) -> str:
        """Return the model's completion for ``prompt``."""

    @property
    def name(self) -> str:
        return type(self).__name__


class EchoClient(ChatClient):
    """Degenerate client returning a fixed completion; useful in tests."""

    def __init__(self, response: str = "True"):
        self._response = response

    def complete(self, prompt: str) -> str:
        return self._response


class HTTPChatClient(ChatClient):
    """OpenAI-compatible chat-completions client (requires network access).

    Mirrors the paper's API usage: one user message per prompt, temperature
    configurable (the repeated-delivery protocol measures consistency, so
    the default keeps the provider's sampling behaviour).
    """

    def __init__(
        self,
        api_key: str,
        model: str = "gpt-4-0613",
        endpoint: str = "https://api.openai.com/v1/chat/completions",
        temperature: Optional[float] = None,
        timeout: float = 60.0,
    ):
        if not api_key:
            raise ValueError("api_key must be provided")
        self.api_key = api_key
        self.model = model
        self.endpoint = endpoint
        self.temperature = temperature
        self.timeout = timeout

    @property
    def name(self) -> str:
        return self.model

    def complete(self, prompt: str) -> str:
        payload = {
            "model": self.model,
            "messages": [{"role": "user", "content": prompt}],
        }
        if self.temperature is not None:
            payload["temperature"] = self.temperature
        request = urllib.request.Request(
            self.endpoint,
            data=json.dumps(payload).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {self.api_key}",
            },
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            body = json.loads(response.read().decode("utf-8"))
        try:
            return body["choices"][0]["message"]["content"]
        except (KeyError, IndexError) as error:
            raise RuntimeError(f"malformed chat-completions response: {body!r}") from error


__all__ = ["ChatClient", "EchoClient", "HTTPChatClient"]
