"""Chat-completion client interface.

:class:`SimulatedChatModel` (in :mod:`repro.llm.simulated`) implements this
interface offline; :class:`HTTPChatClient` talks to a real OpenAI-compatible
endpoint for users with API access, reproducing the paper's original setup
(``gpt-3.5-turbo-0613`` / ``gpt-4-0613`` via the chat-completions API).

Every failure of the HTTP path surfaces as a typed :class:`ChatClientError`
whose ``retryable`` flag drives :class:`repro.resilience.retry.RetryPolicy`;
raw ``urllib`` / ``json`` / ``KeyError`` exceptions never leak.  Pass a
``retry`` policy (and optionally a ``breaker``) to make ``complete`` retry
transient failures with exponential backoff.
"""

from __future__ import annotations

import abc
import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Optional

from repro.obs.trace import get_tracer, span

if TYPE_CHECKING:  # avoid a runtime cycle: resilience.faults subclasses ChatClient
    from repro.resilience.retry import CircuitBreaker, RetryPolicy


class ChatClientError(RuntimeError):
    """A chat-completions request failed.

    ``retryable`` tells the retry layer whether another attempt can help;
    ``status`` carries the HTTP status code when one was received; ``kind``
    is a coarse category: ``timeout``, ``network``, ``http``, ``malformed``
    (body is not JSON), or ``protocol`` (JSON of the wrong shape).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        retryable: bool = False,
        kind: str = "error",
    ):
        super().__init__(message)
        self.status = status
        self.retryable = retryable
        self.kind = kind


#: Non-5xx statuses worth retrying (timeouts, races, rate limits).
RETRYABLE_STATUSES = frozenset({408, 409, 425, 429})


class ChatClient(abc.ABC):
    """Anything that maps a prompt string to a completion string."""

    @abc.abstractmethod
    def complete(self, prompt: str) -> str:
        """Return the model's completion for ``prompt``."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def skip_delivery(self, prompt: str) -> None:
        """Note that one delivery of ``prompt`` was served from a checkpoint.

        The checkpoint-resume path calls this instead of :meth:`complete`
        for journaled deliveries, so clients that track per-prompt repeat
        indices (the simulators) stay in sync with an uninterrupted run.
        Stateless clients ignore it.
        """
        return None


class EchoClient(ChatClient):
    """Degenerate client returning a fixed completion; useful in tests."""

    def __init__(self, response: str = "True"):
        self._response = response

    def complete(self, prompt: str) -> str:
        return self._response


class HTTPChatClient(ChatClient):
    """OpenAI-compatible chat-completions client (requires network access).

    Mirrors the paper's API usage: one user message per prompt, temperature
    configurable (the repeated-delivery protocol measures consistency, so
    the default keeps the provider's sampling behaviour).
    """

    def __init__(
        self,
        api_key: str,
        model: str = "gpt-4-0613",
        endpoint: str = "https://api.openai.com/v1/chat/completions",
        temperature: Optional[float] = None,
        timeout: float = 60.0,
        retry: Optional["RetryPolicy"] = None,
        breaker: Optional["CircuitBreaker"] = None,
    ):
        if not api_key:
            raise ValueError("api_key must be provided")
        self.api_key = api_key
        self.model = model
        self.endpoint = endpoint
        self.temperature = temperature
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker

    @property
    def name(self) -> str:
        return self.model

    def complete(self, prompt: str) -> str:
        if self.retry is not None:
            return self.retry.call(
                self._complete_once, prompt, breaker=self.breaker
            )
        if self.breaker is not None:
            return self.breaker.call(self._complete_once, prompt)
        return self._complete_once(prompt)

    def _complete_once(self, prompt: str) -> str:
        payload = {
            "model": self.model,
            "messages": [{"role": "user", "content": prompt}],
        }
        if self.temperature is not None:
            payload["temperature"] = self.temperature
        request = urllib.request.Request(
            self.endpoint,
            data=json.dumps(payload, sort_keys=True).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {self.api_key}",
            },
        )
        get_tracer().count("llm.http.requests")
        with span("llm.http.request", model=self.model):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    raw = response.read()
            except urllib.error.HTTPError as error:
                status = error.code
                raise ChatClientError(
                    f"chat endpoint returned HTTP {status}",
                    status=status,
                    retryable=status >= 500 or status in RETRYABLE_STATUSES,
                    kind="http",
                ) from error
            except urllib.error.URLError as error:
                reason = getattr(error, "reason", error)
                kind = "timeout" if isinstance(reason, TimeoutError) else "network"
                raise ChatClientError(
                    f"chat endpoint unreachable: {reason}",
                    retryable=True,
                    kind=kind,
                ) from error
            except TimeoutError as error:
                raise ChatClientError(
                    "chat request timed out", retryable=True, kind="timeout"
                ) from error
            except OSError as error:
                raise ChatClientError(
                    f"chat request failed: {error}", retryable=True, kind="network"
                ) from error
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ChatClientError(
                f"malformed chat-completions body (not JSON): {raw[:200]!r}",
                retryable=True,
                kind="malformed",
            ) from error
        return extract_completion(body)


def extract_completion(body: object) -> str:
    """Validate a chat-completions response body and return its content.

    Checks the full path (``choices[0].message.content`` must be a string)
    before indexing, so a well-formed-JSON-but-wrong-shape response becomes
    a non-retryable ``protocol`` :class:`ChatClientError` rather than a
    ``KeyError`` deep in the benchmark loop.
    """
    choices = body.get("choices") if isinstance(body, dict) else None
    message = (
        choices[0].get("message")
        if isinstance(choices, list) and choices and isinstance(choices[0], dict)
        else None
    )
    content = message.get("content") if isinstance(message, dict) else None
    if not isinstance(content, str):
        raise ChatClientError(
            f"malformed chat-completions response: {body!r}",
            retryable=False,
            kind="protocol",
        )
    return content


__all__ = [
    "ChatClient",
    "ChatClientError",
    "EchoClient",
    "HTTPChatClient",
    "RETRYABLE_STATUSES",
    "extract_completion",
]
