"""Chat-completion client interface.

:class:`SimulatedChatModel` (in :mod:`repro.llm.simulated`) implements this
interface offline; :class:`HTTPChatClient` talks to a real OpenAI-compatible
endpoint for users with API access, reproducing the paper's original setup
(``gpt-3.5-turbo-0613`` / ``gpt-4-0613`` via the chat-completions API).

Every failure of the HTTP path surfaces as a typed :class:`ChatClientError`
whose ``retryable`` flag drives :class:`repro.resilience.retry.RetryPolicy`;
raw ``urllib`` / ``json`` / ``KeyError`` exceptions never leak.  Pass a
``retry`` policy (and optionally a ``breaker``) to make ``complete`` retry
transient failures with exponential backoff.
"""

from __future__ import annotations

import abc
import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Optional

from repro.obs.trace import get_tracer, span

if TYPE_CHECKING:  # avoid a runtime cycle: resilience.faults subclasses ChatClient
    from repro.resilience.retry import CircuitBreaker, Clock, RetryPolicy


class ChatClientError(RuntimeError):
    """A chat-completions request failed.

    ``retryable`` tells the retry layer whether another attempt can help;
    ``status`` carries the HTTP status code when one was received; ``kind``
    is a coarse category: ``timeout``, ``network``, ``http``, ``malformed``
    (body is not JSON), or ``protocol`` (JSON of the wrong shape).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        retryable: bool = False,
        kind: str = "error",
    ):
        super().__init__(message)
        self.status = status
        self.retryable = retryable
        self.kind = kind


#: Non-5xx statuses worth retrying (timeouts, races, rate limits).
RETRYABLE_STATUSES = frozenset({408, 409, 425, 429})


class ChatClient(abc.ABC):
    """Anything that maps a prompt string to a completion string."""

    @abc.abstractmethod
    def complete(self, prompt: str) -> str:
        """Return the model's completion for ``prompt``."""

    def complete_indexed(
        self, prompt: str, repeat: int, *, timeout_s: Optional[float] = None
    ) -> str:
        """One delivery with the repeat index made explicit.

        The concurrent delivery engine calls this instead of
        :meth:`complete` so a completion is a pure function of ``(prompt,
        repeat)`` regardless of thread schedule.  ``timeout_s`` is the
        remaining deadline budget for this attempt; clients without a
        network ignore it.  The default delegates to :meth:`complete` —
        correct only for clients whose answer does not depend on delivery
        history (stateful simulators override it).
        """
        return self.complete(prompt)

    @property
    def name(self) -> str:
        return type(self).__name__

    def skip_delivery(self, prompt: str) -> None:
        """Note that one delivery of ``prompt`` was served from a checkpoint.

        The checkpoint-resume path calls this instead of :meth:`complete`
        for journaled deliveries, so clients that track per-prompt repeat
        indices (the simulators) stay in sync with an uninterrupted run.
        Stateless clients ignore it.
        """
        return None


class EchoClient(ChatClient):
    """Degenerate client returning a fixed completion; useful in tests."""

    def __init__(self, response: str = "True"):
        self._response = response

    def complete(self, prompt: str) -> str:
        return self._response


class HTTPChatClient(ChatClient):
    """OpenAI-compatible chat-completions client (requires network access).

    Mirrors the paper's API usage: one user message per prompt, temperature
    configurable (the repeated-delivery protocol measures consistency, so
    the default keeps the provider's sampling behaviour).
    """

    def __init__(
        self,
        api_key: str,
        model: str = "gpt-4-0613",
        endpoint: str = "https://api.openai.com/v1/chat/completions",
        temperature: Optional[float] = None,
        timeout: float = 60.0,
        retry: Optional["RetryPolicy"] = None,
        breaker: Optional["CircuitBreaker"] = None,
        clock: Optional["Clock"] = None,
    ):
        if not api_key:
            raise ValueError("api_key must be provided")
        self.api_key = api_key
        self.model = model
        self.endpoint = endpoint
        self.temperature = temperature
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        if clock is None:
            from repro.resilience.retry import SYSTEM_CLOCK

            clock = SYSTEM_CLOCK
        self.clock = clock

    @property
    def name(self) -> str:
        return self.model

    def complete(self, prompt: str, *, deadline_s: Optional[float] = None) -> str:
        """One completion, honouring a per-request deadline end to end.

        ``deadline_s`` bounds the *whole* delivery — every attempt's socket
        timeout is the remaining budget, and once the budget is spent no
        further retry is attempted (a late transient error would otherwise
        burn the full backoff schedule to no purpose).
        """
        expires = (
            self.clock.monotonic() + deadline_s if deadline_s is not None else None
        )

        def attempt() -> str:
            return self._complete_once(prompt, timeout_s=self._remaining(expires))

        if self.retry is not None:

            def classify(error: BaseException) -> bool:
                from repro.resilience.retry import is_retryable

                if expires is not None and self.clock.monotonic() >= expires:
                    return False  # budget spent: every error is final
                return is_retryable(error)

            return self.retry.call(attempt, classify=classify, breaker=self.breaker)
        if self.breaker is not None:
            return self.breaker.call(attempt)
        return attempt()

    def complete_indexed(
        self, prompt: str, repeat: int, *, timeout_s: Optional[float] = None
    ) -> str:
        """Engine entry point: a single stateless attempt.

        The delivery engine owns retries, breakers, and deadlines at the
        backend layer, so this deliberately bypasses the client's own
        ``retry``/``breaker`` — stacking two retry schedules would multiply
        attempts.  The HTTP API is stateless in the repeat index.
        """
        return self._complete_once(prompt, timeout_s=timeout_s)

    def _remaining(self, expires: Optional[float]) -> Optional[float]:
        """Seconds left until ``expires``; raises once the budget is gone."""
        if expires is None:
            return None
        remaining = expires - self.clock.monotonic()
        if remaining <= 0:
            raise ChatClientError(
                "deadline exhausted before the request was issued",
                retryable=False,
                kind="timeout",
            )
        return remaining

    def _complete_once(
        self, prompt: str, timeout_s: Optional[float] = None
    ) -> str:
        payload = {
            "model": self.model,
            "messages": [{"role": "user", "content": prompt}],
        }
        if self.temperature is not None:
            payload["temperature"] = self.temperature
        request = urllib.request.Request(
            self.endpoint,
            data=json.dumps(payload, sort_keys=True).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {self.api_key}",
            },
        )
        if timeout_s is not None and timeout_s <= 0:
            raise ChatClientError(
                "deadline exhausted before the request was issued",
                retryable=False,
                kind="timeout",
            )
        timeout = (
            self.timeout if timeout_s is None else min(self.timeout, timeout_s)
        )
        get_tracer().count("llm.http.requests")
        with span("llm.http.request", model=self.model):
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout
                ) as response:
                    raw = response.read()
            except urllib.error.HTTPError as error:
                status = error.code
                raise ChatClientError(
                    f"chat endpoint returned HTTP {status}",
                    status=status,
                    retryable=status >= 500 or status in RETRYABLE_STATUSES,
                    kind="http",
                ) from error
            except urllib.error.URLError as error:
                reason = getattr(error, "reason", error)
                kind = "timeout" if isinstance(reason, TimeoutError) else "network"
                raise ChatClientError(
                    f"chat endpoint unreachable: {reason}",
                    retryable=True,
                    kind=kind,
                ) from error
            except TimeoutError as error:
                raise ChatClientError(
                    "chat request timed out", retryable=True, kind="timeout"
                ) from error
            except OSError as error:
                raise ChatClientError(
                    f"chat request failed: {error}", retryable=True, kind="network"
                ) from error
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ChatClientError(
                f"malformed chat-completions body (not JSON): {raw[:200]!r}",
                retryable=True,
                kind="malformed",
            ) from error
        return extract_completion(body)


def extract_completion(body: object) -> str:
    """Validate a chat-completions response body and return its content.

    Checks the full path (``choices[0].message.content`` must be a string)
    before indexing, so a well-formed-JSON-but-wrong-shape response becomes
    a non-retryable ``protocol`` :class:`ChatClientError` rather than a
    ``KeyError`` deep in the benchmark loop.
    """
    choices = body.get("choices") if isinstance(body, dict) else None
    message = (
        choices[0].get("message")
        if isinstance(choices, list) and choices and isinstance(choices[0], dict)
        else None
    )
    content = message.get("content") if isinstance(message, dict) else None
    if not isinstance(content, str):
        raise ChatClientError(
            f"malformed chat-completions response: {body!r}",
            retryable=False,
            kind="protocol",
        )
    return content


__all__ = [
    "ChatClient",
    "ChatClientError",
    "EchoClient",
    "HTTPChatClient",
    "RETRYABLE_STATUSES",
    "extract_completion",
]
