"""In-context-learning paradigm: prompting LLMs to classify triples.

Contains the Table 1 prompt template with its three formulations, a chat
client interface (with an HTTP client for real OpenAI-compatible endpoints
and calibrated offline simulators for GPT-4 / GPT-3.5 / BioGPT), response
parsing, and the 100-prompt x 5-repeat experiment protocol of Section 2.4.
"""

from repro.llm.client import (
    ChatClient,
    ChatClientError,
    EchoClient,
    HTTPChatClient,
)
from repro.llm.icl import (
    ICLConfig,
    ICLResult,
    build_icl_queries,
    parse_response,
    run_icl_experiment,
)
from repro.llm.prompts import PromptVariant, render_prompt
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT35_PROFILE,
    GPT4_PROFILE,
    LLAMA2_PROFILE,
    BehaviourProfile,
    SimulatedChatModel,
    truth_table,
)

__all__ = [
    "PromptVariant",
    "render_prompt",
    "ChatClient",
    "ChatClientError",
    "HTTPChatClient",
    "EchoClient",
    "BehaviourProfile",
    "SimulatedChatModel",
    "GPT4_PROFILE",
    "GPT35_PROFILE",
    "BIOGPT_PROFILE",
    "LLAMA2_PROFILE",
    "truth_table",
    "ICLConfig",
    "ICLResult",
    "build_icl_queries",
    "parse_response",
    "run_icl_experiment",
]
