"""The ten ChEBI relationship types (paper Appendix Tables A2-A3).

Each relationship carries the metadata the experiments need: whether it is
symmetric (``is tautomer of`` is excluded from the direction-flipping task 2
because flipping a symmetric relation yields a true triple), its inverse
(``is conjugate acid of`` is dropped from all tasks as the inverse of
``is conjugate base of``), and its share of ChEBI triples (Table A3), which
the synthetic generator reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class RelationType:
    """A ChEBI relationship type.

    Attributes:
        name: canonical snake_case identifier, e.g. ``"is_a"``.
        label: human-readable phrase used in prompts, e.g. ``"is a"``.
        symmetric: True if (o, s, l) is true whenever (s, o, l) is.
        inverse_name: name of the inverse relation, if any.
        chebi_count: number of triples of this type in the Feb-2022 ChEBI
            release (paper Table A3); used as the frequency profile for the
            synthetic generator.
    """

    name: str
    label: str
    symmetric: bool = False
    inverse_name: Optional[str] = None
    chebi_count: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


IS_A = RelationType("is_a", "is a", chebi_count=230_241)
HAS_ROLE = RelationType("has_role", "has role", chebi_count=42_095)
HAS_FUNCTIONAL_PARENT = RelationType(
    "has_functional_parent", "has functional parent", chebi_count=18_204
)
IS_CONJUGATE_BASE_OF = RelationType(
    "is_conjugate_base_of",
    "is conjugate base of",
    inverse_name="is_conjugate_acid_of",
    chebi_count=8_247,
)
IS_CONJUGATE_ACID_OF = RelationType(
    "is_conjugate_acid_of",
    "is conjugate acid of",
    inverse_name="is_conjugate_base_of",
    chebi_count=8_247,
)
HAS_PART = RelationType("has_part", "has part", chebi_count=3_911)
IS_ENANTIOMER_OF = RelationType(
    "is_enantiomer_of", "is enantiomer of", symmetric=True, chebi_count=2_674
)
IS_TAUTOMER_OF = RelationType(
    "is_tautomer_of", "is tautomer of", symmetric=True, chebi_count=1_804
)
HAS_PARENT_HYDRIDE = RelationType(
    "has_parent_hydride", "has parent hydride", chebi_count=1_736
)
IS_SUBSTITUENT_GROUP_FROM = RelationType(
    "is_substituent_group_from", "is substituent group from", chebi_count=1_279
)

#: All ten ChEBI relationship types in Table A3 order (descending frequency).
ALL_RELATIONS: Tuple[RelationType, ...] = (
    IS_A,
    HAS_ROLE,
    HAS_FUNCTIONAL_PARENT,
    IS_CONJUGATE_BASE_OF,
    IS_CONJUGATE_ACID_OF,
    HAS_PART,
    IS_ENANTIOMER_OF,
    IS_TAUTOMER_OF,
    HAS_PARENT_HYDRIDE,
    IS_SUBSTITUENT_GROUP_FROM,
)

#: The nine relationship types kept for the curation tasks: the paper removes
#: ``is_conjugate_acid_of`` as the inverse of ``is_conjugate_base_of``
#: (Section 2.1).
CURATION_RELATIONS: Tuple[RelationType, ...] = tuple(
    r for r in ALL_RELATIONS if r.name != "is_conjugate_acid_of"
)

_BY_NAME: Dict[str, RelationType] = {r.name: r for r in ALL_RELATIONS}
_BY_LABEL: Dict[str, RelationType] = {r.label: r for r in ALL_RELATIONS}


def relation_by_name(name: str) -> RelationType:
    """Look up a relationship by snake_case name or human-readable label.

    Raises :class:`KeyError` with the list of valid names when unknown.
    """
    relation = _BY_NAME.get(name) or _BY_LABEL.get(name)
    if relation is None:
        raise KeyError(
            f"unknown relationship {name!r}; valid names: {sorted(_BY_NAME)}"
        )
    return relation


__all__ = [
    "RelationType",
    "ALL_RELATIONS",
    "CURATION_RELATIONS",
    "relation_by_name",
    "IS_A",
    "HAS_ROLE",
    "HAS_FUNCTIONAL_PARENT",
    "IS_CONJUGATE_BASE_OF",
    "IS_CONJUGATE_ACID_OF",
    "HAS_PART",
    "IS_ENANTIOMER_OF",
    "IS_TAUTOMER_OF",
    "HAS_PARENT_HYDRIDE",
    "IS_SUBSTITUENT_GROUP_FROM",
]
