"""ChEBI ontology substrate.

Provides the in-memory ontology model, the ten ChEBI relationship types, graph
queries (parents / children / siblings), an OBO 1.2 parser/writer for loading
a real ChEBI release, a synthetic ChEBI-like generator for offline runs, and
census statistics matching the paper's Tables A1-A3.
"""

from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.relations import (
    ALL_RELATIONS,
    CURATION_RELATIONS,
    IS_A,
    IS_CONJUGATE_ACID_OF,
    IS_TAUTOMER_OF,
    RelationType,
    relation_by_name,
)
from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like
from repro.ontology.statistics import OntologyCensus, census

__all__ = [
    "Entity",
    "Ontology",
    "SubOntology",
    "RelationType",
    "ALL_RELATIONS",
    "CURATION_RELATIONS",
    "IS_A",
    "IS_CONJUGATE_ACID_OF",
    "IS_TAUTOMER_OF",
    "relation_by_name",
    "SynthesisConfig",
    "synthesize_chebi_like",
    "OntologyCensus",
    "census",
]
