"""In-memory ontology model: entities, statements, and the ontology graph.

The ontology is the paper's ``G = (V, T, L)``: a set of entities ``V``, a set
of directed labelled triples ``T`` and a label set ``L`` (the relationship
types).  :class:`Ontology` stores statements with indexes for the queries the
curation tasks need — triple membership tests, per-relation listing, and
parent/child navigation over ``is_a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.ontology.relations import IS_A, RelationType, relation_by_name


class SubOntology(Enum):
    """The three ChEBI sub-ontologies (paper Table A1)."""

    CHEMICAL = "chemical_entity"
    ROLE = "role"
    SUBATOMIC = "subatomic_particle"


@dataclass(frozen=True)
class Entity:
    """A ChEBI entity.

    Attributes:
        identifier: ChEBI-style accession, e.g. ``"CHEBI:15377"``.
        name: primary label used in prompts and for tokenisation.
        sub_ontology: which of the three sub-ontologies the entity belongs to.
        definition: optional free-text definition (carried through OBO I/O).
        synonyms: alternative labels (carried through OBO I/O).
    """

    identifier: str
    name: str
    sub_ontology: SubOntology = SubOntology.CHEMICAL
    definition: str = ""
    synonyms: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.identifier:
            raise ValueError("entity identifier must be non-empty")
        if not self.name:
            raise ValueError(f"entity {self.identifier} must have a name")


@dataclass(frozen=True)
class Statement:
    """A directed, labelled edge: subject --relation--> object."""

    subject: str
    relation: RelationType
    object: str

    def key(self) -> Tuple[str, str, str]:
        """Hashable (subject, relation-name, object) key."""
        return (self.subject, self.relation.name, self.object)


class Ontology:
    """A mutable ontology graph with membership and navigation indexes.

    Entities are registered before statements referencing them; statements are
    deduplicated.  All lookups are by entity identifier.
    """

    def __init__(self, name: str = "ontology"):
        self.name = name
        self._entities: Dict[str, Entity] = {}
        self._statements: List[Statement] = []
        self._statement_keys: Set[Tuple[str, str, str]] = set()
        self._by_relation: Dict[str, List[Statement]] = {}
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

    # -- entities ---------------------------------------------------------

    def add_entity(self, entity: Entity) -> Entity:
        """Register ``entity``; re-adding the identical entity is a no-op."""
        existing = self._entities.get(entity.identifier)
        if existing is not None:
            if existing != entity:
                raise ValueError(
                    f"entity {entity.identifier} already registered with "
                    f"different attributes"
                )
            return existing
        self._entities[entity.identifier] = entity
        return entity

    def entity(self, identifier: str) -> Entity:
        """Return the entity for ``identifier`` or raise :class:`KeyError`."""
        try:
            return self._entities[identifier]
        except KeyError:
            raise KeyError(f"unknown entity {identifier!r}") from None

    def has_entity(self, identifier: str) -> bool:
        return identifier in self._entities

    def entities(self) -> Iterator[Entity]:
        """Iterate entities in insertion order."""
        return iter(self._entities.values())

    def entity_ids(self) -> List[str]:
        return list(self._entities)

    @property
    def num_entities(self) -> int:
        return len(self._entities)

    def entities_in(self, sub_ontology: SubOntology) -> List[Entity]:
        """All entities in the given sub-ontology, in insertion order."""
        return [e for e in self._entities.values() if e.sub_ontology is sub_ontology]

    # -- statements -------------------------------------------------------

    def add_statement(self, subject: str, relation, obj: str) -> Statement:
        """Add a statement; returns the (possibly pre-existing) statement.

        ``relation`` may be a :class:`RelationType` or its name.  Both
        endpoints must already be registered entities; self-loops are
        rejected because no ChEBI relationship relates an entity to itself.
        """
        if isinstance(relation, str):
            relation = relation_by_name(relation)
        for endpoint in (subject, obj):
            if endpoint not in self._entities:
                raise KeyError(f"unknown entity {endpoint!r} in statement")
        if subject == obj:
            raise ValueError(f"self-loop statement on {subject!r} rejected")
        statement = Statement(subject, relation, obj)
        if statement.key() in self._statement_keys:
            return statement
        self._statement_keys.add(statement.key())
        self._statements.append(statement)
        self._by_relation.setdefault(relation.name, []).append(statement)
        if relation.name == IS_A.name:
            self._parents.setdefault(subject, set()).add(obj)
            self._children.setdefault(obj, set()).add(subject)
        return statement

    def has_statement(self, subject: str, relation, obj: str) -> bool:
        """Membership test used by the negative-triple generators."""
        name = relation.name if isinstance(relation, RelationType) else str(relation)
        return (subject, name, obj) in self._statement_keys

    def statements(
        self, relation: Optional[RelationType] = None
    ) -> Iterator[Statement]:
        """Iterate statements, optionally restricted to one relation type."""
        if relation is None:
            return iter(self._statements)
        return iter(self._by_relation.get(relation.name, []))

    @property
    def num_statements(self) -> int:
        return len(self._statements)

    def relation_names(self) -> List[str]:
        """Relation types present, ordered by descending statement count."""
        return sorted(
            self._by_relation, key=lambda n: -len(self._by_relation[n])
        )

    # -- is_a navigation ----------------------------------------------------

    def parents(self, identifier: str) -> Set[str]:
        """Direct ``is_a`` parents of an entity (the paper's ``p(.)``)."""
        self.entity(identifier)
        return set(self._parents.get(identifier, ()))

    def children(self, identifier: str) -> Set[str]:
        """Direct ``is_a`` children of an entity."""
        self.entity(identifier)
        return set(self._children.get(identifier, ()))

    def roots(self) -> List[str]:
        """Entities that appear as an ``is_a`` object but have no parents,
        plus isolated entities that never appear in an ``is_a`` triple."""
        return [e for e in self._entities if not self._parents.get(e)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ontology({self.name!r}, entities={self.num_entities}, "
            f"statements={self.num_statements})"
        )


__all__ = ["SubOntology", "Entity", "Statement", "Ontology"]
