"""Synthetic ChEBI-like ontology generator.

The paper uses the February-2022 ChEBI release (147,461 entities, 318,438
triples).  That download is unavailable offline, so this module generates a
scaled-down ontology that reproduces the *interfaces and statistics* the
experiments depend on:

* the three sub-ontologies (chemical entities, roles, subatomic particles)
  with ChEBI-like proportions (Table A1);
* the ten relationship types with the Table A3 frequency profile;
* a compositional chemical-name grammar.  Child classes extend their parent's
  name with IUPAC-style modifiers (``3-hydroxy``, ``(2S)-``, ``N-acetyl`` ...)
  so that entity names exhibit the token pathology the paper analyses in
  Table A5: head entities are dominated by short, high-frequency locant and
  stereo-descriptor tokens (``2``, ``3``, ``yl``, ``6r`` ...) that carry little
  semantic signal.  This is what makes the hypothesis-driven adaptation
  experiments (Section 2.7) meaningful on synthetic data;
* an ``is_a`` DAG (multi-parenting included) so task 3 can find sibling
  entities, plus conjugate acid/base pairs, enantiomer and tautomer pairs,
  parent hydrides and substituent groups for the remaining relation types.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.relations import (
    HAS_FUNCTIONAL_PARENT,
    HAS_PARENT_HYDRIDE,
    HAS_PART,
    HAS_ROLE,
    IS_A,
    IS_CONJUGATE_ACID_OF,
    IS_CONJUGATE_BASE_OF,
    IS_ENANTIOMER_OF,
    IS_SUBSTITUENT_GROUP_FROM,
    IS_TAUTOMER_OF,
)
from repro.utils.rng import SeedLike, derive_rng

# --------------------------------------------------------------------------
# Name grammar vocabularies
# --------------------------------------------------------------------------

#: Top-level chemical classes (is_a roots below the global root).
CHEMICAL_ROOT_CLASSES: Tuple[str, ...] = (
    "carboxylic acid",
    "fatty acid",
    "amino acid",
    "hydroxy acid",
    "monocarboxylic acid",
    "steroid",
    "alcohol",
    "amine",
    "ketone",
    "aldehyde",
    "ester",
    "ether",
    "amide",
    "lactam",
    "alkaloid",
    "peptide",
    "carbohydrate",
    "oligosaccharide",
    "flavonoid",
    "terpenoid",
    "glycoside",
    "nucleoside",
    "nucleotide",
    "phospholipid",
    "sphingolipid",
    "porphyrin",
    "quinone",
    "sulfonamide",
    "azamacrocycle",
    "aromatic compound",
    "organic anion",
    "organic cation",
    "inorganic salt",
    "organochlorine compound",
    "organophosphate",
    "benzenoid",
    "imidazole",
    "pyridine",
    "furanone",
    "coumarin",
)

#: Substituent prefixes attachable to a parent class name.
SUBSTITUENTS: Tuple[str, ...] = (
    "hydroxy",
    "amino",
    "methyl",
    "ethyl",
    "propyl",
    "butyl",
    "methoxy",
    "ethoxy",
    "chloro",
    "fluoro",
    "bromo",
    "iodo",
    "oxo",
    "acetyl",
    "phenyl",
    "benzyl",
    "nitro",
    "cyano",
    "formyl",
    "acetamido",
    "sulfo",
    "thio",
    "carboxy",
    "benzoyl",
    "galactosyl",
    "glucosyl",
    "acyl",
    "dehydro",
    "dihydro",
    "hydroxymethyl",
    "aminomethyl",
    "keto",
    "epoxy",
    "glycero",
    "phosphono",
)

#: Multiplying prefixes used with multi-locant modifiers.
MULTIPLIERS: Tuple[str, ...] = ("di", "tri", "tetra")

#: Stereo-descriptor centres used in parenthesised prefixes, e.g. ``(2S)-``.
STEREO_CENTRES: Tuple[str, ...] = (
    "2S", "2R", "3S", "3R", "4S", "4R", "5S", "5R", "6S", "6R",
    "R", "S", "E", "Z",
)

#: Greek-letter and positional qualifiers.
QUALIFIERS: Tuple[str, ...] = ("alpha", "beta", "gamma", "omega", "N", "O", "L", "D")

#: Role sub-ontology: (role name, parent role name) — paper Table A1 examples.
ROLE_TREE: Tuple[Tuple[str, Optional[str]], ...] = (
    ("role", None),
    ("biological role", "role"),
    ("chemical role", "role"),
    ("application", "role"),
    ("metabolite", "biological role"),
    ("human metabolite", "metabolite"),
    ("plant metabolite", "metabolite"),
    ("bacterial metabolite", "metabolite"),
    ("fungal metabolite", "metabolite"),
    ("hormone", "biological role"),
    ("androgen", "hormone"),
    ("estrogen", "hormone"),
    ("antibiotic", "biological role"),
    ("antiviral agent", "biological role"),
    ("antifungal agent", "biological role"),
    ("antineoplastic agent", "biological role"),
    ("enzyme inhibitor", "biological role"),
    ("EC 1.1.1.1 inhibitor", "enzyme inhibitor"),
    ("EC 3.4.21.4 inhibitor", "enzyme inhibitor"),
    ("ferroptosis inhibitor", "enzyme inhibitor"),
    ("neurotransmitter", "biological role"),
    ("toxin", "biological role"),
    ("allergen", "biological role"),
    ("ligand", "chemical role"),
    ("inhibitor", "chemical role"),
    ("surfactant", "chemical role"),
    ("solvent", "chemical role"),
    ("buffer", "chemical role"),
    ("oxidising agent", "chemical role"),
    ("reducing agent", "chemical role"),
    ("coenzyme", "chemical role"),
    ("cofactor", "chemical role"),
    ("pesticide", "application"),
    ("herbicide", "application"),
    ("fungicide", "application"),
    ("fuel", "application"),
    ("dye", "application"),
    ("antirheumatic drug", "application"),
    ("analgesic", "application"),
    ("anaesthetic", "application"),
)

#: Subatomic particles (42 in ChEBI; we include a representative subset and
#: pad with numbered excited states to reach the configured count).
SUBATOMIC_PARTICLES: Tuple[str, ...] = (
    "electron",
    "positron",
    "photon",
    "proton",
    "neutron",
    "nucleon",
    "muon",
    "tauon",
    "neutrino",
    "antineutrino",
    "alpha particle",
    "beta particle",
    "deuteron",
    "triton",
    "pion",
    "kaon",
    "gluon",
    "quark",
    "up quark",
    "down quark",
    "strange quark",
    "charm quark",
    "top quark",
    "bottom quark",
)

_SYLLABLE_ONSETS = (
    "fl", "gl", "br", "str", "ch", "m", "n", "s", "t", "v", "z",
    "qu", "pr", "cl", "d", "r", "l", "k", "p", "b",
)
_SYLLABLE_VOWELS = ("a", "e", "i", "o", "u", "ae", "io")
_TRIVIAL_SUFFIXES = (
    "ine", "ol", "one", "ate", "ide", "ose", "in", "an", "ene",
    "amide", "azole", "icin", "mycin", "oxin", "erol", "idine",
)

#: Relationship counts per chemical entity in ChEBI Feb-2022 (Table A3 counts
#: divided by 145,869 chemical entities).  The generator scales these to the
#: configured entity count.
_RELATION_DENSITY: Dict[str, float] = {
    HAS_ROLE.name: 42_095 / 145_869,
    HAS_FUNCTIONAL_PARENT.name: 18_204 / 145_869,
    IS_CONJUGATE_BASE_OF.name: 8_247 / 145_869,
    HAS_PART.name: 3_911 / 145_869,
    IS_ENANTIOMER_OF.name: 2_674 / 145_869,
    IS_TAUTOMER_OF.name: 1_804 / 145_869,
    HAS_PARENT_HYDRIDE.name: 1_736 / 145_869,
    IS_SUBSTITUENT_GROUP_FROM.name: 1_279 / 145_869,
}


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters of the synthetic ontology.

    Attributes:
        n_chemical_entities: target size of the chemical sub-ontology
            (includes derived entities such as conjugate bases).
        n_subatomic: number of subatomic-particle entities (ChEBI has 42).
        seed: master seed; every run with the same config is identical.
        compositional_fraction: probability that a new class extends its
            parent's name with a modifier rather than receiving a trivial
            name.  The compositional majority is what creates both the
            Table A5 token profile and the name-containment signal that
            makes directionality (task 2) learnable.
        extra_parent_probability: chance that a new class receives a second
            ``is_a`` parent, yielding a DAG with ~1.5 parents per entity as
            in ChEBI (230,241 is_a edges over 145,869 entities).
        max_depth: maximum ``is_a`` depth of generated chemical classes.
        role_affinities: number of preferred roles sampled per root family;
            80% of ``has_role`` edges use a family-preferred role, which
            gives embedding models distributional signal to learn from.
    """

    n_chemical_entities: int = 3_000
    n_subatomic: int = 24
    seed: int = 7
    compositional_fraction: float = 0.72
    extra_parent_probability: float = 0.38
    max_depth: int = 9
    role_affinities: int = 3

    def __post_init__(self):
        if self.n_chemical_entities < len(CHEMICAL_ROOT_CLASSES) + 10:
            raise ValueError(
                "n_chemical_entities must exceed the number of root classes "
                f"({len(CHEMICAL_ROOT_CLASSES)}) by at least 10"
            )
        if not 0.0 <= self.compositional_fraction <= 1.0:
            raise ValueError("compositional_fraction must be in [0, 1]")
        if not 0.0 <= self.extra_parent_probability <= 1.0:
            raise ValueError("extra_parent_probability must be in [0, 1]")
        if self.max_depth < 2:
            raise ValueError("max_depth must be at least 2")
        if self.n_subatomic < 1:
            raise ValueError("n_subatomic must be positive")


class _NameFactory:
    """Generates unique chemical-style names from the grammar vocabularies."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._used: Set[str] = set()

    def claim(self, name: str) -> bool:
        """Reserve ``name``; returns False when already taken."""
        if name in self._used:
            return False
        self._used.add(name)
        return True

    def modifier(self) -> str:
        """One IUPAC-style prefix, e.g. ``3-hydroxy``, ``(2S)-``, ``N-acetyl``.

        Locants dominate, mirroring the real ChEBI token census (Table A5).
        """
        rng = self._rng
        kind = rng.random()
        if kind < 0.15:
            return f"({rng.choice(STEREO_CENTRES)})-"
        if kind < 0.30:
            qualifier = rng.choice(QUALIFIERS)
            return f"{qualifier}-{rng.choice(SUBSTITUENTS)}"
        substituent = rng.choice(SUBSTITUENTS)
        n_locants = int(rng.integers(1, 4))
        locants = sorted(rng.choice(np.arange(1, 18), size=n_locants, replace=False))
        locant_str = ",".join(str(int(loc)) for loc in locants)
        if n_locants > 1:
            substituent = MULTIPLIERS[n_locants - 2] + substituent
        return f"{locant_str}-{substituent}"

    def compositional(self, parent_name: str) -> str:
        """Unique child name formed by prefixing modifiers onto the parent."""
        for _ in range(64):
            n_mods = 1 if self._rng.random() < 0.8 else 2
            prefix = "".join(
                self.modifier() + ("" if i == n_mods - 1 else "-")
                for i in range(n_mods)
            )
            joiner = "" if prefix.endswith("-") else "-"
            candidate = f"{prefix}{joiner}{parent_name}"
            if self.claim(candidate):
                return candidate
        raise RuntimeError(f"could not derive a unique child name from {parent_name!r}")

    def trivial(self) -> str:
        """Unique trivial (non-systematic) chemical name, e.g. ``flumetazone``."""
        rng = self._rng
        for _ in range(256):
            n_syll = int(rng.integers(2, 4))
            stem = "".join(
                str(rng.choice(_SYLLABLE_ONSETS)) + str(rng.choice(_SYLLABLE_VOWELS))
                for _ in range(n_syll)
            )
            candidate = stem + str(rng.choice(_TRIVIAL_SUFFIXES))
            if self.claim(candidate):
                return candidate
        raise RuntimeError("trivial-name space exhausted; increase syllable budget")


def _conjugate_base_name(acid_name: str) -> str:
    """Derive the conjugate-base name, ChEBI style.

    ``butanoic acid`` -> ``butanoate``; otherwise append a charge suffix as in
    ``mannarate(1-)``.
    """
    if acid_name.endswith("ic acid"):
        return acid_name[: -len("ic acid")] + "ate"
    return f"{acid_name}(1-)"


class _Synthesizer:
    """Stateful builder; one instance per :func:`synthesize_chebi_like` call."""

    def __init__(self, config: SynthesisConfig):
        self.config = config
        self.rng = derive_rng(config.seed, "ontology-synthesis")
        self.ontology = Ontology(name=f"synthetic-chebi-{config.seed}")
        self.names = _NameFactory(derive_rng(config.seed, "names"))
        self._next_id = 10_000
        self.depth: Dict[str, int] = {}
        self.chemical_ids: List[str] = []
        self.role_leaf_ids: List[str] = []
        self.family_of: Dict[str, str] = {}

    # -- low-level helpers --------------------------------------------------

    def _new_entity(self, name: str, sub: SubOntology) -> Entity:
        identifier = f"CHEBI:{self._next_id}"
        self._next_id += 1
        entity = Entity(identifier=identifier, name=name, sub_ontology=sub)
        self.ontology.add_entity(entity)
        return entity

    def _add_chemical(self, name: str, parent_id: Optional[str]) -> Entity:
        entity = self._new_entity(name, SubOntology.CHEMICAL)
        self.chemical_ids.append(entity.identifier)
        if parent_id is None:
            self.depth[entity.identifier] = 0
            self.family_of[entity.identifier] = entity.identifier
        else:
            self.ontology.add_statement(entity.identifier, IS_A, parent_id)
            self.depth[entity.identifier] = self.depth[parent_id] + 1
            self.family_of[entity.identifier] = self.family_of[parent_id]
        return entity

    def _maybe_extra_parents(self, entity_id: str):
        """Attach up to two extra is_a parents with strictly smaller depth.

        Depth-ordered edges keep the hierarchy a DAG by construction.
        """
        my_depth = self.depth[entity_id]
        if my_depth == 0:
            return
        candidates = [
            other
            for other in self.chemical_ids
            if self.depth[other] < my_depth and other != entity_id
        ]
        if not candidates:
            return
        draws = self.rng.random(2)
        n_extra = int(draws[0] < self.config.extra_parent_probability) + int(
            draws[1] < self.config.extra_parent_probability * 0.3
        )
        for _ in range(n_extra):
            parent = candidates[int(self.rng.integers(0, len(candidates)))]
            if not self.ontology.has_statement(entity_id, IS_A, parent):
                self.ontology.add_statement(entity_id, IS_A, parent)

    # -- sub-ontology construction -------------------------------------------

    def build_roles(self):
        by_name: Dict[str, str] = {}
        for name, parent_name in ROLE_TREE:
            self.names.claim(name)
            entity = self._new_entity(name, SubOntology.ROLE)
            by_name[name] = entity.identifier
            if parent_name is not None:
                self.ontology.add_statement(entity.identifier, IS_A, by_name[parent_name])
        parent_names = {parent for _, parent in ROLE_TREE if parent}
        self.role_leaf_ids = [
            by_name[name] for name, _ in ROLE_TREE if name not in parent_names
        ]

    def build_subatomic(self):
        root = self._new_entity("subatomic particle", SubOntology.SUBATOMIC)
        self.names.claim(root.name)
        count = min(self.config.n_subatomic, len(SUBATOMIC_PARTICLES))
        for name in SUBATOMIC_PARTICLES[:count]:
            self.names.claim(name)
            entity = self._new_entity(name, SubOntology.SUBATOMIC)
            self.ontology.add_statement(entity.identifier, IS_A, root.identifier)
        for index in range(self.config.n_subatomic - count):
            entity = self._new_entity(f"excited particle state {index + 1}",
                                      SubOntology.SUBATOMIC)
            self.ontology.add_statement(entity.identifier, IS_A, root.identifier)

    def grow_chemical_tree(self, n_grow: int):
        root = self._add_chemical("chemical entity", None)
        self.names.claim(root.name)
        for class_name in CHEMICAL_ROOT_CLASSES:
            self.names.claim(class_name)
            family = self._add_chemical(class_name, root.identifier)
            # Root families are their own family anchors for role affinity.
            self.family_of[family.identifier] = family.identifier
        growable = self.chemical_ids[1:]  # exclude the global root
        for _ in range(n_grow):
            parent_id = growable[int(self.rng.integers(0, len(growable)))]
            parent = self.ontology.entity(parent_id)
            if self.rng.random() < self.config.compositional_fraction:
                name = self.names.compositional(parent.name)
            else:
                name = self.names.trivial()
            child = self._add_chemical(name, parent_id)
            self._maybe_extra_parents(child.identifier)
            if self.depth[child.identifier] < self.config.max_depth:
                growable.append(child.identifier)

    # -- non-hierarchy relations ---------------------------------------------

    def _relation_budget(self, relation_name: str) -> int:
        density = _RELATION_DENSITY[relation_name]
        return max(1, int(round(density * self.config.n_chemical_entities)))

    def add_roles(self):
        """``has_role`` edges with family-correlated role preferences."""
        budget = self._relation_budget(HAS_ROLE.name)
        families = sorted(set(self.family_of.values()))
        preferred: Dict[str, List[str]] = {}
        for family in families:
            chosen = self.rng.choice(
                len(self.role_leaf_ids),
                size=min(self.config.role_affinities, len(self.role_leaf_ids)),
                replace=False,
            )
            preferred[family] = [self.role_leaf_ids[int(i)] for i in chosen]
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20:
            attempts += 1
            subject = self.chemical_ids[int(self.rng.integers(0, len(self.chemical_ids)))]
            family = self.family_of.get(subject, subject)
            if self.rng.random() < 0.8 and family in preferred:
                pool = preferred[family]
            else:
                pool = self.role_leaf_ids
            role = pool[int(self.rng.integers(0, len(pool)))]
            if not self.ontology.has_statement(subject, HAS_ROLE, role):
                self.ontology.add_statement(subject, HAS_ROLE, role)
                added += 1

    def add_conjugate_pairs(self):
        """Acid/base pairs: ``X-ate is_conjugate_base_of X-ic acid`` + inverse."""
        budget = self._relation_budget(IS_CONJUGATE_BASE_OF.name)
        acids = [
            cid
            for cid in self.chemical_ids
            if self.ontology.entity(cid).name.endswith("acid")
        ]
        self.rng.shuffle(acids)
        for acid_id in acids[:budget]:
            acid = self.ontology.entity(acid_id)
            base_name = _conjugate_base_name(acid.name)
            if not self.names.claim(base_name):
                continue
            parent = self.ontology.parents(acid_id)
            parent_id = next(iter(sorted(parent)), None)
            base = self._add_chemical(base_name, parent_id)
            self.ontology.add_statement(base.identifier, IS_CONJUGATE_BASE_OF, acid_id)
            self.ontology.add_statement(acid_id, IS_CONJUGATE_ACID_OF, base.identifier)

    def add_parts(self):
        """Composite entities: ``sodium X has_part X``-style salts."""
        budget = self._relation_budget(HAS_PART.name)
        counter_ions = ("sodium", "potassium", "calcium", "magnesium",
                        "ammonium", "lithium", "zinc", "cobalt")
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20:
            attempts += 1
            part_id = self.chemical_ids[int(self.rng.integers(0, len(self.chemical_ids)))]
            part = self.ontology.entity(part_id)
            ion = counter_ions[int(self.rng.integers(0, len(counter_ions)))]
            name = f"{ion} {part.name}"
            if not self.names.claim(name):
                continue
            parent_id = next(iter(sorted(self.ontology.parents(part_id))), None)
            whole = self._add_chemical(name, parent_id)
            self.ontology.add_statement(whole.identifier, HAS_PART, part_id)
            added += 1

    def _paired_variants(self, relation, budget: int, prefixes: Sequence[str]):
        """Create name-variant pairs linked by a (one-directional) relation."""
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20:
            attempts += 1
            base_id = self.chemical_ids[int(self.rng.integers(0, len(self.chemical_ids)))]
            base = self.ontology.entity(base_id)
            left_name = f"{prefixes[0]}{base.name}"
            right_name = f"{prefixes[1]}{base.name}"
            if left_name == right_name:
                continue
            if not self.names.claim(left_name):
                continue
            if not self.names.claim(right_name):
                continue
            left = self._add_chemical(left_name, base_id)
            right = self._add_chemical(right_name, base_id)
            self.ontology.add_statement(left.identifier, relation, right.identifier)
            added += 1

    def add_enantiomers(self):
        self._paired_variants(
            IS_ENANTIOMER_OF,
            self._relation_budget(IS_ENANTIOMER_OF.name),
            ("(R)-", "(S)-"),
        )

    def add_tautomers(self):
        self._paired_variants(
            IS_TAUTOMER_OF,
            self._relation_budget(IS_TAUTOMER_OF.name),
            ("keto-", "enol-"),
        )

    def add_parent_hydrides(self):
        """``X has_parent_hydride X-ane`` style edges to hydride skeletons."""
        budget = self._relation_budget(HAS_PARENT_HYDRIDE.name)
        hydride_names = ["methane", "ethane", "propane", "butane", "pentane",
                         "hexane", "benzene", "naphthalene", "indole", "purine",
                         "oxane", "18-oxayohimban"]
        hydride_ids = []
        root_id = self.chemical_ids[0]
        for name in hydride_names:
            if self.names.claim(name):
                hydride = self._add_chemical(name, root_id)
                hydride_ids.append(hydride.identifier)
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20:
            attempts += 1
            subject = self.chemical_ids[int(self.rng.integers(0, len(self.chemical_ids)))]
            hydride = hydride_ids[int(self.rng.integers(0, len(hydride_ids)))]
            if subject == hydride:
                continue
            if not self.ontology.has_statement(subject, HAS_PARENT_HYDRIDE, hydride):
                self.ontology.add_statement(subject, HAS_PARENT_HYDRIDE, hydride)
                added += 1

    def add_substituent_groups(self):
        """``X-yl group is_substituent_group_from X`` edges."""
        budget = self._relation_budget(IS_SUBSTITUENT_GROUP_FROM.name)
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20:
            attempts += 1
            base_id = self.chemical_ids[int(self.rng.integers(0, len(self.chemical_ids)))]
            base = self.ontology.entity(base_id)
            name = f"{base.name} yl group"
            if not self.names.claim(name):
                continue
            parent_id = next(iter(sorted(self.ontology.parents(base_id))), None)
            group = self._add_chemical(name, parent_id)
            self.ontology.add_statement(
                group.identifier, IS_SUBSTITUENT_GROUP_FROM, base_id
            )
            added += 1

    def add_functional_parents(self):
        """``has_functional_parent`` edges from derived to base entities.

        We link compositional children (functional modifications by name
        construction) to an entity in the ancestry of their parent — the
        closest offline analogue of ChEBI's functional-modification edges.
        """
        budget = self._relation_budget(HAS_FUNCTIONAL_PARENT.name)
        candidates = [cid for cid in self.chemical_ids if self.depth.get(cid, 0) >= 2]
        added = 0
        attempts = 0
        while added < budget and attempts < budget * 20 and candidates:
            attempts += 1
            subject = candidates[int(self.rng.integers(0, len(candidates)))]
            parents = sorted(self.ontology.parents(subject))
            if not parents:
                continue
            grand = sorted(self.ontology.parents(parents[0]))
            target = grand[0] if grand and self.rng.random() < 0.5 else parents[0]
            if target == subject:
                continue
            if not self.ontology.has_statement(subject, HAS_FUNCTIONAL_PARENT, target):
                self.ontology.add_statement(subject, HAS_FUNCTIONAL_PARENT, target)
                added += 1

    # -- orchestration --------------------------------------------------------

    def run(self) -> Ontology:
        self.build_roles()
        self.build_subatomic()
        # Reserve headroom for derived entities (conjugates, pairs, parts...)
        # so the final chemical count lands near the configured target.
        derived_budget = sum(
            self._relation_budget(name)
            for name in (
                IS_CONJUGATE_BASE_OF.name,
                HAS_PART.name,
                IS_SUBSTITUENT_GROUP_FROM.name,
            )
        ) + 2 * (
            self._relation_budget(IS_ENANTIOMER_OF.name)
            + self._relation_budget(IS_TAUTOMER_OF.name)
        )
        n_grow = max(
            10,
            self.config.n_chemical_entities
            - len(CHEMICAL_ROOT_CLASSES)
            - 1
            - derived_budget,
        )
        self.grow_chemical_tree(n_grow)
        self.add_roles()
        self.add_conjugate_pairs()
        self.add_parts()
        self.add_enantiomers()
        self.add_tautomers()
        self.add_parent_hydrides()
        self.add_substituent_groups()
        self.add_functional_parents()
        return self.ontology


def synthesize_chebi_like(config: Optional[SynthesisConfig] = None) -> Ontology:
    """Generate a synthetic ChEBI-like ontology.

    >>> onto = synthesize_chebi_like(SynthesisConfig(n_chemical_entities=200))
    >>> onto.num_entities > 200
    True
    """
    from repro.obs.trace import span

    config = config or SynthesisConfig()
    with span(
        "ontology.synthesis", n_chemical_entities=config.n_chemical_entities
    ) as sp:
        ontology = _Synthesizer(config).run()
        sp.incr("entities", ontology.num_entities)
        sp.incr("statements", ontology.num_statements)
    return ontology


__all__ = [
    "SynthesisConfig",
    "synthesize_chebi_like",
    "CHEMICAL_ROOT_CLASSES",
    "SUBSTITUENTS",
    "ROLE_TREE",
    "SUBATOMIC_PARTICLES",
]
