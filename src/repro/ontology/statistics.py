"""Ontology census statistics (paper Section 3.1, Tables A1/A3).

The paper reports entity counts per sub-ontology (145,869 chemical entities,
1,550 roles, 42 subatomic particles) and the highly skewed relationship
distribution (``is_a`` 72.3%, ``has_role`` 13.2%, ...).  :func:`census`
computes the same breakdown for any :class:`~repro.ontology.model.Ontology`,
and carries the paper's reference numbers for side-by-side reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ontology.model import Ontology, SubOntology
from repro.ontology.relations import ALL_RELATIONS

#: ChEBI Feb-2022 reference counts from the paper (Section 3.1 / Table A3).
CHEBI_REFERENCE_ENTITY_COUNTS: Dict[str, int] = {
    SubOntology.CHEMICAL.value: 145_869,
    SubOntology.ROLE.value: 1_550,
    SubOntology.SUBATOMIC.value: 42,
}

CHEBI_REFERENCE_RELATION_COUNTS: Dict[str, int] = {
    r.name: r.chebi_count for r in ALL_RELATIONS
}


@dataclass(frozen=True)
class OntologyCensus:
    """Summary statistics of an ontology.

    Attributes:
        total_entities: number of entities.
        entities_by_sub_ontology: counts per sub-ontology value.
        total_statements: number of triples.
        statements_by_relation: counts per relationship name.
    """

    total_entities: int
    entities_by_sub_ontology: Dict[str, int]
    total_statements: int
    statements_by_relation: Dict[str, int]

    def relation_shares(self) -> Dict[str, float]:
        """Fraction of all statements per relationship, descending."""
        if not self.total_statements:
            return {}
        items = sorted(self.statements_by_relation.items(), key=lambda kv: -kv[1])
        return {name: count / self.total_statements for name, count in items}

    def top_relations(self, n: int = 3) -> List[Tuple[str, int]]:
        """The ``n`` most frequent relationship types with counts."""
        return sorted(
            self.statements_by_relation.items(), key=lambda kv: -kv[1]
        )[:n]


def census(ontology: Ontology) -> OntologyCensus:
    """Compute entity and relationship census statistics for ``ontology``."""
    by_sub: Dict[str, int] = {}
    for entity in ontology.entities():
        key = entity.sub_ontology.value
        by_sub[key] = by_sub.get(key, 0) + 1
    by_relation: Dict[str, int] = {}
    for statement in ontology.statements():
        name = statement.relation.name
        by_relation[name] = by_relation.get(name, 0) + 1
    return OntologyCensus(
        total_entities=ontology.num_entities,
        entities_by_sub_ontology=by_sub,
        total_statements=ontology.num_statements,
        statements_by_relation=by_relation,
    )


__all__ = [
    "OntologyCensus",
    "census",
    "CHEBI_REFERENCE_ENTITY_COUNTS",
    "CHEBI_REFERENCE_RELATION_COUNTS",
]
