"""Graph queries over an :class:`~repro.ontology.model.Ontology`.

These power the task-3 negative generator (sibling lookup via shared ``is_a``
parents) and the census statistics (ancestor closure, depth).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.ontology.model import Ontology


def siblings(ontology: Ontology, identifier: str) -> Set[str]:
    """Entities sharing at least one direct ``is_a`` parent with ``identifier``.

    This is the paper's sibling notion for task 3:
    ``{o2 | p(o1) ∩ p(o2) ≠ ∅}`` excluding the entity itself.
    """
    shared: Set[str] = set()
    for parent in ontology.parents(identifier):
        shared |= ontology.children(parent)
    shared.discard(identifier)
    return shared


def ancestors(ontology: Ontology, identifier: str) -> Set[str]:
    """Transitive ``is_a`` ancestors (excluding the entity itself)."""
    seen: Set[str] = set()
    frontier = deque(ontology.parents(identifier))
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(ontology.parents(node) - seen)
    return seen


def descendants(ontology: Ontology, identifier: str) -> Set[str]:
    """Transitive ``is_a`` descendants (excluding the entity itself)."""
    seen: Set[str] = set()
    frontier = deque(ontology.children(identifier))
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(ontology.children(node) - seen)
    return seen


def depth_map(ontology: Ontology) -> Dict[str, int]:
    """Shortest ``is_a`` distance from any root for every entity.

    Roots have depth 0.  Entities unreachable from a root via child edges
    (possible only in malformed inputs) are assigned depth 0 as standalone
    roots, which is how :meth:`Ontology.roots` already treats them.
    """
    depths: Dict[str, int] = {}
    frontier = deque((root, 0) for root in ontology.roots())
    while frontier:
        node, depth = frontier.popleft()
        if node in depths and depths[node] <= depth:
            continue
        depths[node] = depth
        for child in ontology.children(node):
            frontier.append((child, depth + 1))
    for entity_id in ontology.entity_ids():
        depths.setdefault(entity_id, 0)
    return depths


def is_dag(ontology: Ontology) -> bool:
    """True when the ``is_a`` subgraph has no directed cycles.

    ChEBI's ``is_a`` hierarchy is a DAG; the synthetic generator must preserve
    that, and the OBO loader verifies it.
    """
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    for start in ontology.entity_ids():
        if start in state:
            continue
        stack: List[tuple] = [(start, iter(ontology.parents(start)))]
        state[start] = 0
        while stack:
            node, edges = stack[-1]
            advanced = False
            for parent in edges:
                status = state.get(parent)
                if status == 0:
                    return False
                if status is None:
                    state[parent] = 0
                    stack.append((parent, iter(ontology.parents(parent))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 1
                stack.pop()
    return True


__all__ = ["siblings", "ancestors", "descendants", "depth_map", "is_dag"]
