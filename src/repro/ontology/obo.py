"""Minimal OBO 1.2 reader/writer.

ChEBI is distributed in OBO format.  This module round-trips the subset the
experiments use: ``[Term]`` stanzas with ``id``, ``name``, ``def``,
``synonym``, ``subset`` (mapped to sub-ontologies), ``is_a`` lines and
``relationship: <type> <target>`` lines.  Users with a real ChEBI download can
load it with :func:`load_obo` and run the full benchmark on genuine data; the
writer exists so the synthetic ontology can be exported, inspected, and
round-tripped in tests.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.ontology.model import Entity, Ontology, SubOntology
from repro.ontology.queries import is_dag
from repro.ontology.relations import IS_A, relation_by_name

_SUBSET_TO_SUBONTOLOGY = {
    "1_STAR": SubOntology.CHEMICAL,  # ChEBI star subsets are orthogonal;
    "2_STAR": SubOntology.CHEMICAL,  # namespace handling below overrides.
    "3_STAR": SubOntology.CHEMICAL,
}

_NAMESPACE_TO_SUBONTOLOGY = {
    "chebi_ontology": SubOntology.CHEMICAL,
    "chemical_entity": SubOntology.CHEMICAL,
    "role": SubOntology.ROLE,
    "subatomic_particle": SubOntology.SUBATOMIC,
}

_DEF_RE = re.compile(r'^"(?P<text>(?:[^"\\]|\\.)*)"')
_SYNONYM_RE = re.compile(r'^"(?P<text>(?:[^"\\]|\\.)*)"')


class OboParseError(ValueError):
    """Raised on malformed OBO input, with a line number in the message."""


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _strip_comment(line: str) -> str:
    # OBO comments start with '!' outside quoted strings; the fields we parse
    # never contain '!' inside quotes except defs, handled by regex first.
    in_quote = False
    for index, char in enumerate(line):
        if char == '"' and (index == 0 or line[index - 1] != "\\"):
            in_quote = not in_quote
        elif char == "!" and not in_quote:
            return line[:index].rstrip()
    return line.rstrip()


def load_obo(source: Union[str, Path, TextIO], name: str = "obo") -> Ontology:
    """Parse an OBO document into an :class:`Ontology`.

    ``source`` may be a path or an open text stream.  Statements referencing
    terms that are never defined are rejected; ``is_obsolete: true`` terms are
    skipped (ChEBI keeps obsolete stubs).  The resulting ``is_a`` graph is
    verified acyclic.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_obo(handle, name=name)

    terms: List[dict] = []
    current: Optional[dict] = None
    in_term_stanza = False

    for line_number, raw in enumerate(source, start=1):
        line = _strip_comment(raw)
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("["):
            in_term_stanza = stripped == "[Term]"
            if in_term_stanza:
                current = {"is_a": [], "relationships": [], "synonyms": []}
                terms.append(current)
            continue
        if not in_term_stanza or current is None:
            continue
        if ":" not in stripped:
            raise OboParseError(f"line {line_number}: expected 'tag: value'")
        tag, _, value = stripped.partition(":")
        tag = tag.strip()
        value = value.strip()
        if tag == "id":
            current["id"] = value
        elif tag == "name":
            current["name"] = value
        elif tag == "namespace":
            current["namespace"] = value
        elif tag == "def":
            match = _DEF_RE.match(value)
            if not match:
                raise OboParseError(f"line {line_number}: malformed def line")
            current["def"] = _unescape(match.group("text"))
        elif tag == "synonym":
            match = _SYNONYM_RE.match(value)
            if not match:
                raise OboParseError(f"line {line_number}: malformed synonym line")
            current["synonyms"].append(_unescape(match.group("text")))
        elif tag == "is_a":
            current["is_a"].append(value.split()[0])
        elif tag == "relationship":
            parts = value.split()
            if len(parts) < 2:
                raise OboParseError(
                    f"line {line_number}: relationship needs '<type> <target>'"
                )
            current["relationships"].append((parts[0], parts[1]))
        elif tag == "is_obsolete" and value.lower() == "true":
            current["obsolete"] = True

    ontology = Ontology(name=name)
    for term in terms:
        if term.get("obsolete"):
            continue
        if "id" not in term or "name" not in term:
            raise OboParseError("term stanza missing id or name")
        sub = _NAMESPACE_TO_SUBONTOLOGY.get(
            term.get("namespace", ""), SubOntology.CHEMICAL
        )
        ontology.add_entity(
            Entity(
                identifier=term["id"],
                name=term["name"],
                sub_ontology=sub,
                definition=term.get("def", ""),
                synonyms=tuple(term["synonyms"]),
            )
        )
    for term in terms:
        if term.get("obsolete"):
            continue
        for parent in term["is_a"]:
            ontology.add_statement(term["id"], IS_A, parent)
        for rel_name, target in term["relationships"]:
            ontology.add_statement(term["id"], relation_by_name(rel_name), target)
    if not is_dag(ontology):
        raise OboParseError("is_a hierarchy contains a cycle")
    return ontology


def dump_obo(ontology: Ontology, target: Union[str, Path, TextIO]) -> None:
    """Serialise ``ontology`` to OBO 1.2.

    Output round-trips through :func:`load_obo` (entities, sub-ontologies via
    ``namespace``, definitions, synonyms, and all statements).
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            dump_obo(ontology, handle)
        return

    target.write("format-version: 1.2\n")
    target.write(f"ontology: {ontology.name}\n")
    statements_by_subject: Dict[str, List] = {}
    for statement in ontology.statements():
        statements_by_subject.setdefault(statement.subject, []).append(statement)
    for entity in ontology.entities():
        target.write("\n[Term]\n")
        target.write(f"id: {entity.identifier}\n")
        target.write(f"name: {entity.name}\n")
        target.write(f"namespace: {entity.sub_ontology.value}\n")
        if entity.definition:
            target.write(f'def: "{_escape(entity.definition)}" []\n')
        for synonym in entity.synonyms:
            target.write(f'synonym: "{_escape(synonym)}" RELATED []\n')
        for statement in statements_by_subject.get(entity.identifier, []):
            if statement.relation.name == IS_A.name:
                target.write(f"is_a: {statement.object}\n")
            else:
                target.write(
                    f"relationship: {statement.relation.name} {statement.object}\n"
                )


def dumps_obo(ontology: Ontology) -> str:
    """Serialise to an OBO string (convenience wrapper over :func:`dump_obo`)."""
    buffer = io.StringIO()
    dump_obo(ontology, buffer)
    return buffer.getvalue()


__all__ = ["load_obo", "dump_obo", "dumps_obo", "OboParseError"]
