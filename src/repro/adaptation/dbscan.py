"""DBSCAN density clustering from scratch (Ester et al.; Schubert et al. 2017).

Used by the task-oriented adaptation (Algorithm 2) to group the embeddings of
high-frequency tokens into clusters of near-identical semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

NOISE = -1


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix, shape ``(n, n)``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    sq = np.sum(points**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (points @ points.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)  # remove floating-point residue: d(x, x) = 0
    return np.sqrt(d2)


def estimate_eps(points: np.ndarray, k: int = 4, quantile: float = 0.5) -> float:
    """Heuristic eps: a quantile of k-th nearest-neighbour distances.

    The classic elbow heuristic, automated: take the distance to the ``k``-th
    neighbour for every point and return the requested quantile.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    distances = pairwise_distances(points)
    n = distances.shape[0]
    if n <= k:
        raise ValueError(f"need more than k={k} points, got {n}")
    kth = np.sort(distances, axis=1)[:, k]
    eps = float(np.quantile(kth, quantile))
    if eps <= 0.0:
        # Degenerate case: many identical points; any positive eps groups them.
        eps = float(np.max(distances)) * 1e-6 + 1e-12
    return eps


def dbscan(
    points: np.ndarray,
    eps: Optional[float] = None,
    min_samples: int = 4,
) -> np.ndarray:
    """Cluster ``points``; returns integer labels with ``-1`` for noise.

    ``eps=None`` uses :func:`estimate_eps`.  Labels are assigned in
    discovery order, so output is deterministic for a given input order.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    if min_samples < 1:
        raise ValueError("min_samples must be positive")
    n = points.shape[0]
    if eps is None:
        eps = estimate_eps(points, k=min(min_samples, n - 1))
    if eps <= 0:
        raise ValueError("eps must be positive")

    distances = pairwise_distances(points)
    neighbours = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    core = np.array([len(nbrs) >= min_samples for nbrs in neighbours])

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for start in range(n):
        if labels[start] != NOISE or not core[start]:
            continue
        labels[start] = cluster
        frontier = deque(neighbours[start])
        while frontier:
            point = int(frontier.popleft())
            if labels[point] == NOISE:
                labels[point] = cluster
                if core[point]:
                    frontier.extend(neighbours[point])
        cluster += 1
    return labels


__all__ = ["dbscan", "estimate_eps", "pairwise_distances", "NOISE"]
