"""Token and feature-importance analyses behind the adaptation hypothesis.

Reproduces the paper's Table A5 (top-50 head/tail tokens) and the Figure A1
observation that, without adaptation, forests on semantic embeddings put
little importance on head (subject) entities while random-embedding forests
attend to them.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.ml.forest import RandomForest
from repro.text.tokenizer import ChemTokenizer

COMPONENT_NAMES = ("subject", "relation", "object")


def token_frequency_census(
    positives: Sequence[LabeledTriple],
    top_k: int = 50,
    tokenizer: Optional[ChemTokenizer] = None,
) -> Dict[str, List[Tuple[str, int]]]:
    """Top-``top_k`` tokens in head and tail entities of positive triples.

    Returns ``{"head": [(token, count), ...], "tail": [...]}`` — the paper's
    Table A5.
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    tokenizer = tokenizer or ChemTokenizer()
    head: Counter = Counter()
    tail: Counter = Counter()
    for triple in positives:
        if triple.label != 1:
            continue
        head.update(tokenizer(triple.subject_name))
        tail.update(tokenizer(triple.object_name))
    if not head and not tail:
        raise ValueError("no positive triples provided")
    return {
        "head": head.most_common(top_k),
        "tail": tail.most_common(top_k),
    }


def component_attention(forest: RandomForest, dim: int) -> Dict[str, float]:
    """Share of Random-Forest importance per triple component.

    ``dim`` is the embedding dimensionality (features are the concatenation
    of three ``dim``-wide component blocks).  Returns a dict over
    ``subject`` / ``relation`` / ``object`` summing to 1 (when the forest
    found any splits).
    """
    blocks = forest.component_importances(dim)
    total = blocks.sum()
    if total > 0:
        blocks = blocks / total
    return dict(zip(COMPONENT_NAMES, (float(b) for b in blocks)))


def short_token_share(
    census: Dict[str, List[Tuple[str, int]]], max_length: int = 2
) -> Dict[str, float]:
    """Fraction of the top-token *mass* with length <= ``max_length``.

    Quantifies the Table A5 pathology: head entities are dominated by short
    locant tokens, tail entities much less so.
    """
    shares = {}
    for side, tokens in census.items():
        total = sum(count for _, count in tokens)
        short = sum(count for token, count in tokens if len(token) <= max_length)
        shares[side] = short / total if total else 0.0
    return shares


__all__ = [
    "token_frequency_census",
    "component_attention",
    "short_token_share",
    "COMPONENT_NAMES",
]
