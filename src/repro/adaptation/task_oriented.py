"""Task-oriented adaptation — the paper's Algorithm 2.

Embedding-specific identification of less semantically meaningful tokens:

1. take the top 25% most frequent tokens among positive-triple head and tail
   entities;
2. cluster their embedding vectors with DBSCAN;
3. for ``I`` iterations, sample ``N`` unique entities; compute each entity's
   centroid representation with and without a cluster's tokens and record the
   variance of pairwise centroid distances (``D1`` vs ``D2``);
4. a two-sample t-test per cluster: when removing the cluster's tokens
   changes the distance-variance significantly (p <= 0.05), the cluster's
   tokens become stop words.

The resulting stop-word set plugs into the feature pipeline as a token
filter, exactly like the naive adaptation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import stats

from repro.adaptation.dbscan import NOISE, dbscan, pairwise_distances
from repro.core.triples import LabeledTriple
from repro.embeddings.base import EmbeddingModel
from repro.text.tokenizer import ChemTokenizer
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class TaskOrientedConfig:
    """Algorithm 2 parameters.

    Attributes:
        top_fraction: share of most frequent tokens analysed (paper: 25%).
        n_entities: entities sampled per iteration (paper: 5,000; scaled
            down by default because pairwise distances are quadratic).
        n_iterations: sampling repetitions feeding the t-test (paper: 10).
        p_threshold: significance level for stop-word promotion.
        eps: DBSCAN radius (``None`` = automatic elbow heuristic).
        min_samples: DBSCAN core-point threshold.
        seed: sampling seed.
    """

    top_fraction: float = 0.25
    n_entities: int = 300
    n_iterations: int = 10
    p_threshold: float = 0.05
    eps: Optional[float] = None
    min_samples: int = 3
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        if self.n_entities < 3 or self.n_iterations < 2:
            raise ValueError("need n_entities >= 3 and n_iterations >= 2")
        if not 0.0 < self.p_threshold < 1.0:
            raise ValueError("p_threshold must be in (0, 1)")


def head_tail_token_frequencies(
    positives: Sequence[LabeledTriple],
    tokenizer: Optional[ChemTokenizer] = None,
) -> Counter:
    """Token frequencies over positive-triple head and tail entity names."""
    tokenizer = tokenizer or ChemTokenizer()
    counter: Counter = Counter()
    for triple in positives:
        counter.update(tokenizer(triple.subject_name))
        counter.update(tokenizer(triple.object_name))
    if not counter:
        raise ValueError("no tokens found in positive triples")
    return counter


def _distance_variance(matrix: np.ndarray) -> float:
    """Variance of pairwise Euclidean distances between matrix rows."""
    distances = pairwise_distances(matrix)
    upper = distances[np.triu_indices(distances.shape[0], k=1)]
    return float(np.var(upper))


def _entity_centroids(
    entity_tokens: List[List[str]],
    embeddings: EmbeddingModel,
    exclude: Set[str],
) -> np.ndarray:
    rows = []
    for tokens in entity_tokens:
        kept = [t for t in tokens if t not in exclude]
        if not kept:
            kept = tokens
        rows.append(embeddings.mean_vector(kept))
    return np.stack(rows)


def select_stop_tokens(
    positives: Sequence[LabeledTriple],
    embeddings: EmbeddingModel,
    config: Optional[TaskOrientedConfig] = None,
    tokenizer: Optional[ChemTokenizer] = None,
) -> Set[str]:
    """Run Algorithm 2 and return the stop-word set for ``embeddings``.

    Phrase-level embedding models have no per-token vectors to cluster;
    the paper accordingly applies no token selection to PubmedBERT
    embeddings (Tables 3a/A7 dashes), and this function raises for them.
    """
    if embeddings.phrase_level:
        raise ValueError(
            "task-oriented adaptation requires a token-level embedding model"
        )
    config = config or TaskOrientedConfig()
    tokenizer = tokenizer or ChemTokenizer()
    rng = derive_rng(config.seed, "task-oriented", embeddings.name)

    token_freq = head_tail_token_frequencies(positives, tokenizer)
    ordered = sorted(token_freq.items(), key=lambda kv: (-kv[1], kv[0]))
    n_top = max(config.min_samples + 1, int(len(ordered) * config.top_fraction))
    top_tokens = [token for token, _ in ordered[:n_top]]

    vectors = np.stack([embeddings.vector(token) for token in top_tokens])
    labels = dbscan(vectors, eps=config.eps, min_samples=config.min_samples)
    clusters: Dict[int, List[str]] = {}
    for token, label in zip(top_tokens, labels):
        if label != NOISE:
            clusters.setdefault(int(label), []).append(token)
    if not clusters:
        return set()

    # Unique head/tail entities of positive triples, pre-tokenised once.
    entity_names: Dict[str, List[str]] = {}
    for triple in positives:
        for name in (triple.subject_name, triple.object_name):
            if name not in entity_names:
                tokens = tokenizer(name)
                if tokens:
                    entity_names[name] = tokens
    all_entities = list(entity_names.values())
    if len(all_entities) < 3:
        return set()
    n_sample = min(config.n_entities, len(all_entities))

    baseline_vars: Dict[int, List[float]] = {c: [] for c in clusters}
    ablated_vars: Dict[int, List[float]] = {c: [] for c in clusters}
    for _ in range(config.n_iterations):
        chosen = rng.choice(len(all_entities), size=n_sample, replace=False)
        sample = [all_entities[int(i)] for i in chosen]
        base_matrix = _entity_centroids(sample, embeddings, exclude=set())
        base_var = _distance_variance(base_matrix)
        for cluster_id, tokens in clusters.items():
            ablated = _entity_centroids(sample, embeddings, exclude=set(tokens))
            baseline_vars[cluster_id].append(base_var)
            ablated_vars[cluster_id].append(_distance_variance(ablated))

    stop_tokens: Set[str] = set()
    for cluster_id, tokens in clusters.items():
        base = baseline_vars[cluster_id]
        ablated = ablated_vars[cluster_id]
        if np.allclose(base, ablated):
            continue  # removing the cluster changed nothing
        _, p_value = stats.ttest_ind(base, ablated, equal_var=False)
        if np.isfinite(p_value) and p_value <= config.p_threshold:
            stop_tokens.update(tokens)
    return stop_tokens


def stopword_filter(stop_tokens: Set[str]) -> Callable[[List[str]], List[str]]:
    """Token filter dropping the given stop words (keeps all if none remain)."""

    def token_filter(tokens: List[str]) -> List[str]:
        kept = [t for t in tokens if t not in stop_tokens]
        return kept if kept else list(tokens)

    return token_filter


def task_oriented_filter(
    positives: Sequence[LabeledTriple],
    embeddings: EmbeddingModel,
    config: Optional[TaskOrientedConfig] = None,
) -> Callable[[List[str]], List[str]]:
    """Convenience: run Algorithm 2 and wrap the result as a token filter."""
    return stopword_filter(select_stop_tokens(positives, embeddings, config))


__all__ = [
    "TaskOrientedConfig",
    "head_tail_token_frequencies",
    "select_stop_tokens",
    "stopword_filter",
    "task_oriented_filter",
]
