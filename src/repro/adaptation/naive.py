"""Naive adaptation: length-based token filtering (paper Section 2.7).

"Which removes tokens on the basis of their length.  We only included tokens
of 3 or more characters in generation of entity representations.  Where all
tokens in the entity name were shorter than 3 letters, we included all
tokens."
"""

from __future__ import annotations

from typing import Callable, List


def naive_token_filter(min_length: int = 3) -> Callable[[List[str]], List[str]]:
    """Return a token filter keeping tokens with ``len >= min_length``.

    When no token qualifies, the original list is returned unchanged (the
    paper's all-short-tokens escape hatch).

    >>> flt = naive_token_filter()
    >>> flt(["3", "hydroxybutanoic", "acid"])
    ['hydroxybutanoic', 'acid']
    >>> flt(["2", "d"])
    ['2', 'd']
    """
    if min_length < 1:
        raise ValueError("min_length must be positive")

    def token_filter(tokens: List[str]) -> List[str]:
        kept = [token for token in tokens if len(token) >= min_length]
        return kept if kept else list(tokens)

    return token_filter


__all__ = ["naive_token_filter"]
