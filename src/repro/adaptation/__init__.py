"""Hypothesis-driven embedding adaptations (paper Section 2.7).

The paper observed that random embeddings beat semantic embeddings for
Random Forests on task 1, traced the effect to high-frequency short locant
tokens in head entities, and proposed two token-selection mitigations:

* **naive adaptation** — drop tokens shorter than three characters;
* **task-oriented adaptation** — Algorithm 2: cluster the top-25% most
  frequent tokens by their embeddings (DBSCAN), then keep a cluster's tokens
  as *stop words* when removing them significantly changes entity-centroid
  pairwise-distance variance (two-sample t-test over repeated entity samples).
"""

from repro.adaptation.analysis import (
    component_attention,
    token_frequency_census,
)
from repro.adaptation.dbscan import dbscan
from repro.adaptation.naive import naive_token_filter
from repro.adaptation.task_oriented import (
    TaskOrientedConfig,
    select_stop_tokens,
    stopword_filter,
    task_oriented_filter,
)

__all__ = [
    "naive_token_filter",
    "dbscan",
    "TaskOrientedConfig",
    "select_stop_tokens",
    "stopword_filter",
    "task_oriented_filter",
    "token_frequency_census",
    "component_attention",
]
