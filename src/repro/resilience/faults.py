"""Deterministic fault injection for the chat-completion path.

The retry / checkpoint machinery must be testable offline, so instead of a
flaky network we inject faults: :class:`FaultyClient` wraps any
:class:`~repro.llm.client.ChatClient` and, per a :class:`FaultPlan`, turns
individual calls into timeouts, HTTP 429/500s, malformed JSON bodies, or
corrupted completions.  Decisions are drawn deterministically from
``(plan seed, call index)``, so a faulty run is exactly reproducible.

The *error* fault kinds (``timeout``, ``http429``, ``http500``,
``malformed``) raise **before** consulting the wrapped client, so a delivery
that is retried to success consumes exactly one real completion — an ICL
table produced under an error-fault plan is byte-identical to the fault-free
table as long as retries outlast ``max_consecutive``.  The *corruption*
kinds (``garbage``, ``truncated``) consume a real completion and mangle it,
exercising the parser's graceful-degradation path instead.

:class:`FaultClock` is a virtual clock for the retry layer: ``sleep``
advances virtual time instantly, so backoff schedules are assertable and
fault-heavy test runs finish in milliseconds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.llm.client import ChatClient, ChatClientError
from repro.obs.trace import get_tracer
from repro.utils.rng import derive_rng, stable_digest

#: Fault kinds accepted by the spec grammar, in documentation order.
FAULT_KINDS = ("timeout", "http429", "http500", "malformed", "garbage", "truncated")

#: Kinds that raise (and are retryable) rather than corrupt the completion.
ERROR_FAULTS = frozenset({"timeout", "http429", "http500", "malformed"})

_GARBAGE_COMPLETION = "<<<%$#@ injected garbage completion @#$%>>>"


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind and its per-call injection rate."""

    kind: str
    rate: float

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")


class FaultPlan:
    """A deterministic schedule of injected faults.

    ``draw(index)`` checks each spec in order against an rng derived from
    ``(seed, index)`` and returns the first matching kind (or ``None``).
    ``max_consecutive`` bounds runs of injected faults so that a retry
    policy with more attempts than that is guaranteed to get through —
    the invariant behind the byte-identical-under-faults benchmark check.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        max_consecutive: int = 3,
    ):
        specs = list(specs)
        if not specs:
            raise ValueError("a fault plan needs at least one spec")
        if max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        self.specs: List[FaultSpec] = specs
        self.seed = seed
        self.max_consecutive = max_consecutive

    @classmethod
    def parse(
        cls, text: str, seed: int = 0, max_consecutive: int = 3
    ) -> "FaultPlan":
        """Parse the CLI spec grammar ``kind:rate[,kind:rate...]``.

        Example: ``timeout:0.1,http500:0.05,malformed:0.02``.
        """
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, rate_text = part.partition(":")
            if not sep:
                raise ValueError(
                    f"bad fault spec {part!r}: expected kind:rate "
                    f"(e.g. timeout:0.1)"
                )
            try:
                rate = float(rate_text)
            except ValueError:
                raise ValueError(
                    f"bad fault rate {rate_text!r} in {part!r}"
                ) from None
            specs.append(FaultSpec(kind.strip().lower(), rate))
        if not specs:
            raise ValueError(f"empty fault spec {text!r}")
        return cls(specs, seed=seed, max_consecutive=max_consecutive)

    def draw(self, index: int) -> Optional[str]:
        """The fault kind injected at call ``index``, or ``None``."""
        return self._draw(derive_rng(self.seed, "fault-plan", index))

    def draw_for(self, *labels: object) -> Optional[str]:
        """A fault draw keyed by content labels instead of call order.

        The concurrent delivery engine interleaves calls unpredictably, so
        a global call index would make the fault schedule depend on the
        thread schedule.  Keying each draw on ``(prompt-digest, repeat,
        attempt)`` keeps injection deterministic per *delivery*, whatever
        order deliveries run in.
        """
        return self._draw(derive_rng(self.seed, "fault-plan-delivery", *labels))

    def _draw(self, rng) -> Optional[str]:
        for spec in self.specs:
            if rng.random() < spec.rate:
                return spec.kind
        return None

    def describe(self) -> str:
        return ",".join(f"{s.kind}:{s.rate:g}" for s in self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({self.describe()!r}, seed={self.seed})"


class FaultyClient(ChatClient):
    """Wrap a chat client and inject faults per a :class:`FaultPlan`.

    Error faults raise :class:`~repro.llm.client.ChatClientError` without
    touching the wrapped client; corruption faults consume a real completion
    and mangle it.  ``injected`` tallies injections by kind, ``calls`` the
    total ``complete`` calls (including the failed ones).
    """

    def __init__(self, inner: ChatClient, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.calls = 0
        self.injected: Dict[str, int] = {}
        self._consecutive = 0
        self._lock = threading.Lock()
        #: Per-(prompt-digest, repeat) attempt counters for the indexed path.
        self._attempts: Dict[Tuple[str, int], int] = {}

    @property
    def name(self) -> str:
        return self.inner.name

    def skip_delivery(self, prompt: str) -> None:
        self.inner.skip_delivery(prompt)

    def complete(self, prompt: str) -> str:
        with self._lock:
            index = self.calls
            self.calls += 1
            kind = None
            if self._consecutive < self.plan.max_consecutive:
                kind = self.plan.draw(index)
            if kind is None:
                self._consecutive = 0
            else:
                self._consecutive += 1
        if kind is None:
            return self.inner.complete(prompt)
        return self._inject(kind, prompt, self.inner.complete)

    def complete_indexed(
        self, prompt: str, repeat: int, *, timeout_s: Optional[float] = None
    ) -> str:
        """Fault injection keyed per delivery, safe under concurrency.

        Draws come from ``(prompt-digest, repeat, attempt)`` — not the
        global call counter — so the schedule is a pure function of the
        delivery, whatever thread interleaving ran it; ``max_consecutive``
        bounds faults *per delivery*, preserving the guarantee that a retry
        policy with more attempts always gets through.
        """
        delivery = (stable_digest(prompt), int(repeat))
        with self._lock:
            self.calls += 1
            attempt = self._attempts.get(delivery, 0)
            self._attempts[delivery] = attempt + 1
        kind = None
        if attempt < self.plan.max_consecutive:
            kind = self.plan.draw_for(delivery[0], delivery[1], attempt)
        if kind is None:
            return self.inner.complete_indexed(
                prompt, repeat, timeout_s=timeout_s
            )
        return self._inject(
            kind,
            prompt,
            lambda p: self.inner.complete_indexed(p, repeat, timeout_s=timeout_s),
        )

    def _inject(self, kind: str, prompt: str, deliver) -> str:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1
        get_tracer().count(f"faults.injected.{kind}")
        if kind == "timeout":
            raise ChatClientError(
                "injected fault: request timed out", retryable=True, kind="timeout"
            )
        if kind == "http429":
            raise ChatClientError(
                "injected fault: HTTP 429", status=429, retryable=True, kind="http"
            )
        if kind == "http500":
            raise ChatClientError(
                "injected fault: HTTP 500", status=500, retryable=True, kind="http"
            )
        if kind == "malformed":
            raise ChatClientError(
                "injected fault: malformed (truncated) JSON body",
                retryable=True,
                kind="malformed",
            )
        # Corruption faults consume a real completion and end the error run.
        with self._lock:
            self._consecutive = 0
        text = deliver(prompt)
        if kind == "truncated":
            return text[: max(1, len(text) // 2)]
        return _GARBAGE_COMPLETION


class FaultClock:
    """Virtual clock: ``sleep`` advances time instantly and records waits."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: List[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (breaker cool-downs)."""
        self.now += seconds


__all__ = [
    "FAULT_KINDS",
    "ERROR_FAULTS",
    "FaultSpec",
    "FaultPlan",
    "FaultyClient",
    "FaultClock",
]
