"""repro.resilience — failure handling for the benchmark apparatus.

Three layers, composable and deterministic:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (exponential backoff
  with seeded jitter) and :class:`CircuitBreaker`, both on injectable
  clocks, with attempts/retries/give-ups counted through :mod:`repro.obs`;
* :mod:`repro.resilience.faults` — :class:`FaultyClient` + :class:`FaultPlan`
  inject timeouts, 429/500s, malformed bodies and corrupted completions at
  deterministic rates, so every retry path is testable offline;
* :mod:`repro.resilience.checkpoint` — :class:`Journal` (append-only,
  fsynced, torn-tail-tolerant) lets the ICL protocol and benchmark tables
  resume after a kill without recomputing completed deliveries.

The spec grammar accepted by ``FaultPlan.parse`` (and the CLI ``--faults``
flag) is ``kind:rate[,kind:rate...]``, e.g. ``timeout:0.1,http500:0.05``.
"""

from repro.resilience.checkpoint import CheckpointAbort, Journal
from repro.resilience.faults import (
    ERROR_FAULTS,
    FAULT_KINDS,
    FaultClock,
    FaultPlan,
    FaultSpec,
    FaultyClient,
)
from repro.resilience.retry import (
    SYSTEM_CLOCK,
    CircuitBreaker,
    CircuitOpenError,
    Clock,
    RetryError,
    RetryPolicy,
    is_retryable,
)

__all__ = [
    # retry
    "Clock",
    "SYSTEM_CLOCK",
    "is_retryable",
    "RetryError",
    "CircuitOpenError",
    "CircuitBreaker",
    "RetryPolicy",
    # faults
    "FAULT_KINDS",
    "ERROR_FAULTS",
    "FaultSpec",
    "FaultPlan",
    "FaultyClient",
    "FaultClock",
    # checkpoint
    "CheckpointAbort",
    "Journal",
]
