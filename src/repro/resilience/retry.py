"""Retry with exponential backoff, deterministic jitter, and a circuit breaker.

The repeated-delivery ICL protocol issues thousands of requests against a
remote chat endpoint; transient failures (timeouts, 429/5xx, garbled bodies)
must be retried rather than crash the table, and a persistently failing
endpoint must be cut off rather than hammered.  :class:`RetryPolicy` handles
the first case, :class:`CircuitBreaker` the second.

Time is injectable: both classes take a :class:`Clock`, so tests (and the
fault-injection demos) run backoff schedules on a virtual clock instantly —
see :class:`repro.resilience.faults.FaultClock`.  Jitter is deterministic,
derived from the policy seed via :func:`repro.utils.rng.derive_rng`, so a
given (seed, key, attempt) always produces the same delay.

Every attempt, retry, and give-up is counted through :mod:`repro.obs`
(``retry.attempts`` / ``retry.retries`` / ``retry.giveups``), and each
backoff wait emits a ``retry.backoff`` span, so run manifests account for
exactly how much resilience machinery a run exercised.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.trace import get_tracer, span
from repro.utils.rng import derive_rng


class Clock:
    """Injectable time source: real ``monotonic`` + ``sleep`` by default."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


#: The shared real-time clock used when none is injected.
SYSTEM_CLOCK = Clock()


def is_retryable(error: BaseException) -> bool:
    """Default retryability classification.

    Errors carrying an explicit ``retryable`` attribute (such as
    :class:`repro.llm.client.ChatClientError`) are believed; otherwise
    transient OS-level failures (timeouts, connection resets) are retryable
    and everything else — programming errors included — is not.
    """
    flag = getattr(error, "retryable", None)
    if flag is not None:
        return bool(flag)
    return isinstance(error, (TimeoutError, ConnectionError, OSError))


class RetryError(RuntimeError):
    """All attempts of a retried call failed with retryable errors."""

    def __init__(self, message: str, *, attempts: int, last_error: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open: calls are refused without being tried."""

    #: An open circuit is not cured by immediate retries.
    retryable = False


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cool-down.

    Closed (normal) -> open after ``failure_threshold`` consecutive
    failures; while open, :meth:`before_call` raises
    :class:`CircuitOpenError`.  After ``reset_timeout`` seconds the next
    call is allowed through (half-open): success closes the circuit, another
    failure re-opens it immediately.  Thread-safe.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Optional[Clock] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock or SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` while open."""
        with self._lock:
            if self._state != self.OPEN:
                return
            waited = self.clock.monotonic() - self._opened_at
            if waited >= self.reset_timeout:
                self._state = self.HALF_OPEN
                return
            raise CircuitOpenError(
                f"circuit open after {self._failures} consecutive failures; "
                f"{self.reset_timeout - waited:.1f}s until half-open probe"
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            should_open = (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if should_open:
                if self._state != self.OPEN:
                    get_tracer().count("circuit.opened")
                self._state = self.OPEN
                self._opened_at = self.clock.monotonic()

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker (gate + success/failure record)."""
        self.before_call()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Delay before retry ``n`` (0-based) is
    ``min(max_delay, base_delay * multiplier**n)`` scaled by a jitter factor
    in ``[1 - jitter, 1 + jitter]`` drawn deterministically from
    ``(seed, key, n)`` — repeated runs back off identically.
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    clock: Optional[Clock] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, key: object = 0) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter:
            rng = derive_rng(self.seed, "retry-jitter", key, attempt)
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def call(
        self,
        fn: Callable,
        *args,
        classify: Optional[Callable[[BaseException], bool]] = None,
        breaker: Optional[CircuitBreaker] = None,
        key: object = 0,
        **kwargs,
    ):
        """Run ``fn`` with retries; returns its result.

        Non-retryable errors (per ``classify``, default :func:`is_retryable`)
        propagate immediately; exhausted retries raise :class:`RetryError`
        wrapping the last failure.  ``breaker`` gates every attempt; its
        :class:`CircuitOpenError` propagates without consuming attempts.
        """
        classify = classify or is_retryable
        clock = self.clock or SYSTEM_CLOCK
        tracer = get_tracer()
        for attempt in range(self.max_attempts):
            if breaker is not None:
                breaker.before_call()
            tracer.count("retry.attempts")
            try:
                result = fn(*args, **kwargs)
            except Exception as error:
                if breaker is not None:
                    breaker.record_failure()
                if not classify(error):
                    raise
                if attempt + 1 >= self.max_attempts:
                    tracer.count("retry.giveups")
                    raise RetryError(
                        f"gave up after {self.max_attempts} attempts: {error}",
                        attempts=self.max_attempts,
                        last_error=error,
                    ) from error
                wait = self.delay(attempt, key)
                tracer.count("retry.retries")
                with span(
                    "retry.backoff",
                    attempt=attempt + 1,
                    delay_s=round(wait, 4),
                    error=type(error).__name__,
                ):
                    clock.sleep(wait)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "Clock",
    "SYSTEM_CLOCK",
    "is_retryable",
    "RetryError",
    "CircuitOpenError",
    "CircuitBreaker",
    "RetryPolicy",
]
