"""Checkpoint/resume for long-running delivery loops.

A :class:`Journal` is an append-only JSONL file of ``{"key", "value"}``
records, one per completed unit of work (for the ICL protocol: one
``repeat:query`` delivery outcome).  Each record is flushed and fsynced as
it is written, so a killed run loses at most the delivery in flight;
:meth:`Journal.load` tolerates a truncated final line, which is exactly
what a crash mid-append leaves behind.

A restarted run loads the journal, skips every journaled unit, and only
delivers the remainder — see ``run_icl_experiment(journal=...)`` — with the
resume recorded in the run manifest (``resumed: true``).
:class:`CheckpointAbort` is the controlled mid-run stop used by the
``--max-deliveries`` budget to demonstrate (and test) kill-and-resume.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

PathLike = Union[str, Path]


class CheckpointAbort(RuntimeError):
    """A run stopped early on purpose; the journal holds completed work."""

    def __init__(
        self,
        message: str,
        *,
        delivered: int = 0,
        journal_path: Optional[PathLike] = None,
    ):
        super().__init__(message)
        self.delivered = delivered
        self.journal_path = str(journal_path) if journal_path is not None else None


class Journal:
    """Append-only, crash-safe JSONL journal of completed work.

    Records are ``{"key": str, "value": <json>}``; ``load`` returns the
    key-to-value mapping of every intact record and stops at the first
    corrupt line (the torn tail of a crashed append).  ``record`` keeps the
    file handle open across calls and fsyncs each append by default.
    """

    def __init__(self, path: PathLike, sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self._handle = None
        # The concurrent delivery engine journals from worker threads; each
        # append (write + flush + fsync) must be one atomic unit so records
        # never interleave mid-line.
        self._lock = threading.Lock()

    def load(self) -> Dict[str, object]:
        """Completed entries on disk; ``{}`` when the journal doesn't exist."""
        entries: Dict[str, object] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except (FileNotFoundError, IsADirectoryError):
            return entries
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a crash; later bytes untrustworthy
                if not isinstance(record, dict) or "key" not in record:
                    break
                entries[str(record["key"])] = record.get("value")
        return entries

    def record(self, key: str, value: object) -> None:
        """Append one completed entry (flushed, and fsynced when ``sync``).

        Thread-safe: concurrent delivery workers append whole records in
        some order; :meth:`load` replays them into a key-value map, so the
        append order never affects a resumed run's results.
        """
        with self._lock:
            if self._handle is None:
                if str(self.path.parent):
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(
                json.dumps(
                    {"key": key, "value": value},
                    separators=(",", ":"),
                    sort_keys=True,
                )
                + "\n"
            )
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def wipe(self) -> None:
        """Delete the journal file (start the work from scratch)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Journal({str(self.path)!r})"


__all__ = ["CheckpointAbort", "Journal"]
