"""Run manifests: a JSON artefact describing how a result was produced.

A manifest captures everything needed to interpret (and re-run) a benchmark
table: the environment (interpreter, numpy, platform), the active
:class:`~repro.core.experiment.LabConfig`, the full span tree recorded by
the tracer, aggregate counters, and a memory snapshot.  The reporting layer
writes one next to every saved table (``<table>.manifest.json``) whenever
tracing is enabled, and ``repro trace <manifest>`` renders it back as a
per-stage timing summary.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.metrics import memory_metrics
from repro.obs.trace import Tracer, get_tracer
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

#: Format tag written into (and required of) every manifest file.
MANIFEST_FORMAT = "repro-manifest-v1"


class ManifestError(Exception):
    """A manifest file is missing, unreadable, or not a manifest."""


#: Process-wide context merged into every manifest (configs, seeds, labels).
_run_context: Dict[str, object] = {}

#: Guards every mutation of the run context — stage events arrive
#: concurrently from the scheduler, and configs/labels may be recorded from
#: worker threads at the same time.
_context_lock = threading.Lock()


def set_context(**fields) -> None:
    """Attach key/value pairs to every subsequently written manifest."""
    with _context_lock:
        _run_context.update(fields)


def record_config(config: object, key: str = "lab_config") -> None:
    """Record a (dataclass) config object in the run context.

    Called by ``Lab.__init__`` so manifests always carry the exact knobs of
    the apparatus that produced them; last constructed Lab wins.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    with _context_lock:
        _run_context[key] = payload


def clear_context() -> None:
    """Drop all recorded run context (used by tests)."""
    with _context_lock:
        _run_context.clear()


def record_stage_event(
    stage: str,
    status: str,
    key: Optional[str] = None,
    duration_s: Optional[float] = None,
) -> None:
    """Record one pipeline-stage materialisation in the run context.

    ``status`` is ``"hit"`` (loaded from the artifact store), ``"miss"``
    (built and persisted) or ``"built"`` (built in memory, no store).  The
    run's manifests then show exactly which substrates were rebuilt versus
    reused — the warm-run assertion CI makes.  Repeat events for one stage
    (several Labs in one process) keep the latest status and a count.
    """
    with _context_lock:
        stages = _run_context.setdefault("stages", {})
        entry = stages.get(stage)
        record = {
            "status": status,
            "key": key,
            "duration_s": duration_s,
            "count": (entry["count"] + 1) if entry else 1,
        }
        stages[stage] = record


def environment_info() -> dict:
    """Interpreter / library / platform facts for reproducibility."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover - import cycle guard
        repro_version = None
    return {
        "repro_version": repro_version,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def build_manifest(
    tracer: Optional[Tracer] = None, extra: Optional[dict] = None
) -> dict:
    """Assemble the manifest dictionary from the tracer's current state."""
    tracer = tracer or get_tracer()
    with _context_lock:
        context = dict(_run_context)
    manifest = {
        "format": MANIFEST_FORMAT,
        # statcheck: ignore[DET003] - manifests record when the run happened by design
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": environment_info(),
        "context": context,
        "spans": [root.to_dict() for root in tracer.roots()],
        "counters": tracer.counters(),
        "memory": memory_metrics(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    path: PathLike,
    tracer: Optional[Tracer] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Build and write a manifest JSON to ``path``; returns the dict.

    The write is atomic (temp file + rename), so a manifest on disk is
    always complete — a killed run leaves the previous manifest, never a
    truncated one.
    """
    manifest = build_manifest(tracer, extra)
    with atomic_write(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def load_manifest(path: PathLike) -> dict:
    """Load and validate a manifest written by :func:`write_manifest`.

    Raises :class:`ManifestError` (never a bare traceback-worthy error) when
    the file is missing, not JSON, or not a recognised manifest.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ManifestError(f"manifest not found: {path}") from None
    except IsADirectoryError:
        raise ManifestError(f"not a manifest file: {path} is a directory") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ManifestError(f"corrupt manifest {path}: {error}") from None
    except OSError as error:
        raise ManifestError(f"cannot read manifest {path}: {error}") from None
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ManifestError(
            f"{path} is not a {MANIFEST_FORMAT} file "
            f"(found format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"{path} is not a {MANIFEST_FORMAT} file"
        )
    return data


def manifest_path_for(artefact_path: PathLike) -> Path:
    """The manifest path shipped alongside an artefact.

    ``benchmarks/results/table2_datasets.txt`` maps to
    ``benchmarks/results/table2_datasets.manifest.json``.
    """
    path = Path(artefact_path)
    return path.parent / (path.stem + ".manifest.json")


def write_artefact_manifest(
    artefact_path: PathLike,
    title: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> Optional[dict]:
    """Write ``<artefact>.manifest.json`` when tracing is enabled.

    This is the hook the reporting layer calls after saving a table; it is a
    silent no-op while tracing is off, so plain (untraced) runs produce
    exactly the artefacts they always did.
    """
    tracer = tracer or get_tracer()
    if not tracer.enabled:
        return None
    extra = {"artefact": str(artefact_path)}
    if title is not None:
        extra["title"] = title
    return write_manifest(manifest_path_for(artefact_path), tracer, extra)


__all__ = [
    "MANIFEST_FORMAT",
    "ManifestError",
    "set_context",
    "record_config",
    "record_stage_event",
    "clear_context",
    "environment_info",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "write_artefact_manifest",
]
