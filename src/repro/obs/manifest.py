"""Run manifests: a JSON artefact describing how a result was produced.

A manifest captures everything needed to interpret (and re-run) a benchmark
table: the environment (interpreter, numpy, platform), the active
:class:`~repro.core.experiment.LabConfig`, the full span tree recorded by
the tracer, aggregate counters, and a memory snapshot.  The reporting layer
writes one next to every saved table (``<table>.manifest.json``) whenever
tracing is enabled, and ``repro trace <manifest>`` renders it back as a
per-stage timing summary.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.obs.metrics import memory_metrics
from repro.obs.trace import Tracer, get_tracer
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

#: Format tag written into (and required of) every manifest file.
MANIFEST_FORMAT = "repro-manifest-v1"


class ManifestError(Exception):
    """A manifest file is missing, unreadable, or not a manifest."""


#: Process-wide context merged into every manifest (configs, seeds, labels).
_run_context: Dict[str, object] = {}

#: Guards every mutation of the run context — stage events arrive
#: concurrently from the scheduler, and configs/labels may be recorded from
#: worker threads at the same time.
_context_lock = threading.Lock()


def set_context(**fields) -> None:
    """Attach key/value pairs to every subsequently written manifest."""
    with _context_lock:
        _run_context.update(fields)


def record_config(config: object, key: str = "lab_config") -> None:
    """Record a (dataclass) config object in the run context.

    Called by ``Lab.__init__`` so manifests always carry the exact knobs of
    the apparatus that produced them; last constructed Lab wins.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    with _context_lock:
        _run_context[key] = payload


def clear_context() -> None:
    """Drop all recorded run context (used by tests)."""
    with _context_lock:
        _run_context.clear()


def record_stage_event(
    stage: str,
    status: str,
    key: Optional[str] = None,
    duration_s: Optional[float] = None,
) -> None:
    """Record one pipeline-stage materialisation in the run context.

    ``status`` is ``"hit"`` (loaded from the artifact store), ``"miss"``
    (built and persisted) or ``"built"`` (built in memory, no store).  The
    run's manifests then show exactly which substrates were rebuilt versus
    reused — the warm-run assertion CI makes.  Repeat events for one stage
    (several Labs in one process) keep the latest status and a count.
    """
    with _context_lock:
        stages = _run_context.setdefault("stages", {})
        entry = stages.get(stage)
        record = {
            "status": status,
            "key": key,
            "duration_s": duration_s,
            "count": (entry["count"] + 1) if entry else 1,
        }
        stages[stage] = record


#: Named callables contributing extra hotspot sub-sections (e.g. the
#: profiler's function/allocation tables).  Keyed by provider name so
#: re-registering replaces rather than duplicates.
_section_providers: Dict[str, Callable[[], dict]] = {}

#: Guards provider registration/snapshotting against concurrent installs.
_providers_lock = threading.Lock()


def register_section_provider(name: str, provider: Callable[[], dict]) -> None:
    """Register a callable whose dict output merges into the hotspots section.

    The provider runs at manifest-build time; each key of its return value
    becomes a key of the manifest's ``hotspots`` section.  This lets
    :mod:`repro.perf` contribute profiler output without the observability
    layer importing it (no obs → perf dependency).
    """
    with _providers_lock:
        _section_providers[name] = provider


def unregister_section_provider(name: str) -> None:
    """Remove a previously registered provider (no-op if absent)."""
    with _providers_lock:
        _section_providers.pop(name, None)


def _walk_spans(span_dicts: List[dict]):
    todo = list(span_dicts)
    while todo:
        node = todo.pop()
        yield node
        todo.extend(node.get("children", ()))


def aggregate_span_times(span_dicts: List[dict]) -> Dict[str, dict]:
    """Aggregate a serialised span forest into per-name timing rows.

    Returns ``{name: {"count", "total_s", "self_s", "max_s"}}`` where
    ``self_s`` is duration minus direct-children time — the basis of the
    slowest-stages ranking.
    """
    rows: Dict[str, dict] = {}
    for node in _walk_spans(span_dicts):
        name = node.get("name", "<unnamed>")
        duration = float(node.get("duration_s", 0.0) or 0.0)
        self_time = float(node.get("self_time_s", duration) or 0.0)
        row = rows.setdefault(
            name, {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += duration
        row["self_s"] += self_time
        row["max_s"] = max(row["max_s"], duration)
    return rows


def slowest_stages(span_dicts: List[dict], top_n: int = 15) -> List[dict]:
    """The top-``top_n`` span names ranked by aggregate self time."""
    rows = aggregate_span_times(span_dicts)
    ranked = sorted(
        (
            {
                "name": name,
                "count": row["count"],
                "total_s": round(row["total_s"], 6),
                "self_s": round(row["self_s"], 6),
                "max_s": round(row["max_s"], 6),
            }
            for name, row in rows.items()
        ),
        key=lambda row: (-row["self_s"], row["name"]),
    )
    return ranked[: max(0, top_n)]


def build_hotspots(span_dicts: List[dict], top_n: int = 15) -> dict:
    """The manifest ``hotspots`` section: stage ranking + provider extras.

    Always contains ``slowest_stages``; providers registered via
    :func:`register_section_provider` (the profiler adds ``functions`` and
    ``allocations``) merge their keys in.  A failing provider is recorded
    in-place and accounted via the ``manifest.provider_errors`` counter —
    one broken profiler must not lose the whole manifest.
    """
    hotspots: dict = {"slowest_stages": slowest_stages(span_dicts, top_n)}
    with _providers_lock:
        providers = dict(_section_providers)
    for name in sorted(providers):
        try:
            payload = providers[name]()
        except Exception as error:
            get_tracer().count("manifest.provider_errors")
            hotspots[name] = {
                "error": f"{type(error).__name__}: {error}",
            }
            continue
        if payload:
            hotspots.update(payload)
    return hotspots


def environment_info() -> dict:
    """Interpreter / library / platform facts for reproducibility."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover - import cycle guard
        repro_version = None
    return {
        "repro_version": repro_version,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def build_manifest(
    tracer: Optional[Tracer] = None, extra: Optional[dict] = None
) -> dict:
    """Assemble the manifest dictionary from the tracer's current state."""
    tracer = tracer or get_tracer()
    with _context_lock:
        context = dict(_run_context)
    spans = [root.to_dict() for root in tracer.roots()]
    manifest = {
        "format": MANIFEST_FORMAT,
        # statcheck: ignore[DET003] - manifests record when the run happened by design
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": environment_info(),
        "context": context,
        "spans": spans,
        "counters": tracer.counters(),
        "memory": memory_metrics(),
        "hotspots": build_hotspots(spans),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    path: PathLike,
    tracer: Optional[Tracer] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Build and write a manifest JSON to ``path``; returns the dict.

    The write is atomic (temp file + rename), so a manifest on disk is
    always complete — a killed run leaves the previous manifest, never a
    truncated one.
    """
    manifest = build_manifest(tracer, extra)
    with atomic_write(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def load_manifest(path: PathLike) -> dict:
    """Load and validate a manifest written by :func:`write_manifest`.

    Raises :class:`ManifestError` (never a bare traceback-worthy error) when
    the file is missing, not JSON, or not a recognised manifest.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ManifestError(f"manifest not found: {path}") from None
    except IsADirectoryError:
        raise ManifestError(f"not a manifest file: {path} is a directory") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ManifestError(f"corrupt manifest {path}: {error}") from None
    except OSError as error:
        raise ManifestError(f"cannot read manifest {path}: {error}") from None
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ManifestError(
            f"{path} is not a {MANIFEST_FORMAT} file "
            f"(found format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"{path} is not a {MANIFEST_FORMAT} file"
        )
    return data


def manifest_path_for(artefact_path: PathLike) -> Path:
    """The manifest path shipped alongside an artefact.

    ``benchmarks/results/table2_datasets.txt`` maps to
    ``benchmarks/results/table2_datasets.manifest.json``.
    """
    path = Path(artefact_path)
    return path.parent / (path.stem + ".manifest.json")


def write_artefact_manifest(
    artefact_path: PathLike,
    title: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> Optional[dict]:
    """Write ``<artefact>.manifest.json`` when tracing is enabled.

    This is the hook the reporting layer calls after saving a table; it is a
    silent no-op while tracing is off, so plain (untraced) runs produce
    exactly the artefacts they always did.
    """
    tracer = tracer or get_tracer()
    if not tracer.enabled:
        return None
    extra = {"artefact": str(artefact_path)}
    if title is not None:
        extra["title"] = title
    return write_manifest(manifest_path_for(artefact_path), tracer, extra)


__all__ = [
    "MANIFEST_FORMAT",
    "ManifestError",
    "set_context",
    "record_config",
    "record_stage_event",
    "clear_context",
    "environment_info",
    "register_section_provider",
    "unregister_section_provider",
    "aggregate_span_times",
    "slowest_stages",
    "build_hotspots",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "write_artefact_manifest",
]
