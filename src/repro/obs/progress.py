"""Opt-in stderr progress reporting with per-stage rates.

Long stages (MLM pretraining, GloVe epochs, forest fits) report their
throughput here.  Emission is off unless ``REPRO_TRACE`` is set or the CLI
``--trace`` flag enabled it, and every call starts with one boolean check,
so instrumented loops pay nothing in the default configuration.

Typical use inside a training loop::

    from repro.obs.progress import StageProgress

    with StageProgress("bert.pretrain", unit="steps") as progress:
        for batch in batches:
            ...
            progress.advance(1)

which emits lines like::

    [repro] bert.pretrain: 312 steps in 4.1s (76.1 steps/s)
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.obs.trace import env_enables_trace

#: Emission flag; initialised from ``REPRO_TRACE`` at import.
_verbose = env_enables_trace()

#: Minimum seconds between intermediate lines from one StageProgress.
_REPORT_INTERVAL_S = 2.0


def progress_enabled() -> bool:
    """Whether progress lines are currently emitted."""
    return _verbose


def enable_progress() -> None:
    """Turn stderr progress emission on."""
    global _verbose
    _verbose = True


def disable_progress() -> None:
    """Turn stderr progress emission off."""
    global _verbose
    _verbose = False


def format_rate(count: float, seconds: float, unit: str = "items") -> str:
    """Human-readable throughput, e.g. ``'76.1 steps/s'``."""
    if seconds <= 0:
        return f"{unit}/s n/a"
    rate = count / seconds
    if rate >= 100:
        return f"{rate:.0f} {unit}/s"
    return f"{rate:.1f} {unit}/s"


def emit(stage: str, message: str = "", stream: Optional[TextIO] = None,
         **fields) -> None:
    """Write one progress line (``[repro] stage: message k=v ...``)."""
    if not _verbose:
        return
    parts = [f"[repro] {stage}"]
    if message:
        parts.append(f": {message}")
    if fields:
        rendered = " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())
        parts.append(f" ({rendered})" if message else f": {rendered}")
    print("".join(parts), file=stream if stream is not None else sys.stderr,
          flush=True)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class StageProgress:
    """Context manager reporting a stage's throughput to stderr.

    ``advance(n)`` accumulates completed units; an intermediate line is
    emitted at most every couple of seconds, and a final line with the
    overall rate on exit.  All methods are no-ops while emission is off.
    """

    def __init__(self, stage: str, unit: str = "items",
                 total: Optional[float] = None,
                 stream: Optional[TextIO] = None):
        self.stage = stage
        self.unit = unit
        self.total = total
        self.count = 0.0
        self._stream = stream
        self._start = 0.0
        self._last_report = 0.0

    def __enter__(self) -> "StageProgress":
        self._start = time.perf_counter()
        self._last_report = self._start
        if _verbose:
            suffix = f" (target {self.total:g} {self.unit})" if self.total else ""
            emit(self.stage, f"started{suffix}", stream=self._stream)
        return self

    def advance(self, amount: float = 1) -> None:
        self.count += amount
        if not _verbose:
            return
        now = time.perf_counter()
        if now - self._last_report >= _REPORT_INTERVAL_S:
            self._last_report = now
            emit(
                self.stage,
                f"{self.count:g} {self.unit} in {now - self._start:.1f}s "
                f"({format_rate(self.count, now - self._start, self.unit)})",
                stream=self._stream,
            )

    def __exit__(self, *exc) -> bool:
        if _verbose:
            elapsed = time.perf_counter() - self._start
            emit(
                self.stage,
                f"{self.count:g} {self.unit} in {elapsed:.1f}s "
                f"({format_rate(self.count, elapsed, self.unit)})",
                stream=self._stream,
            )
        return False


__all__ = [
    "progress_enabled",
    "enable_progress",
    "disable_progress",
    "format_rate",
    "emit",
    "StageProgress",
]
