"""Cheap metric primitives: counters, timers, and memory sampling.

These are the standalone building blocks the span tracer and progress
emitter are built from; they are also usable directly in ad-hoc profiling
(``with Timer() as t: ...; t.total``).  Memory sampling uses ``resource``
(always available on POSIX) for peak RSS and, optionally, ``tracemalloc``
for allocation deltas around a block.
"""

from __future__ import annotations

import contextlib
import sys
import threading
import time
from typing import Dict, Iterator, Optional

try:  # POSIX only; absent on some platforms (e.g. Windows)
    import resource
except ImportError:  # pragma: no cover - platform dependent
    resource = None  # type: ignore[assignment]

try:
    import tracemalloc
except ImportError:  # pragma: no cover - always present on CPython
    tracemalloc = None  # type: ignore[assignment]


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "counter"):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def incr(self, amount: float = 1) -> float:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A last-write-wins point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "gauge", value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """A re-enterable accumulating timer.

    Each ``with`` block adds one lap; ``total``, ``count`` and ``mean``
    aggregate across laps, so one Timer can wrap every iteration of a loop.
    """

    __slots__ = ("name", "total", "count", "last", "_start")

    def __init__(self, name: str = "timer"):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.last = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.last = time.perf_counter() - self._start
        self.total += self.last
        self.count += 1
        return False

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def rate(self, units: float) -> float:
        """``units`` per second over the accumulated total time."""
        return units / self.total if self.total > 0 else 0.0


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes, if measurable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to bytes.  Returns ``None`` where ``resource`` is missing.
    """
    if resource is None:  # pragma: no cover - platform dependent
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform dependent
        return int(peak)
    return int(peak) * 1024


def peak_rss_mb() -> Optional[float]:
    """Peak RSS in mebibytes (see :func:`peak_rss_bytes`)."""
    peak = peak_rss_bytes()
    return None if peak is None else peak / (1024.0 * 1024.0)


def tracemalloc_metrics() -> Dict[str, object]:
    """Python-allocation snapshot with an *explicit* unavailable state.

    When ``tracemalloc`` is not tracing (the default — tracing is costly)
    the byte fields are ``None`` and ``tracing`` is ``False``, so manifest
    readers can distinguish "not measured" from "measured zero" instead of
    the field silently disappearing.
    """
    if tracemalloc is None:  # pragma: no cover - always present on CPython
        return {
            "available": False,
            "tracing": False,
            "current_bytes": None,
            "peak_bytes": None,
        }
    if not tracemalloc.is_tracing():
        return {
            "available": True,
            "tracing": False,
            "current_bytes": None,
            "peak_bytes": None,
        }
    current, peak = tracemalloc.get_traced_memory()
    return {
        "available": True,
        "tracing": True,
        "current_bytes": int(current),
        "peak_bytes": int(peak),
    }


def memory_metrics() -> Dict[str, object]:
    """The standard memory snapshot attached to run manifests.

    Always reports both the OS-level peak RSS and the python-allocator
    view (:func:`tracemalloc_metrics`); the latter carries an explicit
    ``tracing: False`` fallback rather than omitting the key.
    """
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_mb": peak_rss_mb(),
        "tracemalloc": tracemalloc_metrics(),
    }


class TracemallocDelta:
    """Result holder for :func:`tracemalloc_delta` (filled on block exit)."""

    __slots__ = ("delta_bytes", "peak_bytes", "available")

    def __init__(self):
        self.delta_bytes: Optional[int] = None
        self.peak_bytes: Optional[int] = None
        self.available = tracemalloc is not None


@contextlib.contextmanager
def tracemalloc_delta() -> Iterator[TracemallocDelta]:
    """Measure python-level allocation delta across a block.

    Starts ``tracemalloc`` if it is not already tracing (and stops it again
    on exit in that case).  The yielded holder's ``delta_bytes`` is the net
    allocated bytes and ``peak_bytes`` the traced peak inside the block.
    Tracing allocations is expensive — keep this off hot paths.
    """
    holder = TracemallocDelta()
    if tracemalloc is None:  # pragma: no cover - always present on CPython
        yield holder
        return
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        yield holder
    finally:
        after, peak = tracemalloc.get_traced_memory()
        holder.delta_bytes = after - before
        holder.peak_bytes = peak
        if started_here:
            tracemalloc.stop()


__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "peak_rss_bytes",
    "peak_rss_mb",
    "tracemalloc_metrics",
    "memory_metrics",
    "TracemallocDelta",
    "tracemalloc_delta",
]
