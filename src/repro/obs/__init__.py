"""repro.obs — observability for the benchmark apparatus.

Four small layers, all optional at runtime and free when disabled:

* :mod:`repro.obs.trace` — nested span tracing (``with span("bert.pretrain")``)
  with a thread-safe in-process registry;
* :mod:`repro.obs.metrics` — counters, timers, peak-RSS / tracemalloc sampling;
* :mod:`repro.obs.manifest` — run-manifest JSON artefacts written next to
  benchmark tables (environment + config + span tree + counters + memory);
* :mod:`repro.obs.progress` — opt-in stderr progress lines with rates.

Enable everything with ``REPRO_TRACE=1`` in the environment, the CLI's
``--trace`` flag, or programmatically::

    from repro import obs
    obs.enable()          # collect spans (and emit progress lines)
    ...
    obs.manifest.write_manifest("run.manifest.json")
"""

from repro.obs import manifest, metrics, progress, trace
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    ManifestError,
    build_hotspots,
    build_manifest,
    load_manifest,
    manifest_path_for,
    record_config,
    record_stage_event,
    register_section_provider,
    set_context,
    slowest_stages,
    unregister_section_provider,
    write_artefact_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Timer,
    memory_metrics,
    peak_rss_bytes,
    peak_rss_mb,
    tracemalloc_delta,
    tracemalloc_metrics,
)
from repro.obs.progress import (
    StageProgress,
    emit,
    format_rate,
    progress_enabled,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_ENV_VAR,
    Span,
    Tracer,
    adopt,
    configure_from_env,
    enabled,
    get_tracer,
    reset,
    span,
)


def enable(verbose: bool = True) -> None:
    """Turn on span collection (and, by default, progress emission)."""
    trace.enable()
    if verbose:
        progress.enable_progress()


def disable() -> None:
    """Turn off span collection and progress emission."""
    trace.disable()
    progress.disable_progress()


__all__ = [
    "trace",
    "metrics",
    "manifest",
    "progress",
    # trace
    "TRACE_ENV_VAR",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "span",
    "adopt",
    "get_tracer",
    "enabled",
    "enable",
    "disable",
    "reset",
    "configure_from_env",
    # metrics
    "Counter",
    "Gauge",
    "Timer",
    "peak_rss_bytes",
    "peak_rss_mb",
    "memory_metrics",
    "tracemalloc_delta",
    "tracemalloc_metrics",
    # manifest
    "MANIFEST_FORMAT",
    "ManifestError",
    "build_hotspots",
    "slowest_stages",
    "register_section_provider",
    "unregister_section_provider",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "write_artefact_manifest",
    "record_config",
    "record_stage_event",
    "set_context",
    # progress
    "StageProgress",
    "emit",
    "format_rate",
    "progress_enabled",
]
