"""Nested span tracing with a thread-safe in-process registry.

The apparatus spends its time in a handful of deep call chains (Lab builders
calling corpus generators calling tokenizers ...), so the natural unit of
observation is a *span*: a named region of wall-time that nests.  Usage::

    from repro.obs import span

    with span("bert.pretrain", epochs=3) as sp:
        for batch in batches:
            ...
            sp.incr("steps")

Tracing is **disabled by default** and costs one truthiness check plus a
no-op context manager per ``span()`` call when off — instrumented code never
needs its own guard.  Enable with :func:`enable`, ``REPRO_TRACE=1`` in the
environment, or the CLI ``--trace`` flag.

Finished root spans accumulate in the process-wide :class:`Tracer`; the
manifest writer (:mod:`repro.obs.manifest`) snapshots them next to every
benchmark table.  Each thread keeps its own span stack, so concurrent
builders nest correctly without cross-talk.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment variable that switches tracing (and progress output) on.
TRACE_ENV_VAR = "REPRO_TRACE"

_FALSY = ("", "0", "false", "no", "off")


def env_enables_trace(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether the environment asks for tracing (``REPRO_TRACE`` truthy)."""
    value = (env if env is not None else os.environ).get(TRACE_ENV_VAR, "")
    return value.strip().lower() not in _FALSY


class NullSpan:
    """No-op stand-in returned by :func:`span` while tracing is disabled.

    Exposes the full :class:`Span` mutation surface so instrumented code can
    call ``sp.incr(...)`` unconditionally; every method returns immediately.
    """

    __slots__ = ()
    name = "<null>"
    duration = 0.0

    def incr(self, counter: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The shared no-op span instance (allocation-free disabled path).
NULL_SPAN = NullSpan()


class Span:
    """One named, timed region; a node in the trace tree.

    Records wall-clock start (``time.time``), a monotonic duration
    (``time.perf_counter``), free-form attributes, counters and gauges, and
    any child spans opened while it is the innermost span of its thread.
    """

    __slots__ = (
        "name",
        "attrs",
        "counters",
        "gauges",
        "children",
        "start_wall",
        "duration",
        "_start",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.start_wall = 0.0
        self.duration = 0.0
        self._start = 0.0
        self._tracer = tracer

    # -- mutation ------------------------------------------------------------

    def incr(self, counter: str, amount: float = 1) -> None:
        """Add ``amount`` to a per-span counter (created at zero)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        self.gauges[name] = value

    def annotate(self, **attrs) -> None:
        """Attach or overwrite free-form attributes."""
        self.attrs.update(attrs)

    # -- derived -------------------------------------------------------------

    @property
    def self_time(self) -> float:
        """Duration minus the duration of direct children (time spent here)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def to_dict(self) -> dict:
        """JSON-serialisable representation of this span and its subtree."""
        return {
            "name": self.name,
            "start_wall": self.start_wall,
            "duration_s": self.duration,
            "self_time_s": self.self_time,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "children": [child.to_dict() for child in self.children],
        }

    # -- context protocol ----------------------------------------------------

    def __enter__(self) -> "Span":
        # statcheck: ignore[DET003] - wall-clock span metadata, never hashed
        self.start_wall = time.time()
        self._tracer._push(self)
        # Notify listeners *before* the monotonic clock starts so listener
        # setup cost (e.g. enabling a profiler) is excluded from duration.
        self._tracer._notify("start", self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration = time.perf_counter() - self._start
        # Listeners run after the clock stops (teardown cost excluded) but
        # before _pop, so the span is still the top of its thread's stack.
        self._tracer._notify("end", self)
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, duration={self.duration:.6f})"


def _jsonable(value: object) -> object:
    """Best-effort conversion of an attribute to a JSON-safe value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Thread-safe registry of finished span trees and aggregate counters."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._counters: Dict[str, float] = {}
        self._listeners: Tuple[object, ...] = ()

    # -- span lifecycle ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start_span(self, name: str, **attrs):
        """A new span context, or :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate exits out of order rather than corrupt
            stack.remove(span)
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is not None:
                parent.children.append(span)
            else:
                self._roots.append(span)
            for counter, amount in span.counters.items():
                key = f"{span.name}.{counter}"
                self._counters[key] = self._counters.get(key, 0) + amount

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextlib.contextmanager
    def adopt(self, parent: Optional[Span]) -> Iterator[None]:
        """Attribute spans opened in this thread to ``parent``.

        Span parentage normally follows the per-thread stack, so a span
        opened inside a worker thread becomes a *root* even when the work
        was submitted from inside an open span.  Wrapping the worker body
        in ``with tracer.adopt(parent):`` pushes ``parent`` onto the
        calling thread's stack (without re-timing it), so spans opened
        here nest under it.  Child appends go through the tracer lock, so
        many workers may adopt the same parent concurrently.
        """
        if parent is None or not isinstance(parent, Span) or not self.enabled:
            yield
            return
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            if stack and stack[-1] is parent:
                stack.pop()
            elif parent in stack:  # tolerate unbalanced exits
                stack.remove(parent)

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register a span lifecycle listener.

        Listeners may implement ``on_span_start(span)`` and/or
        ``on_span_end(span)``; either hook may be absent.  ``on_span_end``
        fires after the span's duration is final but while the span is
        still on its thread's stack.  Listener exceptions are swallowed
        and accounted under the ``trace.listener_errors`` counter so a
        broken profiler can never corrupt instrumented code.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener: object) -> None:
        """Unregister a listener (no-op if absent)."""
        with self._lock:
            self._listeners = tuple(
                item for item in self._listeners if item is not listener
            )

    def _notify(self, event: str, span: Span) -> None:
        for listener in self._listeners:
            hook = getattr(listener, "on_span_" + event, None)
            if hook is None:
                continue
            try:
                hook(span)
            except Exception:
                self.count("trace.listener_errors")

    # -- aggregate counters --------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a process-wide counter (independent of any span)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> Dict[str, float]:
        """Snapshot of the aggregated counters."""
        with self._lock:
            return dict(self._counters)

    def roots(self) -> List[Span]:
        """Snapshot of the finished root spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop all recorded spans and counters (enabled state unchanged)."""
        with self._lock:
            self._roots.clear()
            self._counters.clear()
        self._local = threading.local()


#: The process-wide tracer used by :func:`span`.
_TRACER = Tracer(enabled=env_enables_trace())


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def span(name: str, **attrs):
    """Open a named span on the global tracer (no-op when disabled)."""
    return _TRACER.start_span(name, **attrs)


def adopt(parent: Optional[Span]):
    """Adopt ``parent`` as this thread's span parent (see :meth:`Tracer.adopt`)."""
    return _TRACER.adopt(parent)


def enabled() -> bool:
    """Whether tracing is currently collecting spans."""
    return _TRACER.enabled


def enable() -> None:
    """Turn span collection on."""
    _TRACER.enabled = True


def disable() -> None:
    """Turn span collection off (already-recorded spans are kept)."""
    _TRACER.enabled = False


def reset() -> None:
    """Clear the global tracer's recorded spans and counters."""
    _TRACER.reset()


def configure_from_env(env: Optional[Dict[str, str]] = None) -> bool:
    """Re-read ``REPRO_TRACE`` and set the global enabled state accordingly."""
    _TRACER.enabled = env_enables_trace(env)
    return _TRACER.enabled


__all__ = [
    "TRACE_ENV_VAR",
    "env_enables_trace",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "adopt",
    "enabled",
    "enable",
    "disable",
    "reset",
    "configure_from_env",
]
