"""Conservative call graph over the :class:`ProgramIndex`.

Each call site is resolved to first-party targets by, in order:

1. **direct** — the alias-resolved dotted name is an indexed function or
   class (constructor -> ``__init__``);
2. **method** — the receiver's class is inferred (``self``/``cls``,
   annotated parameters and locals, ``Name = ClassName(...)``
   assignments, and ``self.attr`` chains through the index's
   attribute-type map) and the method found on it or a base;
3. **unique-name** — exactly one indexed class defines a method with that
   name.  One definer is evidence; many is dynamic dispatch and resolves
   to nothing.

Every site also records the **lock depth** (enclosing ``with <lock>:``
blocks) and the **handled exception names** (enclosing ``try`` bodies'
handler types) at the call, which is all the context FLOW002/FLOW004 need
without re-walking functions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.statcheck.astutil import dotted_name, is_lock_context, resolve_name
from repro.statcheck.flow.index import (
    ClassInfo,
    FunctionInfo,
    ProgramIndex,
    annotation_name,
)
from repro.statcheck.quick import strongly_connected_components

#: Handler marker for a bare ``except:`` clause.
CATCH_ALL = "*"


def handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """Bare exception-class names an ``except`` clause catches."""
    if handler.type is None:
        return {CATCH_ALL}
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: Set[str] = set()
    for node in nodes:
        name = dotted_name(node)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names


@dataclass
class CallSite:
    """One resolved (or unresolved) call inside a function body."""

    caller: FunctionInfo
    node: ast.Call
    callees: Tuple[FunctionInfo, ...]
    resolution: str  # "direct" | "method" | "unique-name" | "unresolved"
    lock_depth: int
    handled: FrozenSet[str]
    #: Alias-resolved dotted name of the call target (may be third-party).
    target_name: Optional[str]

    def bind_args(self, callee: FunctionInfo) -> Dict[str, ast.AST]:
        """Map ``callee`` parameter names to argument expressions here.

        Accounts for the implicit receiver: a method reached through an
        attribute (``obj.m(x)``) binds ``x`` to the first *explicit*
        parameter.  Starred arguments stay unbound.
        """
        params = callee.params
        if (
            callee.is_method
            and params
            and params[0] in ("self", "cls")
            and isinstance(self.node.func, ast.Attribute)
        ):
            params = params[1:]
        bound: Dict[str, ast.AST] = {}
        for param, arg in zip(params, self.node.args):
            if isinstance(arg, ast.Starred):
                break
            bound[param] = arg
        for keyword in self.node.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = keyword.value
        return bound


class CallGraph:
    """Call sites, adjacency, and SCC ordering for a whole program."""

    def __init__(self, index: ProgramIndex):
        self.index = index
        self.sites: List[CallSite] = []
        self.sites_by_caller: Dict[str, List[CallSite]] = {}
        self.sites_by_callee: Dict[str, List[CallSite]] = {}
        self.edges: Dict[str, Set[str]] = {
            key: set() for key in index.functions
        }
        for info in index.functions.values():
            self._scan_function(info)

    # -- traversal ----------------------------------------------------

    def _scan_function(self, info: FunctionInfo) -> None:
        self.sites_by_caller.setdefault(info.key, [])
        self._scan_block(
            info, list(ast.iter_child_nodes(info.node)), 0, frozenset()
        )

    def _scan_block(
        self,
        info: FunctionInfo,
        nodes: Sequence[ast.AST],
        lock_depth: int,
        handled: FrozenSet[str],
    ) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are scanned as their own functions
            if isinstance(node, ast.Lambda):
                continue  # a lambda body runs at call time, not here
            if isinstance(node, ast.Call):
                self._record_site(info, node, lock_depth, handled)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                depth = lock_depth + (
                    1 if any(is_lock_context(i) for i in node.items) else 0
                )
                for item in node.items:
                    self._scan_block(
                        info, [item.context_expr], lock_depth, handled
                    )
                self._scan_block(info, node.body, depth, handled)
                continue
            if isinstance(node, ast.Try):
                caught = frozenset().union(
                    *(handler_names(h) for h in node.handlers)
                ) if node.handlers else frozenset()
                self._scan_block(info, node.body, lock_depth, handled | caught)
                for handler in node.handlers:
                    self._scan_block(info, handler.body, lock_depth, handled)
                # `else:` runs after the try body; its exceptions are NOT
                # caught by this try's handlers.
                self._scan_block(info, node.orelse, lock_depth, handled)
                self._scan_block(info, node.finalbody, lock_depth, handled)
                continue
            self._scan_block(
                info, list(ast.iter_child_nodes(node)), lock_depth, handled
            )

    def _record_site(
        self,
        info: FunctionInfo,
        node: ast.Call,
        lock_depth: int,
        handled: FrozenSet[str],
    ) -> None:
        callees, resolution, target = self.resolve_reference(info, node.func)
        site = CallSite(
            caller=info,
            node=node,
            callees=tuple(callees),
            resolution=resolution,
            lock_depth=lock_depth,
            handled=handled,
            target_name=target,
        )
        self.sites.append(site)
        self.sites_by_caller.setdefault(info.key, []).append(site)
        for callee in callees:
            self.sites_by_callee.setdefault(callee.key, []).append(site)
            self.edges.setdefault(info.key, set()).add(callee.key)

    # -- resolution ---------------------------------------------------

    def resolve_reference(
        self, info: FunctionInfo, expr: ast.AST
    ) -> Tuple[List[FunctionInfo], str, Optional[str]]:
        """Resolve a callable reference (a call's ``func``, or a bare
        function value like a ``Thread(target=...)`` argument)."""
        target = resolve_name(expr, info.ctx.aliases)
        # 1. Direct: absolute dotted name or same-module bare name.
        found = self.index.resolve_dotted(target)
        if found is None and isinstance(expr, ast.Name):
            name = expr.id
            found = (
                self.index.module_functions.get((info.module, name))
                or self.index.classes.get(f"{info.module}:{name}")
                or self._enclosing_nested(info, name)
            )
        if isinstance(found, ClassInfo):
            init = self.index.resolve_method(found, "__init__")
            return ([init] if init else []), "direct", target
        if isinstance(found, FunctionInfo):
            return [found], "direct", target
        if not isinstance(expr, ast.Attribute):
            return [], "unresolved", target
        # 2. Method on an inferred receiver class.
        receiver_cls = self._infer_class(info, expr.value)
        if receiver_cls is not None:
            method = self.index.resolve_method(receiver_cls, expr.attr)
            if method is not None:
                return [method], "method", target
            return [], "unresolved", target
        # 3. Unique-name fallback.
        candidates = self.index.methods_by_name.get(expr.attr, [])
        if len(candidates) == 1:
            return [candidates[0]], "unique-name", target
        return [], "unresolved", target

    def _enclosing_nested(
        self, info: FunctionInfo, name: str
    ) -> Optional[FunctionInfo]:
        """A nested function visible from ``info`` by bare name."""
        prefix = info.qualname
        while prefix:
            found = self.index.functions.get(f"{info.module}:{prefix}.{name}")
            if found is not None:
                return found
            prefix = prefix.rpartition(".")[0]
        return None

    def _infer_class(
        self, info: FunctionInfo, receiver: ast.AST
    ) -> Optional[ClassInfo]:
        """The receiver expression's class, when statically evident."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and info.is_method:
                return self.index.class_of(info)
            annotated = self._param_annotation(info, receiver.id)
            if annotated is not None:
                return annotated
            return self._local_assignment_class(info, receiver.id)
        if isinstance(receiver, ast.Attribute):
            base = self._infer_class(info, receiver.value)
            if base is not None:
                attr_key = base.attr_types.get(receiver.attr)
                if attr_key is not None:
                    klass = self.index.classes.get(attr_key)
                    if klass is not None:
                        return klass
        if isinstance(receiver, ast.Call):
            constructed = self.index.resolve_class(
                dotted_name(receiver.func), info.ctx
            )
            if constructed is not None:
                return constructed
        return None

    def _param_annotation(
        self, info: FunctionInfo, name: str
    ) -> Optional[ClassInfo]:
        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return self.index.resolve_class(
                    annotation_name(arg.annotation), info.ctx
                )
        return None

    def _local_assignment_class(
        self, info: FunctionInfo, name: str
    ) -> Optional[ClassInfo]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == name):
                continue
            if isinstance(value, ast.Call):
                constructed = self.index.resolve_class(
                    dotted_name(value.func), info.ctx
                )
                if constructed is not None:
                    return constructed
        return None

    # -- orderings ----------------------------------------------------

    def sccs(self) -> List[List[str]]:
        """Function SCCs in reverse topological order (callees first)."""
        return strongly_connected_components(self.edges)


__all__ = ["CATCH_ALL", "CallSite", "CallGraph", "handler_names"]
