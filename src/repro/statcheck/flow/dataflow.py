"""Interprocedural dataflow over the call graph.

Three analyses, all *optimistic* (unresolvable facts contribute nothing,
so findings only come from positively-established flows):

* **may-raise** — which tracked exception classes can escape each
  function, computed as a fixpoint over call-graph SCCs in reverse
  topological order, subtracting the exceptions each call site's
  enclosing ``try`` handlers catch;
* **seed provenance** — whether the seed expression feeding an RNG
  consumer traces back to config key material (an attribute/key named
  ``seed``/``*_seed``) or bottoms out in a hard-coded literal, following
  parameters backwards through every resolved caller;
* **constant environments** — partial evaluation of builder bodies under
  the constant bindings a ``functools.partial`` fixes at registration
  time: f-string keys substitute, statically-decidable branches prune,
  and ``range()`` loops unroll, so ``inputs[f"dataset-{task}"]`` becomes
  the literal key the stage graph can be checked against.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.statcheck.astutil import dotted_name, last_segment, resolve_name
from repro.statcheck.flow.callgraph import CATCH_ALL, CallGraph, handler_names
from repro.statcheck.flow.index import FunctionInfo, ProgramIndex

Scalar = Union[int, float, str, bool]
#: A constant environment value: one scalar, or the set of scalars a
#: loop variable ranges over.
EnvValue = Union[Scalar, FrozenSet[Scalar]]

#: Largest key fan-out a multi-valued binding may expand to.
MAX_EXPANSION = 256


# ---------------------------------------------------------------------------
# may-raise


def exception_catchers(index: ProgramIndex, name: str) -> Set[str]:
    """Handler names that catch exception class ``name``: itself, its
    indexed base chain, and the universal stdlib bases."""
    catchers = {name, "Exception", "BaseException"}
    queue = [name]
    while queue:
        current = queue.pop()
        candidates = index.classes_by_name.get(current, [])
        if len(candidates) != 1:
            continue
        for base in candidates[0].base_names:
            bare = base.rsplit(".", 1)[-1]
            if bare not in catchers:
                catchers.add(bare)
                queue.append(bare)
    return catchers


def _direct_raises(
    info: FunctionInfo, tracked: Set[str], index: ProgramIndex
) -> Dict[str, Tuple[str, int]]:
    """Tracked exceptions ``info`` raises itself -> (rel path, line).

    A bare ``raise`` inside ``except ShedError:`` re-raises ShedError; a
    raise whose exception is caught by an *enclosing* try in the same
    function never escapes and is not counted.
    """
    raises: Dict[str, Tuple[str, int]] = {}

    def record(name: str, node: ast.AST, handled: FrozenSet[str]) -> None:
        if name not in tracked:
            return
        if CATCH_ALL in handled or exception_catchers(index, name) & handled:
            return
        raises.setdefault(name, (info.ctx.rel, node.lineno))

    def scan(
        nodes: Sequence[ast.AST],
        handled: FrozenSet[str],
        current: FrozenSet[str],
    ) -> None:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    for name in current & tracked:
                        record(name, node, handled)
                else:
                    exc = node.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    record(last_segment(dotted_name(exc)), node, handled)
                continue
            if isinstance(node, ast.Try):
                caught = frozenset().union(
                    *(handler_names(h) for h in node.handlers)
                ) if node.handlers else frozenset()
                scan(node.body, handled | caught, current)
                for handler in node.handlers:
                    scan(
                        handler.body, handled,
                        frozenset(handler_names(handler)),
                    )
                scan(node.orelse, handled, current)
                scan(node.finalbody, handled, current)
                continue
            scan(list(ast.iter_child_nodes(node)), handled, current)

    scan(list(ast.iter_child_nodes(info.node)), frozenset(), frozenset())
    return raises


def compute_may_raise(
    graph: CallGraph, tracked: Set[str]
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, int]]]:
    """Fixpoint may-raise sets for every function in the graph.

    Returns ``(may_raise, origins)`` where ``origins[(fn_key, exc)]`` is
    the ``(rel, line)`` of one raise site the exception propagates from.
    """
    index = graph.index
    direct = {
        key: _direct_raises(info, tracked, index)
        for key, info in index.functions.items()
    }
    may: Dict[str, Set[str]] = {
        key: set(direct[key]) for key in index.functions
    }
    origins: Dict[Tuple[str, str], Tuple[str, int]] = {
        (key, name): where
        for key, raised in direct.items()
        for name, where in raised.items()
    }
    catcher_cache = {name: exception_catchers(index, name) for name in tracked}

    def flow_into(caller: str) -> bool:
        changed = False
        for site in graph.sites_by_caller.get(caller, ()):
            if CATCH_ALL in site.handled:
                continue
            for callee in site.callees:
                for name in may.get(callee.key, ()):
                    if catcher_cache[name] & site.handled:
                        continue
                    if name not in may[caller]:
                        may[caller].add(name)
                        origins.setdefault(
                            (caller, name),
                            origins.get(
                                (callee.key, name),
                                (callee.ctx.rel, callee.node.lineno),
                            ),
                        )
                        changed = True
        return changed

    # Reverse topological SCC order: callees are final before callers,
    # so each component needs only a local fixpoint.
    for component in graph.sccs():
        changed = True
        while changed:
            changed = False
            for key in component:
                if flow_into(key):
                    changed = True
    return may, origins


# ---------------------------------------------------------------------------
# seed provenance

#: Attribute / key / parameter names that are sanctioned seed material.
def is_seed_name(name: str) -> bool:
    lowered = name.lower()
    return lowered == "seed" or lowered.endswith("_seed")


#: Functions that mix entropy deterministically — a seed is fine if it
#: *passes through* one of these.
_SEED_MIXERS = frozenset(
    {"stable_hash", "stable_digest", "derive_rng", "ensure_rng",
     "int", "abs", "hash"}
)

#: Classification statuses.
SEED_OK = "ok"
SEED_BAD = "bad"
SEED_UNKNOWN = "unknown"


@dataclass
class SeedOrigin:
    """Where a seed classification bottomed out."""

    status: str
    detail: str = ""
    rel: str = ""
    line: int = 0
    chain: Tuple[str, ...] = ()
    #: Further independent bad origins (other callers of the same
    #: parameter) — each deserves its own finding.
    extras: Tuple["SeedOrigin", ...] = ()


def classify_seed(
    expr: ast.AST,
    fn: FunctionInfo,
    graph: CallGraph,
    depth: int = 6,
    stack: FrozenSet[Tuple[str, str]] = frozenset(),
) -> SeedOrigin:
    """Trace ``expr`` (a seed argument inside ``fn``) to its origin."""
    if depth <= 0:
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.Constant):
        if expr.value is None:
            return SeedOrigin(SEED_OK, "None (consumer derives its own)")
        return SeedOrigin(
            SEED_BAD,
            f"hard-coded literal seed {expr.value!r}",
            fn.ctx.rel,
            expr.lineno,
            (fn.key,),
        )
    if isinstance(expr, ast.Attribute):
        if is_seed_name(expr.attr):
            return SeedOrigin(SEED_OK, f"attribute .{expr.attr}")
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.Subscript):
        key = expr.slice
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and is_seed_name(key.value)
        ):
            return SeedOrigin(SEED_OK, f"key {key.value!r}")
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.Call):
        if last_segment(resolve_name(expr.func, fn.ctx.aliases)) in _SEED_MIXERS:
            args = list(expr.args) + [kw.value for kw in expr.keywords]
            results = [
                classify_seed(arg, fn, graph, depth - 1, stack)
                for arg in args
                if not isinstance(arg, ast.Starred)
            ]
            if any(r.status == SEED_OK for r in results):
                return SeedOrigin(SEED_OK, "derived via mixer")
            if results and all(r.status == SEED_BAD for r in results):
                return results[0]
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.BinOp):
        sides = [
            classify_seed(side, fn, graph, depth - 1, stack)
            for side in (expr.left, expr.right)
        ]
        if any(r.status == SEED_OK for r in sides):
            return SeedOrigin(SEED_OK, "arithmetic over seed material")
        if all(r.status == SEED_BAD for r in sides):
            return sides[0]
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.IfExp):
        branches = [
            classify_seed(side, fn, graph, depth - 1, stack)
            for side in (expr.body, expr.orelse)
        ]
        for branch in branches:
            if branch.status == SEED_BAD:
                return branch
        if all(r.status == SEED_OK for r in branches):
            return branches[0]
        return SeedOrigin(SEED_UNKNOWN)
    if isinstance(expr, ast.Name):
        return _classify_name(expr.id, fn, graph, depth, stack)
    return SeedOrigin(SEED_UNKNOWN)


def _classify_name(
    name: str,
    fn: FunctionInfo,
    graph: CallGraph,
    depth: int,
    stack: FrozenSet[Tuple[str, str]],
) -> SeedOrigin:
    # Local assignment wins over the parameter of the same name (the
    # `if seed is None: seed = ...` idiom rebinds before use).
    assigned = [
        node.value
        for node in ast.walk(fn.node)
        if isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and node.targets[0].id == name
    ]
    local_results = [
        classify_seed(value, fn, graph, depth - 1, stack)
        for value in assigned
    ]
    for result in local_results:
        if result.status == SEED_BAD:
            return result
    if local_results and all(r.status == SEED_OK for r in local_results):
        return local_results[0]
    if name in fn.params:
        key = (fn.key, name)
        if key in stack:
            return SeedOrigin(SEED_UNKNOWN)
        sites = graph.sites_by_callee.get(fn.key, ())
        caller_results: List[SeedOrigin] = []
        bad_results: List[SeedOrigin] = []
        for site in sites:
            bound = site.bind_args(fn)
            arg = bound.get(name)
            if arg is None:
                continue  # defaulted — DET005's beat, not a flow fact
            result = classify_seed(
                arg, site.caller, graph, depth - 1, stack | {key}
            )
            if result.status == SEED_BAD:
                bad_results.append(
                    SeedOrigin(
                        SEED_BAD, result.detail, result.rel, result.line,
                        result.chain + (fn.key,), result.extras,
                    )
                )
            caller_results.append(result)
        if bad_results:
            flattened: List[SeedOrigin] = []
            for bad in bad_results:
                flattened.append(bad)
                flattened.extend(bad.extras)
            first = flattened[0]
            return SeedOrigin(
                SEED_BAD, first.detail, first.rel, first.line,
                first.chain, tuple(flattened[1:]),
            )
        if caller_results and all(
            r.status == SEED_OK for r in caller_results
        ):
            return caller_results[0]
        return SeedOrigin(SEED_UNKNOWN)
    # Module-level constants: a `*_SEED` name is a deliberate, documented
    # protocol pin (sanctioned key material); an int literal hiding under
    # any other name is still a hard-coded seed.
    for node in fn.ctx.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Constant)
        ):
            if is_seed_name(name):
                return SeedOrigin(SEED_OK, f"protocol constant {name}")
            if isinstance(node.value.value, (int, float)):
                return SeedOrigin(
                    SEED_BAD,
                    f"module constant {name} = {node.value.value!r} "
                    "(rename it *_SEED to mark a deliberate protocol pin)",
                    fn.ctx.rel,
                    node.lineno,
                    (fn.key,),
                )
            return SeedOrigin(SEED_UNKNOWN)
    imported = fn.ctx.aliases.get(name)
    if imported is not None and is_seed_name(imported.rsplit(".", 1)[-1]):
        return SeedOrigin(SEED_OK, f"imported protocol constant {name}")
    return SeedOrigin(SEED_UNKNOWN)


# ---------------------------------------------------------------------------
# constant environments / input reads


def module_constants(tree: ast.Module) -> Dict[str, Scalar]:
    """Top-level ``NAME = <scalar literal>`` bindings of a module."""
    consts: Dict[str, Scalar] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, (int, float, str, bool))
        ):
            consts[node.targets[0].id] = node.value.value
    return consts


def eval_scalar(
    node: ast.AST, env: Dict[str, EnvValue]
) -> Tuple[bool, Optional[Scalar]]:
    """Evaluate an expression to one scalar under ``env``, if possible."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, str, bool)
    ):
        return True, node.value
    if isinstance(node, ast.Name):
        value = env.get(node.id)
        if isinstance(value, (int, float, str, bool)):
            return True, value
        return False, None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        ok, value = eval_scalar(node.operand, env)
        if ok and isinstance(value, (int, float)):
            return True, -value
        return False, None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult)
    ):
        ok_l, left = eval_scalar(node.left, env)
        ok_r, right = eval_scalar(node.right, env)
        if ok_l and ok_r:
            try:
                if isinstance(node.op, ast.Add):
                    return True, left + right
                if isinstance(node.op, ast.Sub):
                    return True, left - right
                return True, left * right
            except TypeError:
                return False, None
    return False, None


def _always_exits(stmts: Sequence[ast.AST]) -> bool:
    """Whether a statement block unconditionally leaves the function."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If):
        return bool(last.orelse) and _always_exits(last.body) and (
            _always_exits(last.orelse)
        )
    return False


def eval_test(node: ast.AST, env: Dict[str, EnvValue]) -> Optional[bool]:
    """Truth value of a branch test under ``env``; ``None`` = unknown."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = eval_test(node.operand, env)
        return None if inner is None else not inner
    if isinstance(node, ast.BoolOp):
        values = [eval_test(value, env) for value in node.values]
        if isinstance(node.op, ast.And):
            if any(value is False for value in values):
                return False
            if all(value is True for value in values):
                return True
            return None
        if any(value is True for value in values):
            return True
        if all(value is False for value in values):
            return False
        return None
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        ok_l, left = eval_scalar(node.left, env)
        if not ok_l:
            return None
        op = node.ops[0]
        right_node = node.comparators[0]
        if isinstance(op, (ast.Eq, ast.NotEq)):
            ok_r, right = eval_scalar(right_node, env)
            if not ok_r:
                return None
            return (left == right) if isinstance(op, ast.Eq) else (left != right)
        if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            right_node, (ast.Tuple, ast.List, ast.Set)
        ):
            values = []
            for element in right_node.elts:
                ok_e, value = eval_scalar(element, env)
                if not ok_e:
                    return None
                values.append(value)
            return (left in values) if isinstance(op, ast.In) else (
                left not in values
            )
    ok, value = eval_test_scalar(node, env)
    return value if ok else None


def eval_test_scalar(
    node: ast.AST, env: Dict[str, EnvValue]
) -> Tuple[bool, Optional[bool]]:
    ok, value = eval_scalar(node, env)
    if ok:
        return True, bool(value)
    return False, None


def _iter_values(
    node: ast.AST, env: Dict[str, EnvValue]
) -> Optional[List[Scalar]]:
    """The (small, constant) value sequence a loop iterates, if static."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
        node.func.id == "range"
    ):
        bounds = []
        for arg in node.args:
            ok, value = eval_scalar(arg, env)
            if not ok or not isinstance(value, int):
                return None
            bounds.append(value)
        if not 1 <= len(bounds) <= 3:
            return None
        values = list(range(*bounds))
        return values if len(values) <= 64 else None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = []
        for element in node.elts:
            ok, value = eval_scalar(element, env)
            if not ok:
                return None
            values.append(value)
        return values if len(values) <= 64 else None
    return None


@dataclass
class InputRead:
    """One ``inputs[...]`` subscript, with its statically-resolved keys."""

    node: ast.AST
    rel: str
    #: Fully-resolved key strings, when every part evaluated.
    keys: Optional[FrozenSet[str]] = None
    #: Anchored regex over stage names, when some part stayed dynamic.
    pattern: Optional[str] = None


def _format_keys(
    node: ast.AST, env: Dict[str, EnvValue]
) -> Tuple[Optional[FrozenSet[str]], Optional[str]]:
    """Resolve a subscript key expression to keys or a regex pattern."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset({node.value}), None
    if isinstance(node, ast.Name):
        value = env.get(node.id)
        if isinstance(value, str):
            return frozenset({value}), None
        if isinstance(value, frozenset) and all(
            isinstance(v, str) for v in value
        ):
            return value, None
        return None, None  # unbound name: nothing provable, stay quiet
    if not isinstance(node, ast.JoinedStr):
        return None, None
    # Each part contributes literal text, a set of scalar expansions, or
    # a wildcard; the cartesian product (capped) gives the keys.
    parts: List[List[str]] = [[""]]
    exact = True

    def extend(options: List[str]) -> None:
        nonlocal parts
        combined = [
            prefix + option for prefix in parts[0] for option in options
        ]
        if len(combined) > MAX_EXPANSION:
            raise OverflowError
        parts[0] = combined

    try:
        for value in node.values:
            if isinstance(value, ast.Constant):
                extend([str(value.value)])
                continue
            if isinstance(value, ast.FormattedValue):
                ok, scalar = eval_scalar(value.value, env)
                if ok:
                    extend([str(scalar)])
                    continue
                bound = (
                    env.get(value.value.id)
                    if isinstance(value.value, ast.Name)
                    else None
                )
                if isinstance(bound, frozenset):
                    extend(sorted(str(v) for v in bound))
                    continue
                exact = False
                extend(["\0"])  # placeholder for one dynamic part
                continue
            return None, None
    except OverflowError:
        exact = False
        parts[0] = parts[0][:1]
    if exact:
        return frozenset(parts[0]), None
    pattern = "^" + ".+".join(
        re.escape(piece) for piece in parts[0][0].split("\0")
    ) + "$"
    return None, pattern


def collect_input_reads(
    fn: FunctionInfo,
    inputs_param: str,
    env: Dict[str, EnvValue],
    index: ProgramIndex,
    depth: int = 4,
    _seen: Optional[Set[Tuple[str, str]]] = None,
) -> List[InputRead]:
    """Every key ``fn`` reads off its ``inputs_param`` mapping, under the
    constant environment ``env`` — following constant-decidable branches,
    unrolling static loops, and descending into same-tree helpers that
    receive the mapping."""
    seen = _seen if _seen is not None else set()
    marker = (fn.key, inputs_param)
    if marker in seen or depth <= 0:
        return []
    seen.add(marker)
    consts = module_constants(fn.ctx.tree)
    scope: Dict[str, EnvValue] = {**consts, **env}
    reads: List[InputRead] = []

    def visit_expr(node: ast.AST, local: Dict[str, EnvValue]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == inputs_param
        ):
            keys, pattern = _format_keys(node.slice, local)
            if keys is not None or pattern is not None:
                reads.append(InputRead(node, fn.ctx.rel, keys, pattern))
            visit_expr(node.slice, local)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            comp_env = dict(local)
            for generator in node.generators:
                visit_expr(generator.iter, comp_env)
                _bind_loop(generator.target, generator.iter, comp_env)
                for condition in generator.ifs:
                    visit_expr(condition, comp_env)
            targets = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for target in targets:
                visit_expr(target, comp_env)
            return
        if isinstance(node, ast.Call):
            _descend_call(node, local)
        for child in ast.iter_child_nodes(node):
            visit_expr(child, local)

    def _bind_loop(
        target: ast.AST, iterable: ast.AST, local: Dict[str, EnvValue]
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        values = _iter_values(iterable, local)
        if values is not None:
            local[target.id] = frozenset(values)
        else:
            local.pop(target.id, None)

    def _descend_call(node: ast.Call, local: Dict[str, EnvValue]) -> None:
        passes_inputs = any(
            isinstance(arg, ast.Name) and arg.id == inputs_param
            for arg in node.args
        ) or any(
            isinstance(kw.value, ast.Name) and kw.value.id == inputs_param
            for kw in node.keywords
        )
        if not passes_inputs:
            return
        target = resolve_name(node.func, fn.ctx.aliases)
        callee = index.resolve_dotted(target)
        if callee is None and isinstance(node.func, ast.Name):
            callee = index.module_functions.get((fn.module, node.func.id))
        if not isinstance(callee, FunctionInfo):
            return
        callee_env: Dict[str, EnvValue] = {}
        callee_inputs: Optional[str] = None
        params = callee.params
        for param, arg in zip(params, node.args):
            if isinstance(arg, ast.Name) and arg.id == inputs_param:
                callee_inputs = param
                continue
            ok, value = eval_scalar(arg, local)
            if ok:
                callee_env[param] = value
            elif isinstance(arg, ast.Name) and isinstance(
                local.get(arg.id), frozenset
            ):
                callee_env[param] = local[arg.id]
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if (
                isinstance(keyword.value, ast.Name)
                and keyword.value.id == inputs_param
            ):
                callee_inputs = keyword.arg
                continue
            ok, value = eval_scalar(keyword.value, local)
            if ok:
                callee_env[keyword.arg] = value
        if callee_inputs is None:
            return
        reads.extend(
            collect_input_reads(
                callee, callee_inputs, callee_env, index,
                depth - 1, seen,
            )
        )

    def visit_stmts(
        nodes: Sequence[ast.AST], local: Dict[str, EnvValue]
    ) -> None:
        for node in nodes:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.If):
                visit_expr(node.test, local)
                verdict = eval_test(node.test, local)
                if verdict is True:
                    visit_stmts(node.body, local)
                    if _always_exits(node.body):
                        return  # the taken branch returns: the rest is dead
                elif verdict is False:
                    visit_stmts(node.orelse, local)
                    if node.orelse and _always_exits(node.orelse):
                        return
                else:
                    visit_stmts(node.body, dict(local))
                    visit_stmts(node.orelse, dict(local))
                continue
            if isinstance(node, (ast.Return, ast.Raise)):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.expr):
                        visit_expr(child, local)
                return  # statements after an unconditional exit are dead
            if isinstance(node, (ast.For, ast.AsyncFor)):
                visit_expr(node.iter, local)
                loop_env = dict(local)
                _bind_loop(node.target, node.iter, loop_env)
                visit_stmts(node.body, loop_env)
                visit_stmts(node.orelse, local)
                continue
            if isinstance(node, ast.Assign):
                visit_expr(node.value, local)
                ok, value = eval_scalar(node.value, local)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if ok:
                            local[target.id] = value
                        else:
                            local.pop(target.id, None)
                continue
            if isinstance(node, (ast.While, ast.With, ast.AsyncWith, ast.Try)):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        visit_stmts([child], local)
                    elif isinstance(child, ast.ExceptHandler):
                        visit_stmts(child.body, local)
                    elif isinstance(child, ast.withitem):
                        visit_expr(child.context_expr, local)
                    elif isinstance(child, ast.expr):
                        visit_expr(child, local)
                continue
            if isinstance(node, ast.expr):
                visit_expr(node, local)
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    visit_stmts([child], local)
                elif isinstance(child, ast.expr):
                    visit_expr(child, local)

    visit_stmts(list(fn.node.body), scope)
    return reads


__all__ = [
    "EnvValue",
    "InputRead",
    "SEED_BAD",
    "SEED_OK",
    "SEED_UNKNOWN",
    "SeedOrigin",
    "classify_seed",
    "collect_input_reads",
    "compute_may_raise",
    "eval_scalar",
    "eval_test",
    "exception_catchers",
    "is_seed_name",
    "module_constants",
]
