"""The interprocedural rule families: FLOW001-004 and GRAPH001.

Per-file rules receive a :class:`FileContext`; flow rules receive a
*program* — ``(contexts, index, graph)`` over the whole analyzed tree —
and may follow seeds, exceptions, and artifact keys across any number of
call boundaries.  They stay optimistic everywhere resolution fails:
dynamic dispatch contributes nothing, so every finding rests on a
positively-established cross-module path, which the message spells out.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.statcheck.astutil import dotted_name, last_segment, resolve_name
from repro.statcheck.findings import Finding
from repro.statcheck.flow.callgraph import CallSite
from repro.statcheck.flow.dataflow import (
    SEED_BAD,
    classify_seed,
    collect_input_reads,
    compute_may_raise,
)
from repro.statcheck.flow.index import FunctionInfo


class FlowRule:
    """Base class for whole-program rules (mirrors ``rules.base.Rule``)."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    example: str = ""

    def applies_to(self, program) -> bool:
        return True

    def check(self, program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, rel: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def _chain_text(chain: Sequence[str]) -> str:
    return " -> ".join(chain)


# ---------------------------------------------------------------------------
# FLOW001


class SeedProvenanceRule(FlowRule):
    id = "FLOW001"
    title = "RNG seed does not trace back to config key material"
    rationale = (
        "Byte-identical reruns require every RNG stream to be keyed off "
        "LabConfig seed material (an attribute or key named seed/*_seed), "
        "possibly mixed through stable_hash/derive_rng. A literal seed "
        "reaching a consumer — even three calls away — silently pins a "
        "stream that config sweeps believe they control; and two call "
        "sites deriving the same (seed, tags...) tuple share one stream, "
        "correlating draws that the analysis assumes independent."
    )
    example = "def fit(d):\n    train(d, seed=42)   # train() feeds derive_rng"

    #: Call targets that consume a seed as their first argument.
    _CONSUMERS = frozenset({"derive_rng", "ensure_rng"})

    def check(self, program) -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str]] = set()
        streams: Dict[Tuple[str, Tuple[object, ...]], List[Tuple[CallSite, str]]] = {}
        for site in program.graph.sites:
            kind = self._consumer_kind(site)
            if kind is None:
                continue
            if site.caller.module.rsplit(".", 1)[-1] == "rng":
                continue  # the sanctioned RNG module derives as it likes
            seed = self._seed_arg(site.node)
            if seed is None:
                if kind == "default_rng":
                    finding = self._emit(
                        emitted, site.caller.ctx.rel, site.node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; thread seed material from LabConfig",
                    )
                    if finding is not None:
                        yield finding
                continue
            origin = classify_seed(seed, site.caller, program.graph)
            if origin.status == SEED_BAD:
                for bad in (origin,) + origin.extras:
                    rel = bad.rel or site.caller.ctx.rel
                    node = site.node if not bad.rel else _At(
                        bad.line, getattr(site.node, "col_offset", 0)
                    )
                    chain = _chain_text(
                        bad.chain + (f"{site.caller.key} ({kind})",)
                    )
                    finding = self._emit(
                        emitted, rel, node,
                        f"{bad.detail} reaches {kind} via {chain}; seeds "
                        "must flow from LabConfig/stage key material",
                    )
                    if finding is not None:
                        yield finding
            if kind == "derive_rng":
                self._collect_stream(streams, site, seed)
        yield from self._duplicate_streams(streams, emitted)

    # -- helpers ------------------------------------------------------

    def _emit(self, emitted, rel, node, message) -> Optional[Finding]:
        key = (rel, getattr(node, "lineno", 1), message)
        if key in emitted:
            return None
        emitted.add(key)
        return self.finding(rel, node, message)

    def _consumer_kind(self, site: CallSite) -> Optional[str]:
        target = site.target_name
        if target == "numpy.random.default_rng":
            return "default_rng"
        segment = last_segment(target)
        if segment in self._CONSUMERS:
            return segment
        return None

    @staticmethod
    def _seed_arg(node: ast.Call) -> Optional[ast.AST]:
        if node.args and not isinstance(node.args[0], ast.Starred):
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg in ("seed", "rng"):
                return keyword.value
        return None

    def _collect_stream(self, streams, site: CallSite, seed: ast.AST) -> None:
        labels = []
        for arg in site.node.args[1:]:
            if not isinstance(arg, ast.Constant):
                return  # dynamic tag: the stream is parameterized, fine
            labels.append(arg.value)
        if not labels:
            return
        scope = self._seed_scope(seed, site.caller)
        if scope is None:
            return
        streams.setdefault((scope, tuple(labels)), []).append(
            (site, site.caller.ctx.rel)
        )

    @staticmethod
    def _seed_scope(seed: ast.AST, fn: FunctionInfo) -> Optional[str]:
        """Identity of the seed *value*, comparable across call sites.

        Two sites share a stream only when the same seed value reaches
        both: `self.*` chains compare class-wide, module globals
        module-wide, and parameters/locals only within their function —
        different callers may pass different seeds.
        """
        chain = dotted_name(seed)
        if chain is None:
            return None
        root = chain.split(".", 1)[0]
        if root == "self" and fn.class_name is not None:
            return f"{fn.module}:{fn.class_name}:{chain}"
        return f"{fn.key}:{chain}"

    def _duplicate_streams(self, streams, emitted) -> Iterator[Finding]:
        for (scope, labels), sites in sorted(
            streams.items(), key=lambda item: str(item[0])
        ):
            ordered = sorted(
                sites, key=lambda pair: (pair[1], pair[0].node.lineno)
            )
            distinct = {
                (rel, site.node.lineno) for site, rel in ordered
            }
            if len(distinct) < 2:
                continue
            first_site, first_rel = ordered[0]
            label_text = ", ".join(repr(value) for value in labels)
            for site, rel in ordered[1:]:
                if (rel, site.node.lineno) == (first_rel, first_site.node.lineno):
                    continue
                finding = self._emit(
                    emitted, rel, site.node,
                    f"derive_rng stream ({label_text}) duplicates "
                    f"{first_rel}:{first_site.node.lineno} for the same "
                    "seed; distinct consumers need distinct tags or the "
                    "draws correlate",
                )
                if finding is not None:
                    yield finding


class _At:
    """A minimal node stand-in anchoring a finding at a traced origin."""

    def __init__(self, lineno: int, col_offset: int = 0):
        self.lineno = lineno
        self.col_offset = col_offset


# ---------------------------------------------------------------------------
# FLOW002


class ExceptionEscapeRule(FlowRule):
    id = "FLOW002"
    title = "typed exception can escape a thread entry point unhandled"
    rationale = (
        "ChatClientError/ShedError/StageError are the apparatus' typed "
        "failure contracts: every raise must end at a RetryPolicy, "
        "scheduler boundary, or explicit handler that accounts for it. "
        "An exception escaping a Thread target or an HTTP do_* handler "
        "is printed to stderr by the runtime and lost — the failure "
        "ledger silently under-counts, which PR 8's chaos CI exists to "
        "prevent."
    )
    example = (
        "threading.Thread(target=self._run).start()\n"
        "def _run(self): self.engine.deliver()  # may raise ChatClientError"
    )

    #: The typed failure contracts whose escape is a finding.
    tracked = frozenset({"ChatClientError", "ShedError", "StageError"})

    def check(self, program) -> Iterator[Finding]:
        may, origins = compute_may_raise(program.graph, set(self.tracked))
        seen: Set[Tuple[str, str]] = set()
        for entry, via, ref_node, rel in self._entry_points(program):
            escaped = sorted(may.get(entry.key, ()))
            for name in escaped:
                if (entry.key, name) in seen:
                    continue
                seen.add((entry.key, name))
                where = origins.get((entry.key, name))
                origin_text = f" (raised at {where[0]}:{where[1]})" if where else ""
                yield self.finding(
                    rel, ref_node,
                    f"{via} '{entry.qualname}' can leak {name}"
                    f"{origin_text}; exceptions escaping a thread are "
                    "dropped by the runtime — handle or account for it "
                    "at the boundary",
                )

    def _entry_points(self, program):
        """(entry function, how it is entered, anchor node, rel) tuples."""
        graph = program.graph
        for site in graph.sites:
            if last_segment(site.target_name) != "Thread":
                continue
            target_expr = None
            for keyword in site.node.keywords:
                if keyword.arg == "target":
                    target_expr = keyword.value
            if target_expr is None:
                continue
            callees, _, _ = graph.resolve_reference(site.caller, target_expr)
            for callee in callees:
                yield (
                    callee, "thread target", site.node, site.caller.ctx.rel
                )
        for info in program.index.functions.values():
            if not info.is_method or not info.name.startswith("do_"):
                continue
            cls = program.index.class_of(info)
            if cls is None or not any(
                base.rsplit(".", 1)[-1].endswith("RequestHandler")
                for base in cls.base_names
            ):
                continue
            yield info, "request handler", info.node, info.ctx.rel


# ---------------------------------------------------------------------------
# FLOW003

#: Constructors whose result owns an OS resource.
_RESOURCE_FACTORIES = frozenset(
    {
        "open",
        "io.open",
        "socket.socket",
        "socket.create_connection",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: Method names that dispose of a resource.
_DISPOSALS = frozenset(
    {"close", "shutdown", "stop", "terminate", "release", "cleanup",
     "__exit__"}
)


class ResourceLifecycleRule(FlowRule):
    id = "FLOW003"
    title = "resource acquired without a dominating with/finally"
    rationale = (
        "Executors, sockets, and journal handles leak worker threads and "
        "fds when an exception skips the close() call. Every acquisition "
        "must be dominated by `with`, closed in a `finally`, returned/"
        "passed onward (ownership transfer), or stored on an object that "
        "itself defines close()/shutdown() — the pattern DeliveryEngine "
        "and Journal use."
    )
    example = "pool = ThreadPoolExecutor(4)\npool.submit(f)\npool.shutdown()"

    def check(self, program) -> Iterator[Finding]:
        for info in program.index.functions.values():
            yield from self._check_function(program, info)

    def _check_function(self, program, info: FunctionInfo) -> Iterator[Finding]:
        parents: Dict[ast.AST, ast.AST] = {}
        stack: List[ast.AST] = [info.node]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                parents[child] = node
                stack.append(child)
        for node in parents:
            if not isinstance(node, ast.Call):
                continue
            target = resolve_name(node.func, info.ctx.aliases)
            if target not in _RESOURCE_FACTORIES:
                continue
            message = self._judge(program, info, node, parents)
            if message is not None:
                yield self.finding(
                    info.ctx.rel, node,
                    f"{last_segment(target)}(...) {message}",
                )

    def _judge(
        self, program, info: FunctionInfo, node: ast.Call, parents
    ) -> Optional[str]:
        parent = parents.get(node)
        # `with open(...) as f:` — the dominating with discharges it.
        if isinstance(parent, ast.withitem):
            return None
        # `closing(open(...))` / `stack.enter_context(open(...))` /
        # `f(open(...))` — ownership transferred to the wrapper.
        if isinstance(parent, (ast.Call, ast.Starred, ast.keyword)):
            return None
        if isinstance(parent, ast.Return):
            return None
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id in ("self", "cls"):
                return self._judge_self_store(program, info, target.attr)
            if isinstance(target, ast.Name):
                return self._judge_local(info, target.id, parent)
            return None  # tuple-unpack and friends: cannot follow, quiet
        if isinstance(parent, ast.Expr):
            return (
                "result is discarded — the handle leaks immediately; "
                "use `with` or keep a reference you close"
            )
        if isinstance(parent, ast.Attribute):
            return (
                "is used inline without a dominating with/finally; the "
                "handle can never be closed"
            )
        return None

    def _judge_self_store(
        self, program, info: FunctionInfo, attr: str
    ) -> Optional[str]:
        cls = program.index.class_of(info)
        if cls is None:
            return None
        for disposal in _DISPOSALS:
            if program.index.resolve_method(cls, disposal) is not None:
                return None
        return (
            f"is stored on self.{attr} but class {cls.name} defines no "
            "close()/shutdown()/__exit__ — nothing can ever release it"
        )

    def _judge_local(
        self, info: FunctionInfo, name: str, assign: ast.Assign
    ) -> Optional[str]:
        closed_on_happy_path = False
        for node in ast.walk(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        if any(
                            isinstance(arg, ast.Name) and arg.id == name
                            for arg in expr.args
                        ):
                            return None  # with closing(x):
                        continue
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return None  # with x:
            if isinstance(node, ast.Return) and self._mentions(node.value, name):
                return None
            if isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    if self._has_disposal(final_stmt, name):
                        return None
            if isinstance(node, ast.Call):
                if self._is_disposal_call(node, name):
                    closed_on_happy_path = True
                elif any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                ):
                    return None  # handed to another owner
            if isinstance(node, ast.Assign):
                if node is not assign and self._mentions(node.value, name):
                    return None  # re-stored (self.x = handle, dict entry...)
        if closed_on_happy_path:
            return (
                f"assigned to {name!r} is closed only on the happy path; "
                "an exception before the close leaks it — use with/finally"
            )
        return (
            f"assigned to {name!r} is never closed in this function and "
            "never escapes it"
        )

    @staticmethod
    def _mentions(node: Optional[ast.AST], name: str) -> bool:
        """Whether ``name``'s *value* escapes through this expression.

        Occurrences as an attribute receiver (``pool.submit(...)``) are
        method calls *on* the resource, not transfers *of* it — counting
        them would make any use of the handle look like an escape.
        """
        if node is None:
            return False
        receivers = {
            id(child.value)
            for child in ast.walk(node)
            if isinstance(child, ast.Attribute)
        }
        return any(
            isinstance(child, ast.Name)
            and child.id == name
            and id(child) not in receivers
            for child in ast.walk(node)
        )

    @staticmethod
    def _is_disposal_call(node: ast.Call, name: str) -> bool:
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPOSALS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        )

    @classmethod
    def _has_disposal(cls, stmt: ast.AST, name: str) -> bool:
        return any(
            isinstance(node, ast.Call) and cls._is_disposal_call(node, name)
            for node in ast.walk(stmt)
        )


# ---------------------------------------------------------------------------
# FLOW004


class LockedContractRule(FlowRule):
    id = "FLOW004"
    title = "call to a *_locked method without holding the lock"
    rationale = (
        "The `_locked` suffix is the tree's lock-transfer contract: such "
        "a method mutates shared state and documents that *every caller* "
        "already holds the owning lock (CONC001 exempts their bodies on "
        "that promise). This rule is the promise's enforcement — each "
        "resolved call site must sit inside `with <lock>:` or inside "
        "another *_locked function, across any call depth."
    )
    example = "def flush(self):\n    self._refill_locked()   # no with self._lock"

    def check(self, program) -> Iterator[Finding]:
        for key, info in sorted(program.index.functions.items()):
            if not info.name.endswith("_locked"):
                continue
            yield from self._check_reacquire(info)
            for site in program.graph.sites_by_callee.get(key, ()):
                if site.lock_depth > 0:
                    continue
                if site.caller.name.endswith("_locked"):
                    continue
                yield self.finding(
                    site.caller.ctx.rel, site.node,
                    f"{site.caller.qualname}() calls {info.qualname}() "
                    "without holding the lock; *_locked methods require "
                    "every caller to enter `with <lock>:` first",
                )

    def _check_reacquire(self, info: FunctionInfo) -> Iterator[Finding]:
        from repro.statcheck.astutil import walk_with_lock_depth

        for node, depth in walk_with_lock_depth(info.node):
            if depth > 0 and isinstance(node, (ast.With, ast.AsyncWith)):
                yield self.finding(
                    info.ctx.rel, node,
                    f"{info.qualname}() acquires a lock, but its _locked "
                    "suffix promises callers already hold it — "
                    "non-reentrant locks deadlock here",
                )
                return


# ---------------------------------------------------------------------------
# GRAPH001


class StageSpec:
    """One registered stage, reduced to what conformance checking needs."""

    def __init__(
        self,
        name: str,
        deps: Sequence[str],
        module: str,
        qualname: str,
        bound: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.deps = tuple(deps)
        self.module = module
        self.qualname = qualname
        self.bound = dict(bound or {})


def real_stage_specs() -> List[StageSpec]:
    """Specs for the real lab pipeline, via ``build_lab_graph()``.

    Unwraps ``functools.partial`` builders so the constant bindings a
    registration fixed (task id, embedding name, adaptation mode, shard)
    become the environment the builder body is evaluated under.
    """
    import functools
    import inspect

    from repro.core.experiment import lab_graph

    graph = lab_graph()
    specs: List[StageSpec] = []
    for name in graph.topological_order():
        stage = graph.stage(name)
        builder = stage.build
        bound: Dict[str, object] = {}
        while isinstance(builder, functools.partial):
            keywords = builder.keywords or {}
            positional = builder.args
            builder = builder.func
            try:
                params = [
                    p.name
                    for p in inspect.signature(builder).parameters.values()
                ]
            except (TypeError, ValueError):
                params = []
            bound.update(zip(params, positional))
            bound.update(keywords)
        module = getattr(builder, "__module__", None)
        qualname = getattr(builder, "__qualname__", None)
        if not module or not qualname:
            continue
        scalars = {
            key: value
            for key, value in bound.items()
            if isinstance(value, (int, float, str, bool))
        }
        specs.append(
            StageSpec(name, stage.deps, module, qualname, scalars)
        )
    return specs


class StageGraphConformanceRule(FlowRule):
    id = "GRAPH001"
    title = "stage builder reads an artifact it does not declare"
    rationale = (
        "Stage cache keys hash config slices plus *declared* upstream "
        "keys. A builder that reads inputs['x'] without declaring 'x' "
        "still runs (the scheduler passes the whole closure during a "
        "fresh build) but its cache key ignores x — a change to x then "
        "serves a stale artifact byte-for-byte identically to a correct "
        "one. The rule evaluates each registered builder under its "
        "partial-bound constants and compares the transitive read set "
        "against Stage.deps."
    )
    example = "def _build(lab, inputs):\n    inputs['corpus']   # deps=()"

    def __init__(self, spec_provider=None):
        self._provider = spec_provider

    def applies_to(self, program) -> bool:
        return self._provider is not None or (
            "repro.pipeline.stages" in program.contexts
        )

    def check(self, program) -> Iterator[Finding]:
        provider = self._provider or real_stage_specs
        specs = provider()
        known = {spec.name for spec in specs}
        # (rel, line, key) -> stage names affected; one finding per site+key.
        missing: Dict[Tuple[str, int, str], Set[str]] = {}
        anchors: Dict[Tuple[str, int, str], ast.AST] = {}
        unknown: Dict[Tuple[str, int, str], Set[str]] = {}
        for spec in specs:
            fn = program.index.functions.get(f"{spec.module}:{spec.qualname}")
            if fn is None or "inputs" not in fn.params:
                continue
            declared = set(spec.deps)
            reads = collect_input_reads(
                fn, "inputs", dict(spec.bound), program.index
            )
            for read in reads:
                line = getattr(read.node, "lineno", 1)
                if read.keys is not None:
                    for key in sorted(read.keys - declared):
                        slot = (read.rel, line, key)
                        table = missing if key in known else unknown
                        table.setdefault(slot, set()).add(spec.name)
                        anchors[slot] = read.node
                elif read.pattern is not None:
                    try:
                        regex = re.compile(read.pattern)
                    except re.error:
                        continue
                    for key in sorted(known):
                        if regex.match(key) and key not in declared:
                            slot = (read.rel, line, key)
                            missing.setdefault(slot, set()).add(spec.name)
                            anchors[slot] = read.node
        for slot in sorted(missing):
            rel, _, key = slot
            yield self.finding(
                rel, anchors[slot],
                f"builder reads inputs[{key!r}] but "
                f"{self._stage_list(missing[slot])} does not declare it "
                "as a dep — the cache key silently ignores that artifact",
            )
        for slot in sorted(unknown):
            rel, _, key = slot
            yield self.finding(
                rel, anchors[slot],
                f"builder for {self._stage_list(unknown[slot])} reads "
                f"inputs[{key!r}], which no registered stage produces",
            )

    @staticmethod
    def _stage_list(names: Set[str]) -> str:
        ordered = sorted(names)
        shown = ", ".join(repr(name) for name in ordered[:3])
        extra = len(ordered) - 3
        label = "stage" if len(ordered) == 1 else "stages"
        if extra > 0:
            return f"{label} {shown} (+{extra} more)"
        return f"{label} {shown}"


#: Every flow rule class, in reporting order.
FLOW_RULE_CLASSES: Tuple[type, ...] = (
    SeedProvenanceRule,
    ExceptionEscapeRule,
    ResourceLifecycleRule,
    LockedContractRule,
    StageGraphConformanceRule,
)

__all__ = [
    "FLOW_RULE_CLASSES",
    "FlowRule",
    "ExceptionEscapeRule",
    "LockedContractRule",
    "ResourceLifecycleRule",
    "SeedProvenanceRule",
    "StageGraphConformanceRule",
    "StageSpec",
    "real_stage_specs",
]
