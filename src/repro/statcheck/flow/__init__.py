"""``repro.statcheck.flow``: whole-program analysis over the tree.

The per-file rules answer "is this line suspicious?"; the flow layer
answers the questions every determinism bug PR 8-9 fixed actually posed —
*where does this seed come from three calls up?*, *who catches this
ShedError?*, *does this builder read artifacts its stage never declared?*
It parses the full tree once (reusing the engine's contexts), builds a
:class:`ProgramIndex` and a conservative :class:`CallGraph` (Tarjan SCCs
shared with ``quick.py``), and runs the FLOW001-004/GRAPH001 rules over
the resulting program.

Entry points:

* :func:`build_program` — contexts -> :class:`ProgramContext`;
* :func:`run_flow_rules` — program + rules -> findings;
* :func:`program_from_sources` — in-memory fixture programs for tests;
* :func:`select_flow_rules` / :func:`flow_catalog` — registry plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.statcheck.findings import Finding, StatcheckError
from repro.statcheck.flow.callgraph import CallGraph, CallSite
from repro.statcheck.flow.index import ClassInfo, FunctionInfo, ProgramIndex
from repro.statcheck.flow.rules_flow import (
    FLOW_RULE_CLASSES,
    FlowRule,
    StageSpec,
    real_stage_specs,
)

#: Flow rule ids, mirrored statically in ``rules.FAMILIES["flow"]``.
FLOW_RULE_IDS = tuple(cls.id for cls in FLOW_RULE_CLASSES)


@dataclass
class ProgramContext:
    """The whole analyzed tree: per-file contexts, index, call graph."""

    contexts: Dict[str, object]  # module name -> FileContext
    index: ProgramIndex
    graph: CallGraph


def build_program(contexts: Sequence[object]) -> ProgramContext:
    """Index and call-graph a set of parsed file contexts."""
    index = ProgramIndex(contexts)
    return ProgramContext(
        contexts=dict(index.contexts), index=index, graph=CallGraph(index)
    )


def program_from_sources(sources: Dict[str, str]) -> ProgramContext:
    """A program built from ``{filename: source}`` — the fixture entry
    point for flow-rule tests."""
    from pathlib import Path

    from repro.statcheck.engine import make_context

    contexts = [
        make_context(Path(name), source, rel=name)
        for name, source in sorted(sources.items())
    ]
    return build_program(contexts)


def default_flow_rules() -> List[FlowRule]:
    """Fresh instances of every flow rule."""
    return [cls() for cls in FLOW_RULE_CLASSES]


def select_flow_rules(ids: Optional[Sequence[str]] = None) -> List[FlowRule]:
    """Flow rules filtered to ``ids`` (ids or the ``flow`` family name)."""
    if not ids:
        return default_flow_rules()
    wanted = set()
    known = set(FLOW_RULE_IDS)
    for selector in ids:
        token = selector.strip()
        if not token:
            continue
        if token.lower() == "flow":
            wanted.update(known)
        elif token.upper() in known:
            wanted.add(token.upper())
        else:
            raise StatcheckError(
                f"unknown flow rule {selector!r}; known: {sorted(known)}"
            )
    return [cls() for cls in FLOW_RULE_CLASSES if cls.id in wanted]


def run_flow_rules(
    program: ProgramContext,
    rules: Optional[Sequence[FlowRule]] = None,
) -> List[Finding]:
    """Run flow rules over ``program``; findings are unsuppressed here —
    the engine routes them through each file's suppression ledger."""
    findings: List[Finding] = []
    for rule in (rules if rules is not None else default_flow_rules()):
        if not rule.applies_to(program):
            continue
        findings.extend(rule.check(program))
    return sorted(findings)


def flow_catalog() -> List[dict]:
    """Documentation entries for the flow rules (mirrors ``catalog()``)."""
    return [
        {
            "id": cls.id,
            "title": cls.title,
            "rationale": cls.rationale,
            "example": cls.example,
        }
        for cls in FLOW_RULE_CLASSES
    ]


__all__ = [
    "FLOW_RULE_CLASSES",
    "FLOW_RULE_IDS",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FlowRule",
    "FunctionInfo",
    "ProgramContext",
    "ProgramIndex",
    "StageSpec",
    "build_program",
    "default_flow_rules",
    "flow_catalog",
    "program_from_sources",
    "real_stage_specs",
    "run_flow_rules",
    "select_flow_rules",
]
