"""Whole-program symbol index: every function, class, and attribute type.

The per-file rules see one :class:`~repro.statcheck.engine.FileContext` at
a time; the flow layer needs to answer *"which function is
``repro.delivery.engine.DeliveryEngine._deliver_fresh``?"* across the
whole tree.  :class:`ProgramIndex` is that answer, built in one pass over
the already-parsed contexts:

* functions keyed by ``module:qualname`` (``a.b:Class.method``);
* classes with their direct methods, resolved base classes, and an
  inferred attribute-type map (``self.service`` -> ``CurationService``)
  from ``__init__`` assignments, annotated parameters, and class-body
  annotations;
* bare-name tables for the conservative fallbacks the call graph uses.

Everything here is *optimistic*: unresolvable names resolve to nothing
rather than to everything, so downstream rules stay quiet instead of
crying wolf on dynamic dispatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.statcheck.astutil import dotted_name, resolve_name

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function or method, with enough context to analyze its body."""

    module: str
    qualname: str
    node: FunctionNode
    ctx: object  # FileContext (duck-typed to avoid an engine import cycle)
    class_name: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        a = self.node.args
        return [p.arg for p in (a.posonlyargs + a.args + a.kwonlyargs)]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, inferred attribute types."""

    module: str
    name: str
    node: ast.ClassDef
    ctx: object
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: Tuple[str, ...] = ()
    #: attribute name -> class *key* (``module:Class``) when inferable.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted class name out of an annotation expression, if readable.

    Handles ``Foo``, ``pkg.Foo``, ``"Foo"`` (string annotation), and
    ``Optional[Foo]`` / ``List[Foo]`` by looking inside a one-argument
    subscript.  Anything fancier resolves to ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        try:
            return annotation_name(ast.parse(text, mode="eval").body)
        except SyntaxError:
            return None
    name = dotted_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Subscript):
        return annotation_name(node.slice)
    return None


class ProgramIndex:
    """Module-qualified symbol tables over a set of parsed file contexts."""

    def __init__(self, contexts: Sequence[object]):
        #: module name -> FileContext
        self.contexts: Dict[str, object] = {ctx.module: ctx for ctx in contexts}
        #: ``module:qualname`` -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: ``module:ClassName`` -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> every ClassInfo with that name
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: bare method name -> every method FunctionInfo with that name
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: (module, bare name) -> top-level FunctionInfo
        self.module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        for ctx in contexts:
            self._index_module(ctx)
        for info in self.classes.values():
            self._infer_attr_types(info)

    # -- construction -------------------------------------------------

    def _index_module(self, ctx) -> None:
        stack: List[Tuple[ast.AST, str, Optional[str]]] = [
            (ctx.tree, "", None)
        ]
        while stack:
            scope, prefix, class_name = stack.pop()
            for node in ast.iter_child_nodes(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{node.name}"
                    info = FunctionInfo(
                        module=ctx.module, qualname=qual, node=node,
                        ctx=ctx, class_name=class_name,
                    )
                    self.functions[info.key] = info
                    if prefix == "":
                        self.module_functions[(ctx.module, node.name)] = info
                    if class_name is not None:
                        self.methods_by_name.setdefault(node.name, []).append(info)
                        cls = self.classes.get(f"{ctx.module}:{class_name}")
                        if cls is not None and prefix == f"{class_name}.":
                            cls.methods[node.name] = info
                    # Nested defs are functions in their own right; the
                    # class context does not extend into them.
                    stack.append((node, f"{qual}.", None))
                elif isinstance(node, ast.ClassDef):
                    bases = tuple(
                        name for name in (
                            resolve_name(base, ctx.aliases)
                            for base in node.bases
                        ) if name
                    )
                    cls = ClassInfo(
                        module=ctx.module, name=node.name, node=node,
                        ctx=ctx, base_names=bases,
                    )
                    self.classes[cls.key] = cls
                    self.classes_by_name.setdefault(node.name, []).append(cls)
                    stack.append((node, f"{node.name}.", node.name))
                elif isinstance(node, (ast.If, ast.Try)):
                    # TYPE_CHECKING guards and import fallbacks still
                    # define real symbols.
                    stack.append((node, prefix, class_name))

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        # Class-body annotations: ``server: "CurationHTTPServer"``.
        for node in cls.node.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target = self.resolve_class(
                    annotation_name(node.annotation), cls.ctx
                )
                if target is not None:
                    cls.attr_types[node.target.id] = target.key
        init = cls.methods.get("__init__")
        if init is None:
            return
        # Parameter annotations give types to ``self.x = x`` assignments.
        param_types: Dict[str, str] = {}
        args = init.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            target = self.resolve_class(annotation_name(arg.annotation), cls.ctx)
            if target is not None:
                param_types[arg.arg] = target.key
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target_node = node.targets[0]
            if not (
                isinstance(target_node, ast.Attribute)
                and isinstance(target_node.value, ast.Name)
                and target_node.value.id == "self"
            ):
                continue
            attr = target_node.attr
            value = node.value
            if isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types.setdefault(attr, param_types[value.id])
            elif isinstance(value, ast.Call):
                constructed = self.resolve_class(
                    resolve_name(value.func, cls.ctx.aliases), cls.ctx
                )
                if constructed is not None:
                    cls.attr_types.setdefault(attr, constructed.key)

    # -- lookups ------------------------------------------------------

    def resolve_dotted(
        self, dotted: Optional[str]
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """A function or class for an absolute dotted name, if indexed.

        Splits ``a.b.c.f`` at every point, longest module prefix first, so
        ``repro.utils.rng.derive_rng`` finds module ``repro.utils.rng``'s
        function ``derive_rng`` and ``pkg.mod.Cls.m`` finds the method.
        """
        if not dotted:
            return None
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self.contexts:
                continue
            remainder = ".".join(parts[split:])
            found = self.functions.get(f"{module}:{remainder}")
            if found is not None:
                return found
            klass = self.classes.get(f"{module}:{remainder}")
            if klass is not None:
                return klass
        return None

    def resolve_class(
        self, name: Optional[str], ctx
    ) -> Optional[ClassInfo]:
        """ClassInfo for a (possibly bare, possibly aliased) class name."""
        if not name:
            return None
        root, _, rest = name.partition(".")
        full = ctx.aliases.get(root, root) if ctx is not None else root
        dotted = f"{full}.{rest}" if rest else full
        found = self.resolve_dotted(dotted)
        if isinstance(found, ClassInfo):
            return found
        if ctx is not None and "." not in name:
            same_module = self.classes.get(f"{ctx.module}:{name}")
            if same_module is not None:
                return same_module
        candidates = self.classes_by_name.get(name.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """A method looked up on ``cls``, walking indexed base classes."""
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            method = current.methods.get(name)
            if method is not None:
                return method
            for base_name in current.base_names:
                base = self.resolve_dotted(base_name)
                if isinstance(base, ClassInfo):
                    queue.append(base)
        return None

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.class_name is None:
            return None
        return self.classes.get(f"{info.module}:{info.class_name}")


__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProgramIndex",
    "annotation_name",
]
