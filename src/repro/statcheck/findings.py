"""Core datatypes of the statcheck analyzer.

A :class:`Finding` is a problem *in the analyzed code* (non-zero lint exit
code 1); a :class:`StatcheckError` is a failure *of the analyzer itself*
(bad target path, internal crash — CLI exit code 2).  Keeping the two
distinct is what lets CI tell "the tree regressed" apart from "the linter
broke".
"""

from __future__ import annotations

from dataclasses import dataclass


class StatcheckError(RuntimeError):
    """The analyzer failed to run (missing target, internal error)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location.

    Ordering is (path, line, col, rule) so reports are stable regardless of
    rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


__all__ = ["Finding", "StatcheckError"]
