"""Finding baselines: ratchet new code without failing on legacy debt.

A baseline file (``.statcheck-baseline.json`` by convention) records the
set of findings that existed when it was written.  On later runs, findings
whose *identity* appears in the baseline are reported separately and do
not fail the run — only findings absent from the baseline do.  Tightening
a rule therefore never blocks CI on pre-existing code: regenerate the
baseline (``repro lint --update-baseline``), commit it, and burn entries
down over time.

Identity is ``(path, rule, message)`` — deliberately *not* the line
number, so unrelated edits above a baselined finding do not resurrect it.
The cost is that two identical findings in one file collapse into one
entry; that is acceptable for a ratchet (either both are legacy or the
file is being actively edited, at which point the baseline should shrink,
not grow).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Sequence, Set, Tuple

from .findings import StatcheckError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .findings import Finding

BASELINE_FORMAT = "repro-statcheck-baseline-v1"

Identity = Tuple[str, str, str]


def finding_identity(finding: "Finding") -> Identity:
    return (finding.path, finding.rule, finding.message)


def load_baseline(path: Path) -> Set[Identity]:
    """Read a baseline file into a set of finding identities."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StatcheckError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise StatcheckError(
            f"{path} is not a {BASELINE_FORMAT} file"
        )
    entries: Set[Identity] = set()
    for entry in payload.get("findings", ()):
        try:
            entries.add((entry["path"], entry["rule"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise StatcheckError(
                f"malformed baseline entry in {path}: {entry!r}"
            ) from exc
    return entries


def write_baseline(path: Path, findings: Sequence["Finding"]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    identities = sorted({finding_identity(f) for f in findings})
    payload = {
        "format": BASELINE_FORMAT,
        "findings": [
            {"path": p, "rule": r, "message": m} for p, r, m in identities
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(identities)


def split_baselined(
    findings: Sequence["Finding"], baseline: Set[Identity]
) -> Tuple[List["Finding"], List["Finding"]]:
    """Partition into (new, baselined) against ``baseline``."""
    new: List["Finding"] = []
    old: List["Finding"] = []
    for finding in findings:
        (old if finding_identity(finding) in baseline else new).append(finding)
    return new, old


__all__ = [
    "BASELINE_FORMAT",
    "finding_identity",
    "load_baseline",
    "split_baselined",
    "write_baseline",
]
