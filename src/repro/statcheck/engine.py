"""The statcheck engine: parse once, run every rule, apply suppressions.

Pure stdlib (``ast`` + ``symtable`` + ``tokenize``): each target file is
read and parsed exactly once into a :class:`FileContext`; every selected
per-file rule then walks the shared tree, and the whole-program *flow*
rules (:mod:`repro.statcheck.flow`) run once over the full context set —
call graph, seed provenance, exception contracts, stage-graph
conformance.  Findings suppressed by ``# statcheck: ignore[RULE]``
comments are counted separately so the report can show both sides of the
ledger, and suppression comments that matched *nothing* are reported as
stale (:data:`STALE_RULE`).  The whole ``src/repro`` tree (~130 files)
lints — flow analysis included — in a couple of seconds.
"""

from __future__ import annotations

import ast
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import get_tracer, span
from repro.statcheck.astutil import build_alias_map
from repro.statcheck.findings import Finding, StatcheckError
from repro.statcheck.rules import Rule, default_rules
from repro.statcheck.suppress import SuppressionComment, parse_suppression_comments

PathLike = Union[str, Path]

#: Engine-level rule id for files that do not parse.
SYNTAX_RULE = "SYN001"

#: Engine-level rule id for suppression comments that matched no finding.
STALE_RULE = "SUP001"


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str]


@dataclass
class LintReport:
    """Outcome of one lint run: findings, suppressions, and accounting."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Stale suppression comments (:data:`STALE_RULE`) — hygiene, not
    #: correctness: they never fail a run on their own (exit code 3).
    stale: List[Finding] = field(default_factory=list)
    #: Findings matched by the baseline file: visible, but non-fatal.
    baselined: List[Finding] = field(default_factory=list)
    n_files: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def inventory(self) -> Dict[str, Dict[str, int]]:
        """Findings per rule per module — the drift signal manifests carry."""
        table: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            per_module = table.setdefault(finding.rule, {})
            per_module[finding.path] = per_module.get(finding.path, 0) + 1
        return {rule: dict(sorted(mods.items())) for rule, mods in sorted(table.items())}


def module_name(path: Path) -> str:
    """Dotted module name inferred from the package layout on disk."""
    if path.stem == "__init__":
        parts: List[str] = []
    else:
        parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def default_target() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_files(paths: Optional[Sequence[PathLike]] = None) -> List[Path]:
    """Resolve targets into a sorted list of python files.

    Raises :class:`StatcheckError` for a missing target — a misspelled path
    in CI must not report a green "0 findings in 0 files".
    """
    targets = [Path(p) for p in (paths or [default_target()])]
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(target.rglob("*.py"))
        elif target.is_file():
            files.append(target)
        else:
            raise StatcheckError(f"no such file or directory: {target}")
    return sorted(set(files))


def changed_files(ref: str = "HEAD", cwd: Optional[PathLike] = None) -> List[Path]:
    """Python files changed relative to ``ref``, plus untracked ones.

    Backs ``repro lint --diff``: lint only what a branch touches.  Raises
    :class:`StatcheckError` when git is unavailable or ``ref`` is unknown —
    a diff lint that silently checks nothing would defeat its purpose.
    Deleted files are excluded (nothing on disk to lint).
    """
    git = ["git"] + (["-C", str(cwd)] if cwd is not None else [])

    def run(args: List[str]) -> str:
        try:
            proc = subprocess.run(
                git + args, capture_output=True, text=True, check=True
            )
        except OSError as exc:
            raise StatcheckError(f"cannot run git: {exc}") from exc
        except subprocess.CalledProcessError as exc:
            detail = (exc.stderr or "").strip() or f"exit {exc.returncode}"
            raise StatcheckError(f"git {' '.join(args[:2])} failed: {detail}") from exc
        return proc.stdout

    top = Path(run(["rev-parse", "--show-toplevel"]).strip())
    names = run(["diff", "--name-only", "-z", ref, "--"]).split("\0")
    names += run(
        ["ls-files", "--others", "--exclude-standard", "-z", "--"]
    ).split("\0")
    files = {
        top / name
        for name in names
        if name.endswith(".py") and (top / name).is_file()
    }
    return sorted(files)


def make_context(path: Path, source: str, rel: Optional[str] = None) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        rel=rel or str(path),
        module=module_name(path),
        source=source,
        tree=tree,
        aliases=build_alias_map(tree),
    )


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return str(path)


def _syntax_finding(rel: str, error: SyntaxError) -> Finding:
    return Finding(
        path=rel,
        line=error.lineno or 1,
        col=(error.offset or 0) + 1,
        rule=SYNTAX_RULE,
        message=f"file does not parse: {error.msg}",
    )


def _suppressed_by(
    comments: Sequence[SuppressionComment], finding: Finding
) -> bool:
    """Whether a comment silences ``finding``; marks the comment used."""
    hit = False
    for comment in comments:
        if comment.matches(finding.line, finding.rule):
            comment.used = True
            hit = True  # keep going: every matching comment counts as used
    return hit


def _check_context(
    ctx: FileContext,
    rules: Sequence[Rule],
    comments: Sequence[SuppressionComment],
) -> Tuple[List[Finding], List[Finding]]:
    """Run per-file ``rules`` over one parsed context."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if _suppressed_by(comments, finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    rel: Optional[str] = None,
    source: Optional[str] = None,
) -> tuple:
    """Lint one file with per-file rules; returns ``(findings, suppressed)``."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    rel = rel or str(path)
    try:
        ctx = make_context(path, source, rel)
    except SyntaxError as error:
        return [_syntax_finding(rel, error)], []
    return _check_context(ctx, rules, parse_suppression_comments(source))


def lint_source(
    source: str,
    filename: str = "snippet.py",
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint an in-memory snippet (the fixture-test entry point)."""
    started = time.perf_counter()
    findings, suppressed = lint_file(
        Path(filename), rules if rules is not None else default_rules(),
        rel=filename, source=source,
    )
    return LintReport(
        findings=sorted(findings),
        suppressed=sorted(suppressed),
        n_files=1,
        duration_s=time.perf_counter() - started,
    )


def _resolve_flow(flow, rules) -> list:
    """Normalise the ``flow`` argument of :func:`run_lint` to a rule list."""
    if flow is None:
        # Default rule selection ⇒ default flow rules; an explicit per-file
        # subset ⇒ no whole-program pass unless asked for.
        flow = rules is None
    if flow is True:
        from repro.statcheck.flow import default_flow_rules

        return default_flow_rules()
    if not flow:
        return []
    return list(flow)


def run_lint(
    paths: Optional[Sequence[PathLike]] = None,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[PathLike] = None,
    flow=None,
    stale: Optional[bool] = None,
) -> LintReport:
    """Lint ``paths`` (default: the installed ``repro`` package).

    ``root`` shortens reported paths to be relative (defaults to the common
    parent of the default target, keeping CI output repo-relative).

    ``flow`` selects the whole-program pass: ``None`` runs the default flow
    rules exactly when ``rules`` is the default selection, ``True``/``False``
    force it, and a sequence of :class:`~repro.statcheck.flow.FlowRule`
    instances runs just those.  ``stale`` controls stale-suppression
    detection (:data:`STALE_RULE`); by default it is on only for full runs
    (all per-file rules *and* the flow pass), because a comment can only be
    proven dead when every rule it names actually ran.

    Analyzer failures raise :class:`StatcheckError`; problems *found in the
    code* come back as findings.
    """
    started = time.perf_counter()
    per_file_rules = list(rules) if rules is not None else default_rules()
    flow_rules = _resolve_flow(flow, rules)
    if stale is None:
        stale = rules is None and bool(flow_rules)
    files = discover_files(paths)
    root_path = Path(root) if root is not None else (
        default_target().parent if paths is None else None
    )
    report = LintReport()
    contexts: List[FileContext] = []
    comments_by_rel: Dict[str, List[SuppressionComment]] = {}
    with span("statcheck.lint", files=len(files)) as sp:
        for path in files:
            rel = _display_path(path, root_path)
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as error:
                raise StatcheckError(f"cannot read {path}: {error}") from error
            comments = parse_suppression_comments(source)
            comments_by_rel[rel] = comments
            try:
                ctx = make_context(path, source, rel)
            except SyntaxError as error:
                report.findings.append(_syntax_finding(rel, error))
                continue
            contexts.append(ctx)
            findings, suppressed = _check_context(ctx, per_file_rules, comments)
            report.findings.extend(findings)
            report.suppressed.extend(suppressed)
        if flow_rules and contexts:
            from repro.statcheck.flow import build_program, run_flow_rules

            program = build_program(contexts)
            for finding in run_flow_rules(program, flow_rules):
                comments = comments_by_rel.get(finding.path, ())
                if _suppressed_by(comments, finding):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
        if stale:
            for rel, comments in sorted(comments_by_rel.items()):
                for comment in comments:
                    if comment.used:
                        continue
                    report.stale.append(
                        Finding(
                            path=rel,
                            line=comment.line,
                            col=1,
                            rule=STALE_RULE,
                            message=(
                                "stale suppression "
                                f"({', '.join(comment.rules)}): no finding "
                                "matched this comment — remove it"
                            ),
                        )
                    )
        report.n_files = len(files)
        report.findings.sort()
        report.suppressed.sort()
        report.stale.sort()
        sp.incr("findings", len(report.findings))
        sp.incr("suppressed", len(report.suppressed))
        sp.incr("stale", len(report.stale))
    for rule_id, count in report.counts_by_rule().items():
        get_tracer().count(f"lint.findings.{rule_id}", count)
    report.duration_s = time.perf_counter() - started
    return report


__all__ = [
    "STALE_RULE",
    "SYNTAX_RULE",
    "FileContext",
    "LintReport",
    "changed_files",
    "module_name",
    "default_target",
    "discover_files",
    "make_context",
    "lint_file",
    "lint_source",
    "run_lint",
]
