"""The statcheck engine: parse once, run every rule, apply suppressions.

Pure stdlib (``ast`` + ``symtable`` + ``tokenize``): each target file is
read and parsed exactly once into a :class:`FileContext`; every selected
rule then walks the shared tree.  Findings suppressed by
``# statcheck: ignore[RULE]`` comments are counted separately so the
report can show both sides of the ledger.  The whole ``src/repro`` tree
(~90 files) lints in well under a second.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.trace import get_tracer, span
from repro.statcheck.astutil import build_alias_map
from repro.statcheck.findings import Finding, StatcheckError
from repro.statcheck.rules import Rule, default_rules
from repro.statcheck.suppress import is_suppressed, parse_suppressions

PathLike = Union[str, Path]

#: Engine-level rule id for files that do not parse.
SYNTAX_RULE = "SYN001"


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str]


@dataclass
class LintReport:
    """Outcome of one lint run: findings, suppressions, and accounting."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    n_files: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def inventory(self) -> Dict[str, Dict[str, int]]:
        """Findings per rule per module — the drift signal manifests carry."""
        table: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            per_module = table.setdefault(finding.rule, {})
            per_module[finding.path] = per_module.get(finding.path, 0) + 1
        return {rule: dict(sorted(mods.items())) for rule, mods in sorted(table.items())}


def module_name(path: Path) -> str:
    """Dotted module name inferred from the package layout on disk."""
    if path.stem == "__init__":
        parts: List[str] = []
    else:
        parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def default_target() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_files(paths: Optional[Sequence[PathLike]] = None) -> List[Path]:
    """Resolve targets into a sorted list of python files.

    Raises :class:`StatcheckError` for a missing target — a misspelled path
    in CI must not report a green "0 findings in 0 files".
    """
    targets = [Path(p) for p in (paths or [default_target()])]
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(target.rglob("*.py"))
        elif target.is_file():
            files.append(target)
        else:
            raise StatcheckError(f"no such file or directory: {target}")
    return sorted(set(files))


def make_context(path: Path, source: str, rel: Optional[str] = None) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        rel=rel or str(path),
        module=module_name(path),
        source=source,
        tree=tree,
        aliases=build_alias_map(tree),
    )


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return str(path)


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    rel: Optional[str] = None,
    source: Optional[str] = None,
) -> tuple:
    """Lint one file; returns ``(findings, suppressed)``."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    rel = rel or str(path)
    try:
        ctx = make_context(path, source, rel)
    except SyntaxError as error:
        finding = Finding(
            path=rel,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            rule=SYNTAX_RULE,
            message=f"file does not parse: {error.msg}",
        )
        return [finding], []
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if is_suppressed(suppressions, finding.line, finding.rule):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    filename: str = "snippet.py",
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint an in-memory snippet (the fixture-test entry point)."""
    started = time.perf_counter()
    findings, suppressed = lint_file(
        Path(filename), rules if rules is not None else default_rules(),
        rel=filename, source=source,
    )
    return LintReport(
        findings=sorted(findings),
        suppressed=sorted(suppressed),
        n_files=1,
        duration_s=time.perf_counter() - started,
    )


def run_lint(
    paths: Optional[Sequence[PathLike]] = None,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[PathLike] = None,
) -> LintReport:
    """Lint ``paths`` (default: the installed ``repro`` package).

    ``root`` shortens reported paths to be relative (defaults to the common
    parent of the default target, keeping CI output repo-relative).
    Analyzer failures raise :class:`StatcheckError`; problems *found in the
    code* come back as findings.
    """
    started = time.perf_counter()
    rules = list(rules) if rules is not None else default_rules()
    files = discover_files(paths)
    root_path = Path(root) if root is not None else (
        default_target().parent if paths is None else None
    )
    report = LintReport()
    with span("statcheck.lint", files=len(files)) as sp:
        for path in files:
            rel = _display_path(path, root_path)
            try:
                findings, suppressed = lint_file(path, rules, rel=rel)
            except OSError as error:
                raise StatcheckError(f"cannot read {path}: {error}") from error
            report.findings.extend(findings)
            report.suppressed.extend(suppressed)
        report.n_files = len(files)
        report.findings.sort()
        report.suppressed.sort()
        sp.incr("findings", len(report.findings))
        sp.incr("suppressed", len(report.suppressed))
    for rule_id, count in report.counts_by_rule().items():
        get_tracer().count(f"lint.findings.{rule_id}", count)
    report.duration_s = time.perf_counter() - started
    return report


__all__ = [
    "SYNTAX_RULE",
    "FileContext",
    "LintReport",
    "module_name",
    "default_target",
    "discover_files",
    "make_context",
    "lint_file",
    "lint_source",
    "run_lint",
]
