"""``repro.statcheck``: static determinism/purity/concurrency linting.

A pure-stdlib (``ast`` + ``symtable`` + ``tokenize``) analyzer that
enforces the apparatus' own invariants — the things a generic linter
cannot know: all entropy flows through ``utils/rng.py``, stage builders
are pure functions of their inputs, shared state is mutated under its
owning lock, client failures are accounted for, spans always close.

Two layers:

* per-file rules (DET/PUR/CONC/RES/OBS/SRV/PERF) walk one parsed file;
* whole-program *flow* rules (:mod:`repro.statcheck.flow`:
  FLOW001-004/GRAPH001) build a module-qualified symbol index and a
  conservative call graph over the full tree, then check seed
  provenance, exception contracts, resource lifecycles, lock-transfer
  call sites, and stage-graph conformance interprocedurally.

Entry points:

* :func:`run_lint` — lint files/directories (default: the installed
  ``repro`` package, flow rules included), returns a :class:`LintReport`;
* :func:`lint_source` — lint an in-memory snippet (fixture tests);
* :func:`quick_check` — compile + import-cycle smoke check;
* ``repro lint`` — the CLI front-end (exit 0 clean / 1 findings /
  2 analyzer error / 3 stale suppressions only).

Findings are suppressed per line with ``# statcheck: ignore[RULE] -
justification`` (same line or the comment line directly above); a
suppression that matches nothing is itself reported (``SUP001``).
Legacy findings can be ratcheted with a baseline file
(:mod:`repro.statcheck.baseline`, ``repro lint --update-baseline``).
"""

from repro.statcheck.baseline import (
    BASELINE_FORMAT,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.statcheck.engine import (
    STALE_RULE,
    SYNTAX_RULE,
    FileContext,
    LintReport,
    changed_files,
    default_target,
    discover_files,
    lint_source,
    run_lint,
)
from repro.statcheck.findings import Finding, StatcheckError
from repro.statcheck.quick import CYCLE_RULE, quick_check
from repro.statcheck.report import (
    REPORT_FORMAT,
    SARIF_VERSION,
    record_inventory,
    render_json,
    render_sarif,
    render_text,
    write_json,
    write_sarif,
)
from repro.statcheck.rules import (
    FAMILIES,
    Rule,
    catalog,
    default_rules,
    select_rules,
)

__all__ = [
    "BASELINE_FORMAT",
    "CYCLE_RULE",
    "FAMILIES",
    "FileContext",
    "Finding",
    "LintReport",
    "REPORT_FORMAT",
    "Rule",
    "SARIF_VERSION",
    "STALE_RULE",
    "StatcheckError",
    "SYNTAX_RULE",
    "catalog",
    "changed_files",
    "default_rules",
    "default_target",
    "discover_files",
    "lint_source",
    "load_baseline",
    "quick_check",
    "record_inventory",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "select_rules",
    "split_baselined",
    "write_baseline",
    "write_json",
    "write_sarif",
]
