"""``repro.statcheck``: static determinism/purity/concurrency linting.

A pure-stdlib (``ast`` + ``symtable`` + ``tokenize``) analyzer that
enforces the apparatus' own invariants — the things a generic linter
cannot know: all entropy flows through ``utils/rng.py``, stage builders
are pure functions of their inputs, shared state is mutated under its
owning lock, client failures are accounted for, spans always close.

Entry points:

* :func:`run_lint` — lint files/directories (default: the installed
  ``repro`` package), returns a :class:`LintReport`;
* :func:`lint_source` — lint an in-memory snippet (fixture tests);
* :func:`quick_check` — compile + import-cycle smoke check;
* ``repro lint`` — the CLI front-end (exit 0 clean / 1 findings /
  2 analyzer error).

Findings are suppressed per line with ``# statcheck: ignore[RULE] -
justification`` (same line or the comment line directly above).
"""

from repro.statcheck.engine import (
    SYNTAX_RULE,
    FileContext,
    LintReport,
    default_target,
    discover_files,
    lint_source,
    run_lint,
)
from repro.statcheck.findings import Finding, StatcheckError
from repro.statcheck.quick import CYCLE_RULE, quick_check
from repro.statcheck.report import (
    REPORT_FORMAT,
    record_inventory,
    render_json,
    render_text,
    write_json,
)
from repro.statcheck.rules import (
    FAMILIES,
    Rule,
    catalog,
    default_rules,
    select_rules,
)

__all__ = [
    "CYCLE_RULE",
    "FAMILIES",
    "FileContext",
    "Finding",
    "LintReport",
    "REPORT_FORMAT",
    "Rule",
    "StatcheckError",
    "SYNTAX_RULE",
    "catalog",
    "default_rules",
    "default_target",
    "discover_files",
    "lint_source",
    "quick_check",
    "record_inventory",
    "render_json",
    "render_text",
    "run_lint",
    "select_rules",
    "write_json",
]
