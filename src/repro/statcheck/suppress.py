"""Per-rule suppression comments.

A finding is silenced by a comment naming its rule id::

    now = time.time()  # statcheck: ignore[DET003] - display-only age column

or, for statements that do not fit on one line, by a standalone comment on
the line directly above the flagged statement::

    # statcheck: ignore[PUR002] - canonicalisation round-trip (module docs)
    with tempfile.TemporaryDirectory(prefix="repro-bert-") as tmp:

Several ids may be listed (``ignore[DET003,CONC002]``).  Suppressions are
deliberately *narrow*: one line, explicit rule ids, and — by convention,
enforced in review — a one-line justification after the ``-``.  There is no
file-level or wildcard form; a module that needs ten suppressions should be
fixed instead.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

#: ``# statcheck: ignore[DET001]`` / ``# statcheck: ignore[DET001, CONC002]``
_PATTERN = re.compile(r"#\s*statcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A suppression comment applies to its own line; a *standalone* comment
    (nothing but the comment on the line) also applies to the following
    line, covering multi-line statements whose first line has no room.
    """
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if not match:
                continue
            rules = {
                rule.strip().upper()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
            line = token.start[0]
            suppressed.setdefault(line, set()).update(rules)
            if token.line.strip().startswith("#"):  # standalone comment
                suppressed.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:
        pass  # unparsable source is reported as SYN001 by the engine
    return suppressed


def is_suppressed(
    suppressions: Dict[int, Set[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is suppressed at ``line``."""
    return rule.upper() in suppressions.get(line, ())


__all__ = ["parse_suppressions", "is_suppressed"]
