"""Per-rule suppression comments.

A finding is silenced by a comment naming its rule id::

    now = time.time()  # statcheck: ignore[DET003] - display-only age column

or, for statements that do not fit on one line, by a standalone comment on
the line directly above the flagged statement::

    # statcheck: ignore[PUR002] - canonicalisation round-trip (module docs)
    with tempfile.TemporaryDirectory(prefix="repro-bert-") as tmp:

Several ids may be listed (``ignore[DET003,CONC002]``).  Suppressions are
deliberately *narrow*: one line, explicit rule ids, and — by convention,
enforced in review — a one-line justification after the ``-``.  There is no
file-level or wildcard form; a module that needs ten suppressions should be
fixed instead.

The engine additionally tracks which comments actually suppressed
something: a comment whose rules matched no finding in the run is *stale*
and reported under ``SUP001`` (exit code 3) — dead suppressions otherwise
accumulate and silently blind future rule improvements.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: ``# statcheck: ignore[DET001]`` / ``# statcheck: ignore[DET001, CONC002]``.
#: Anchored at the comment start so prose *mentioning* the directive (docs,
#: examples in docstrings' neighbouring comments) never registers one.
_PATTERN = re.compile(r"\A#+\s*statcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass
class SuppressionComment:
    """One ``# statcheck: ignore[...]`` comment and the lines it covers."""

    line: int
    rules: Tuple[str, ...]
    #: The finding lines this comment suppresses (its own line; plus the
    #: next line when the comment stands alone).
    covers: Tuple[int, ...]
    text: str = ""
    used: bool = field(default=False, compare=False)

    def matches(self, line: int, rule: str) -> bool:
        return line in self.covers and rule.upper() in self.rules


def parse_suppression_comments(source: str) -> List[SuppressionComment]:
    """Every suppression comment in ``source``, in line order."""
    comments: List[SuppressionComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.match(token.string)
            if not match:
                continue
            rules = tuple(
                sorted(
                    {
                        rule.strip().upper()
                        for rule in match.group(1).split(",")
                        if rule.strip()
                    }
                )
            )
            if not rules:
                continue
            line = token.start[0]
            covers = (line, line + 1) if (
                token.line.strip().startswith("#")  # standalone comment
            ) else (line,)
            comments.append(
                SuppressionComment(
                    line=line, rules=rules, covers=covers,
                    text=token.string.strip(),
                )
            )
    except tokenize.TokenError:
        pass  # unparsable source is reported as SYN001 by the engine
    return comments


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A suppression comment applies to its own line; a *standalone* comment
    (nothing but the comment on the line) also applies to the following
    line, covering multi-line statements whose first line has no room.
    """
    suppressed: Dict[int, Set[str]] = {}
    for comment in parse_suppression_comments(source):
        for line in comment.covers:
            suppressed.setdefault(line, set()).update(comment.rules)
    return suppressed


def is_suppressed(
    suppressions: Dict[int, Set[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is suppressed at ``line``."""
    return rule.upper() in suppressions.get(line, ())


__all__ = [
    "SuppressionComment",
    "is_suppressed",
    "parse_suppression_comments",
    "parse_suppressions",
]
