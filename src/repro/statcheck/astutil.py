"""Shared AST helpers: dotted names, import-alias resolution, lock scopes.

Every rule wants to answer the same two questions about a call site —
*"what fully-qualified thing is being called?"* (``np.random.seed`` must
resolve through ``import numpy as np``) and *"where am I?"* (inside which
function, inside a ``with <lock>:`` block, ...).  The helpers here answer
them once so the rules stay small.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``"np.random.seed"`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def build_alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> full dotted path, from the module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random`` maps ``random -> numpy.random``; relative imports are skipped
    (rules match on absolute names).  Function-level imports are included
    too — aliasing is name-based, not scope-exact, which is adequate for a
    linter and errs on the side of finding things.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of an expression, alias-resolved."""
    name = dotted_name(node)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    full = aliases.get(root, root)
    return f"{full}.{rest}" if rest else full


def resolve_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of a call's target, alias-resolved."""
    return resolve_name(node.func, aliases)


def last_segment(qualified: Optional[str]) -> str:
    """The final attribute of a dotted name (``""`` for ``None``)."""
    return qualified.rsplit(".", 1)[-1] if qualified else ""


def is_lock_context(item: ast.withitem) -> bool:
    """Whether a with-item looks like a lock acquisition.

    Matches ``with self._lock:``, ``with _GRAPH_LOCK:``, and factory calls
    like ``with self._lock_for(name):`` — anything whose final name segment
    contains ``lock``.
    """
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr)
    return bool(name) and "lock" in name.rsplit(".", 1)[-1].lower()


def walk_with_lock_depth(node: ast.AST, depth: int = 0) -> Iterator[tuple]:
    """Yield ``(child, lock_depth)`` for every descendant statement/expr.

    ``lock_depth`` counts enclosing ``with <lock>:`` blocks, so a rule can
    ask "was this mutation performed while holding a lock?" without
    re-walking the tree per candidate.
    """
    for child in ast.iter_child_nodes(node):
        child_depth = depth
        if isinstance(child, (ast.With, ast.AsyncWith)) and any(
            is_lock_context(item) for item in child.items
        ):
            child_depth += 1
        yield child, child_depth
        yield from walk_with_lock_depth(child, child_depth)


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in the module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


__all__ = [
    "dotted_name",
    "build_alias_map",
    "resolve_name",
    "resolve_call",
    "last_segment",
    "is_lock_context",
    "walk_with_lock_depth",
    "iter_functions",
]
