"""Stage-purity rules (PUR): build functions must be pure and declared.

The content-addressed stage graph (PR 4) caches a stage's artifact under a
key derived from its config slice and upstream keys — which is only sound
if builders derive *everything* from those inputs.  A builder that reads
mutable module state, touches the filesystem, or consults the environment
can produce different artifacts under the same key.  These rules walk the
``_build_*`` functions of stage-definition modules (and their same-module
callees) and flag the escape hatches; stage *registrations* are checked for
a complete serialiser pair.
"""

from __future__ import annotations

import ast
import re
import symtable
from typing import Dict, Iterator, Optional, Set

from repro.statcheck.astutil import last_segment, resolve_call, resolve_name
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule

#: Module-level names styled as constants are legitimate builder inputs.
_CONSTANT_STYLE = re.compile(r"^_{0,2}[A-Z][A-Z0-9_]*$")

#: Call prefixes that reach outside the artifact-store contract.
_IO_PREFIXES = (
    "os.environ", "os.getenv", "os.putenv", "os.remove", "os.unlink",
    "os.rename", "os.replace", "os.mkdir", "os.makedirs", "os.rmdir",
    "os.chdir", "shutil.", "tempfile.", "subprocess.", "socket.",
    "urllib.",
)

#: Attribute methods that read/write the filesystem on path-like objects.
_IO_ATTRS = frozenset(
    {
        "write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
        "unlink", "rmdir", "touch", "rename", "replace", "symlink_to",
    }
)


def _build_roots(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Module-level functions, keyed by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _transitive_builders(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """``_build_*`` functions plus their same-module transitive callees."""
    functions = _build_roots(tree)
    reached: Set[str] = set()
    frontier = [name for name in functions if name.startswith("_build_")]
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        reached.add(name)
        for node in ast.walk(functions[name]):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                callee = node.func.id
                if callee in functions and callee not in reached:
                    frontier.append(callee)
    return {name: functions[name] for name in sorted(reached)}


def _module_state_names(ctx) -> Set[str]:
    """Module-global, non-imported, non-namespace, non-constant names.

    Uses ``symtable`` (compiler-grade scoping) rather than a hand-rolled
    walk, so conditional assignments and ``global`` rebinding resolve
    exactly as the interpreter sees them.
    """
    try:
        table = symtable.symtable(ctx.source, ctx.rel, "exec")
    except SyntaxError:  # engine already reports SYN001
        return set()
    names = set()
    for symbol in table.get_symbols():
        if (
            symbol.is_assigned()
            and not symbol.is_imported()
            and not symbol.is_namespace()
            and not _CONSTANT_STYLE.match(symbol.get_name())
        ):
            names.add(symbol.get_name())
    return names


def _is_stage_module(ctx) -> bool:
    return ctx.module == "stages" or ctx.module.endswith(".stages")


class StageGlobalStateRule(Rule):
    id = "PUR001"
    title = "stage builder touches module-level mutable state"
    rationale = (
        "A builder that reads or writes a module-level variable produces "
        "artifacts that depend on process history, breaking the "
        "content-addressed cache contract: same key, different bytes. "
        "Builders may only use (lab, inputs) and constant-styled names."
    )
    example = "_COUNTER = 0\ndef _build_x(lab, inputs): global _COUNTER; ..."

    def applies_to(self, ctx) -> bool:
        return _is_stage_module(ctx)

    def check(self, ctx) -> Iterator[Finding]:
        state = _module_state_names(ctx)
        for name, func in _transitive_builders(ctx.tree).items():
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        ctx,
                        node,
                        f"builder {name}() declares "
                        f"global {', '.join(node.names)}; stage builders "
                        f"must be pure functions of (lab, inputs)",
                    )
                elif (
                    isinstance(node, ast.Name)
                    and node.id in state
                    and name != node.id
                ):
                    action = (
                        "writes"
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "reads"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"builder {name}() {action} module-level state "
                        f"{node.id!r}; derive it from (lab, inputs) or make "
                        f"it a constant",
                    )


class StageIORule(Rule):
    id = "PUR002"
    title = "stage builder performs filesystem or environment access"
    rationale = (
        "All stage persistence must flow through the ArtifactStore "
        "save/load hooks, where writes are atomic and content-addressed. "
        "A builder that opens files or reads the environment directly "
        "escapes the cache key and races the scheduler."
    )
    example = "def _build_x(lab, inputs): open('/tmp/x', 'w')"

    def applies_to(self, ctx) -> bool:
        return _is_stage_module(ctx)

    def check(self, ctx) -> Iterator[Finding]:
        for name, func in _transitive_builders(ctx.tree).items():
            for node in ast.walk(func):
                finding = self._check_node(ctx, name, node)
                if finding is not None:
                    yield finding

    def _check_node(self, ctx, builder: str, node) -> Optional[Finding]:
        if isinstance(node, ast.Subscript):
            if resolve_name(node.value, ctx.aliases) == "os.environ":
                return self.finding(
                    ctx,
                    node,
                    f"builder {builder}() reads os.environ; environment "
                    f"must be resolved into LabConfig before the graph runs",
                )
            return None
        if not isinstance(node, ast.Call):
            return None
        name = resolve_call(node, ctx.aliases)
        if name == "open" or (
            name and name.startswith(_IO_PREFIXES)
        ):
            return self.finding(
                ctx,
                node,
                f"builder {builder}() calls {name}(); filesystem and "
                f"environment access belongs in ArtifactStore save/load "
                f"hooks",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _IO_ATTRS
        ):
            return self.finding(
                ctx,
                node,
                f"builder {builder}() calls .{node.func.attr}(); "
                f"filesystem access belongs in ArtifactStore save/load "
                f"hooks",
            )
        return None


class StageSerializerRule(Rule):
    id = "PUR003"
    title = "stage registered with half a serialiser"
    rationale = (
        "A Stage with save= but no load= (or vice versa) persists "
        "artifacts the pipeline can never read back — warm runs silently "
        "rebuild, or loads crash. Register both hooks or neither."
    )
    example = "Stage(name='x', build=f, save=save_x)  # no load="

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if last_segment(resolve_call(node, ctx.aliases)) != "Stage":
                continue
            keywords = {
                kw.arg: kw.value for kw in node.keywords if kw.arg
            }
            has = {
                side: side in keywords
                and not (
                    isinstance(keywords[side], ast.Constant)
                    and keywords[side].value is None
                )
                for side in ("save", "load")
            }
            if has["save"] != has["load"]:
                present = "save" if has["save"] else "load"
                missing = "load" if has["save"] else "save"
                yield self.finding(
                    ctx,
                    node,
                    f"Stage registered with {present}= but no {missing}=; "
                    f"persistence hooks must come in pairs",
                )


RULES = (StageGlobalStateRule, StageIORule, StageSerializerRule)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
