"""Determinism rules (DET): no hidden entropy, no unordered hashing.

The benchmark's golden tables are only reproducible because every draw of
randomness flows from an explicit seed through ``repro.utils.rng`` and
every serialised byte is order-stable.  These rules make that a checked
invariant: global RNG state, wall-clock reads, set-order-dependent digests,
magic seed defaults and unsorted JSON all fail the lint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import last_segment, resolve_call
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule

#: ``random`` module functions that mutate or read the global RNG state.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are fine to call: the Generator API.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)

#: Calls that read wall-clock time or OS entropy.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "os.urandom",
        "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow", "secrets.choice",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Call targets whose output depends on argument order (digests, joins,
#: serialisers).  Matched by final name segment for the repro helpers so
#: ``from repro.utils.rng import stable_hash`` and ``rng.stable_hash`` both
#: resolve.
_DIGEST_SINKS = frozenset({"stable_hash", "stable_digest"})


def _is_set_valued(node: ast.AST, aliases) -> bool:
    """Whether an expression is statically known to produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return resolve_call(node, aliases) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra: a & b, a | b, a - b — flag only if a side is a set
        return _is_set_valued(node.left, aliases) or _is_set_valued(
            node.right, aliases
        )
    return False


class GlobalRandomRule(Rule):
    id = "DET001"
    title = "stdlib global RNG"
    rationale = (
        "random.random()/seed()/shuffle() mutate interpreter-global state; "
        "any new caller reshuffles every other caller's draws. Thread a "
        "numpy Generator from repro.utils.rng instead."
    )
    example = "random.shuffle(examples)"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            if name is None:
                continue
            module, _, func = name.rpartition(".")
            if module == "random" and func in _STDLIB_RANDOM_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"call to global-state {name}(); pass a seeded "
                    f"numpy Generator (repro.utils.rng) instead",
                )


class NumpyGlobalRandomRule(Rule):
    id = "DET002"
    title = "numpy legacy global RNG"
    rationale = (
        "np.random.seed()/np.random.rand() use the legacy process-global "
        "RandomState; results then depend on import order and thread "
        "timing. Only np.random.default_rng()/Generator are allowed."
    )
    example = "np.random.seed(0); x = np.random.rand(3)"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            if name is None:
                continue
            module, _, func = name.rpartition(".")
            if module == "numpy.random" and func not in _NUMPY_RANDOM_ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"call to legacy global-state {name}(); use "
                    f"np.random.default_rng / a threaded Generator",
                )


class WallClockRule(Rule):
    id = "DET003"
    title = "wall clock / OS entropy in library code"
    rationale = (
        "time.time(), datetime.now() and os.urandom() make outputs depend "
        "on when (or where) the code runs. Durations belong on "
        "time.monotonic()/perf_counter(); anything feeding an artifact "
        "must be seed-derived."
    )
    example = "created = time.time()"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            if name in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads wall-clock/OS entropy; use monotonic "
                    f"clocks for durations and seeds for randomness",
                )


class UnorderedDigestRule(Rule):
    id = "DET004"
    title = "set fed to a digest or serialiser"
    rationale = (
        "Set iteration order varies with insertion history and hash "
        "seeding; hashing or serialising a set directly makes cache keys "
        "and artifacts run-dependent. Wrap the set in sorted(...) first."
    )
    example = "key = stable_hash(set(tokens))"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            segment = last_segment(name)
            is_sink = (
                segment in _DIGEST_SINKS
                or name in ("json.dump", "json.dumps", "hash")
                or (name or "").startswith("hashlib.")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join")
            )
            if not is_sink:
                continue
            for arg in node.args:
                if _is_set_valued(arg, ctx.aliases):
                    yield self.finding(
                        ctx,
                        arg,
                        f"unordered set passed to {segment or 'digest'}(); "
                        f"wrap it in sorted(...) to pin iteration order",
                    )


class SeedDefaultRule(Rule):
    id = "DET005"
    title = "magic seed default in a function signature"
    rationale = (
        "A non-zero literal seed default buried in a function silently "
        "couples every caller to one stream and hides the knob from "
        "LabConfig. Zero (the library-wide documented default) and config "
        "dataclass fields are exempt; everything else must be threaded."
    )
    example = "def split(data, seed=42): ..."

    def applies_to(self, ctx) -> bool:
        # utils/rng.py is the sanctioned home of seed plumbing.
        return not ctx.module.endswith("utils.rng")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for arg_list, defaults in (
                (args.posonlyargs + args.args, args.defaults),
                (args.kwonlyargs, args.kw_defaults),
            ):
                pairs = zip(arg_list[len(arg_list) - len(defaults):], defaults)
                for arg, default in pairs:
                    if default is None:
                        continue
                    named_seed = arg.arg == "seed" or arg.arg.endswith("_seed")
                    if (
                        named_seed
                        and isinstance(default, ast.Constant)
                        and type(default.value) is int
                        and default.value != 0
                    ):
                        yield self.finding(
                            ctx,
                            default,
                            f"hard-coded seed default {arg.arg}="
                            f"{default.value} in {node.name}(); thread the "
                            f"seed from configuration instead",
                        )


class UnsortedJsonRule(Rule):
    id = "DET006"
    title = "json.dump without sort_keys"
    rationale = (
        "Serialised artifacts, manifests and cache metadata must be "
        "byte-stable; json.dump without sort_keys=True leaks dict build "
        "order into files that get diffed and hashed."
    )
    example = "json.dump(payload, handle)"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            if name not in ("json.dump", "json.dumps"):
                continue
            sorts = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not sorts:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() without sort_keys=True writes "
                    f"insertion-ordered keys; sort for byte-stable output",
                )


RULES = (
    GlobalRandomRule,
    NumpyGlobalRandomRule,
    WallClockRule,
    UnorderedDigestRule,
    SeedDefaultRule,
    UnsortedJsonRule,
)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
