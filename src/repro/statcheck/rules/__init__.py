"""The statcheck rule registry.

Four families, each its own module:

* ``determinism`` (DET) — no hidden entropy, order-stable hashing/serialising;
* ``purity`` (PUR) — stage builders are pure functions of (lab, inputs);
* ``concurrency`` (CONC) — lock coverage, atomic filesystem sequences;
* ``contracts`` (RES/OBS) — failure accounting and span hygiene;
* ``serving`` (SRV) — network transport stays quarantined in repro.serve;
* ``perf`` (PERF) — pipeline artifact reads state their memory story.

A seventh family, ``flow`` (FLOW/GRAPH), lives in
:mod:`repro.statcheck.flow`: those rules are *whole-program* — they need
a call graph over every file, not one :class:`FileContext` — so they are
registered here (``FAMILIES["flow"]``) but instantiated by the flow
package.  :func:`select_rules` returns only the per-file portion of a
selection; pass the same ids to
:func:`repro.statcheck.flow.select_flow_rules` for the rest.

``SYN001`` (unparsable file), ``CYC001`` (module import cycle) and
``SUP001`` (stale suppression) are engine-level checks, documented here
so the catalog is complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.statcheck.findings import StatcheckError
from repro.statcheck.rules import (
    concurrency,
    contracts,
    determinism,
    perf,
    purity,
    serving,
)
from repro.statcheck.rules.base import Rule, rule_catalog

#: Every rule class, in reporting order.
RULE_CLASSES: Tuple[Type[Rule], ...] = (
    determinism.RULES
    + purity.RULES
    + concurrency.RULES
    + contracts.RULES
    + serving.RULES
    + perf.RULES
)

#: Rule family name -> the rule ids it contains.
FAMILIES: Dict[str, Tuple[str, ...]] = {
    "determinism": tuple(cls.id for cls in determinism.RULES),
    "purity": tuple(cls.id for cls in purity.RULES),
    "concurrency": tuple(cls.id for cls in concurrency.RULES),
    "contracts": tuple(cls.id for cls in contracts.RULES),
    "serving": tuple(cls.id for cls in serving.RULES),
    "perf": tuple(cls.id for cls in perf.RULES),
    # Whole-program rules (repro.statcheck.flow).  Static tuple rather than
    # an import: the flow package imports the engine, which imports this
    # module — a literal here keeps the registry cycle-free.  A consistency
    # test pins it against flow.FLOW_RULE_IDS.
    "flow": ("FLOW001", "FLOW002", "FLOW003", "FLOW004", "GRAPH001"),
}


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def select_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Per-file rules filtered to ``ids`` (rule ids or family names, any case).

    Flow-family selectors (``flow``, ``FLOW001`` …) are recognised but
    contribute no per-file rules — hand the same ids to
    :func:`repro.statcheck.flow.select_flow_rules` for those.  Raises
    :class:`StatcheckError` for an unknown selector so a typo in CI
    configuration fails loudly instead of silently linting nothing.
    """
    if not ids:
        return default_rules()
    wanted = set()
    known = {cls.id for cls in RULE_CLASSES}
    flow_ids = set(FAMILIES["flow"])
    for selector in ids:
        token = selector.strip()
        if not token:
            continue
        if token.lower() in FAMILIES:
            wanted.update(FAMILIES[token.lower()])
        elif token.upper() in known or token.upper() in flow_ids:
            wanted.add(token.upper())
        else:
            raise StatcheckError(
                f"unknown rule or family {selector!r}; known families: "
                f"{sorted(FAMILIES)}, rules: {sorted(known | flow_ids)}"
            )
    return [cls() for cls in RULE_CLASSES if cls.id in wanted]


def catalog() -> Tuple[dict, ...]:
    """Documentation entries for every rule (id, title, rationale, example),
    flow rules included."""
    from repro.statcheck.flow import flow_catalog

    return rule_catalog(default_rules()) + tuple(flow_catalog())


__all__ = [
    "RULE_CLASSES",
    "FAMILIES",
    "Rule",
    "default_rules",
    "select_rules",
    "catalog",
]
