"""The statcheck rule registry.

Four families, each its own module:

* ``determinism`` (DET) — no hidden entropy, order-stable hashing/serialising;
* ``purity`` (PUR) — stage builders are pure functions of (lab, inputs);
* ``concurrency`` (CONC) — lock coverage, atomic filesystem sequences;
* ``contracts`` (RES/OBS) — failure accounting and span hygiene;
* ``serving`` (SRV) — network transport stays quarantined in repro.serve;
* ``perf`` (PERF) — pipeline artifact reads state their memory story.

``SYN001`` (unparsable file) and ``CYC001`` (module import cycle) are
engine-level checks, documented here so the catalog is complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.statcheck.findings import StatcheckError
from repro.statcheck.rules import (
    concurrency,
    contracts,
    determinism,
    perf,
    purity,
    serving,
)
from repro.statcheck.rules.base import Rule, rule_catalog

#: Every rule class, in reporting order.
RULE_CLASSES: Tuple[Type[Rule], ...] = (
    determinism.RULES
    + purity.RULES
    + concurrency.RULES
    + contracts.RULES
    + serving.RULES
    + perf.RULES
)

#: Rule family name -> the rule ids it contains.
FAMILIES: Dict[str, Tuple[str, ...]] = {
    "determinism": tuple(cls.id for cls in determinism.RULES),
    "purity": tuple(cls.id for cls in purity.RULES),
    "concurrency": tuple(cls.id for cls in concurrency.RULES),
    "contracts": tuple(cls.id for cls in contracts.RULES),
    "serving": tuple(cls.id for cls in serving.RULES),
    "perf": tuple(cls.id for cls in perf.RULES),
}


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def select_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rules filtered to ``ids`` (rule ids or family names, any case).

    Raises :class:`StatcheckError` for an unknown selector so a typo in CI
    configuration fails loudly instead of silently linting nothing.
    """
    if not ids:
        return default_rules()
    wanted = set()
    known = {cls.id for cls in RULE_CLASSES}
    for selector in ids:
        token = selector.strip()
        if not token:
            continue
        if token.lower() in FAMILIES:
            wanted.update(FAMILIES[token.lower()])
        elif token.upper() in known:
            wanted.add(token.upper())
        else:
            raise StatcheckError(
                f"unknown rule or family {selector!r}; known families: "
                f"{sorted(FAMILIES)}, rules: {sorted(known)}"
            )
    return [cls() for cls in RULE_CLASSES if cls.id in wanted]


def catalog() -> Tuple[dict, ...]:
    """Documentation entries for every rule (id, title, rationale, example)."""
    return rule_catalog(default_rules())


__all__ = [
    "RULE_CLASSES",
    "FAMILIES",
    "Rule",
    "default_rules",
    "select_rules",
    "catalog",
]
