"""Concurrency rules (CONC): lock coverage and atomic filesystem use.

Code reachable from the :class:`~repro.pipeline.scheduler.StageScheduler`,
the Lab memo and ``repro.obs`` runs under thread pools.  CONC001 infers
each class's (and module's) *guarded set* — the attributes and globals that
are mutated while holding a lock somewhere — and flags any mutation of a
guarded name performed without the lock: if one code path needs the lock,
they all do.  CONC002 flags check-then-act filesystem sequences
(``if path.exists(): <write>``) outside ``repro.utils.atomic``, where the
gap between check and act is a race against concurrent builders.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.statcheck.astutil import resolve_call, resolve_name, walk_with_lock_depth
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "add", "update", "clear", "pop", "popitem",
        "remove", "discard", "insert", "setdefault", "sort", "reverse",
    }
)

#: Calls whose success depends on prior filesystem state.
_FS_WRITES = (
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.mkdir",
    "os.makedirs", "os.rmdir", "shutil.rmtree", "shutil.move",
    "shutil.copy", "shutil.copy2", "shutil.copytree",
)

#: Path-object methods with the same property.
_FS_WRITE_ATTRS = frozenset(
    {
        "unlink", "rename", "replace", "rmdir", "mkdir", "touch",
        "write_text", "write_bytes", "symlink_to",
    }
)

#: Existence probes that start a check-then-act window.
_FS_CHECKS = ("os.path.exists", "os.path.isfile", "os.path.isdir")
_FS_CHECK_ATTRS = frozenset({"exists", "is_file", "is_dir"})


def _mutated_name(node: ast.AST, owner: Optional[str]) -> Optional[str]:
    """The attribute (``owner='self'``) or global (``owner=None``) name a
    statement mutates, if any."""

    def target_name(target: ast.AST) -> Optional[str]:
        # self.attr = ... / self.attr[k] = ...  |  NAME = ... / NAME[k] = ...
        if isinstance(target, ast.Subscript):
            target = target.value
        if owner is not None:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == owner
            ):
                return target.attr
            return None
        if isinstance(target, ast.Name):
            return target.id
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = target_name(target)
            if name is not None:
                return name
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            return target_name(node.func.value)
    return None


class UnguardedSharedWriteRule(Rule):
    id = "CONC001"
    title = "shared mutable state written without its lock"
    rationale = (
        "If an attribute or module global is mutated under `with lock:` "
        "anywhere, every mutation of it must hold that lock — a single "
        "unguarded writer races all the guarded ones. __init__ and "
        "module top level (single-threaded construction) are exempt, as "
        "are `*_locked`-suffixed helpers whose contract is caller-holds-"
        "the-lock; FLOW004 verifies every call site of those instead."
    )
    example = "with self._lock: self._cache[k] = v   # elsewhere:\nself._cache.clear()"

    def check(self, ctx) -> Iterator[Finding]:
        # Classes: infer over `self.<attr>` mutations per class.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._report(ctx, self._class_writes(node), "attribute")
        # Module level: infer over mutations of module globals in functions.
        yield from self._report(
            ctx, self._module_writes(ctx.tree), "module global"
        )

    def _report(self, ctx, writes, kind: str) -> Iterator[Finding]:
        guarded = {name for name, _, depth, _ in writes if depth > 0}
        for name, node, depth, func_name in writes:
            if func_name.endswith("_locked"):
                # Lock-transfer contract: the caller holds the lock.  The
                # interprocedural FLOW004 rule checks every call site.
                continue
            if name in guarded and depth == 0 and func_name != "__init__":
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} {name!r} is lock-guarded elsewhere but "
                    f"mutated in {func_name}() without holding the lock",
                )

    @staticmethod
    def _class_writes(scope: ast.ClassDef) -> List[Tuple[str, ast.AST, int, str]]:
        writes: List[Tuple[str, ast.AST, int, str]] = []
        for func in scope.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child, lock_depth in walk_with_lock_depth(func):
                name = _mutated_name(child, "self")
                if name is not None:
                    writes.append((name, child, lock_depth, func.name))
        return writes

    @staticmethod
    def _module_writes(tree: ast.Module) -> List[Tuple[str, ast.AST, int, str]]:
        module_names = set()
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)

        writes: List[Tuple[str, ast.AST, int, str]] = []
        functions = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            # Names assigned in the function are locals (shadowing any
            # global of the same name) unless declared `global`.  The scan
            # over-collects from nested defs, which only errs toward
            # treating names as locals — fewer false positives.
            declared_global = set()
            local_names = {a.arg for a in ast.walk(func) if isinstance(a, ast.arg)}
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    local_names.add(node.id)
            local_names -= declared_global

            for child, lock_depth in walk_with_lock_depth(func):
                name = _mutated_name(child, None)
                if name is None or name not in module_names:
                    continue
                is_rebind = isinstance(child, (ast.Assign, ast.AugAssign)) and any(
                    isinstance(t, ast.Name)
                    for t in (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                )
                if is_rebind and name not in declared_global:
                    continue  # plain assignment binds a local, not the global
                if not is_rebind and name in local_names:
                    continue  # mutating a local that shadows the global
                writes.append((name, child, lock_depth, func.name))
        return writes


class CheckThenActRule(Rule):
    id = "CONC002"
    title = "non-atomic check-then-act on the filesystem"
    rationale = (
        "`if path.exists(): <write>` races concurrent processes — the "
        "state can change between check and act. Use repro.utils.atomic, "
        "EAFP (try/except FileNotFoundError), or flags like exist_ok/"
        "ignore_errors that make the act idempotent."
    )
    example = "if tmp.exists():\n    tmp.unlink()"

    def applies_to(self, ctx) -> bool:
        # utils/atomic.py is the sanctioned implementation of atomicity.
        return not ctx.module.endswith("utils.atomic")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            if not self._has_existence_check(node.test, ctx.aliases):
                continue
            for child in node.body:
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call) and self._is_fs_write(
                        sub, ctx.aliases
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "existence check followed by a filesystem "
                            "write is not atomic; use utils.atomic or "
                            "EAFP (try/except FileNotFoundError)",
                        )
                        break
                else:
                    continue
                break

    def _has_existence_check(self, test: ast.AST, aliases) -> bool:
        for node in ast.walk(test):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, aliases)
            if name in _FS_CHECKS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_CHECK_ATTRS
            ):
                return True
        return False

    def _is_fs_write(self, node: ast.Call, aliases) -> bool:
        name = resolve_call(node, aliases)
        if name in _FS_WRITES:
            # ignore_errors=True / exist_ok=True make the act idempotent —
            # the race is then harmless, so don't flag it.
            return not self._is_idempotent(node)
        if name == "open":
            mode = self._open_mode(node)
            return bool(mode) and any(c in mode for c in "wax")
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _FS_WRITE_ATTRS
        ):
            return not self._is_idempotent(node)
        return False

    @staticmethod
    def _is_idempotent(node: ast.Call) -> bool:
        return any(
            kw.arg in ("ignore_errors", "exist_ok", "missing_ok")
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            return str(node.args[1].value)
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                return str(kw.value.value)
        return None


RULES = (UnguardedSharedWriteRule, CheckThenActRule)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
