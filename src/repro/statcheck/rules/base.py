"""Rule protocol: one class per invariant, stateless, AST-driven.

A rule sees one :class:`~repro.statcheck.engine.FileContext` at a time and
yields :class:`~repro.statcheck.findings.Finding` objects.  Rules carry
their own documentation (``rationale``, ``example``) so the rule reference
in LINTING.md and the ``--rules`` listing never drift from the code.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.statcheck.findings import Finding


class Rule:
    """Base class for statcheck rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``applies_to`` narrows a rule to part of the tree (e.g. the stage-purity
    rules only analyze stage-definition modules).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    example: str = ""

    def applies_to(self, ctx) -> bool:
        return True

    def check(self, ctx) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        """A finding for this rule anchored at ``node``."""
        return Finding(
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def rule_catalog(rules: Iterable[Rule]) -> Tuple[dict, ...]:
    """JSON-ready documentation entries for a set of rules."""
    return tuple(
        {
            "id": rule.id,
            "title": rule.title,
            "rationale": rule.rationale,
            "example": rule.example,
        }
        for rule in rules
    )


__all__ = ["Rule", "rule_catalog"]
