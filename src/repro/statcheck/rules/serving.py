"""Serving-boundary rules (SRV).

The serving layer (PR 7) put sockets and an HTTP server into the codebase
for the first time.  That machinery is deliberately quarantined in
``repro.serve``: stage builders, paradigms, and the perf areas must stay
network-free so they remain pure, deterministic functions of their inputs
— a stage that opens a socket can neither be content-addressed nor
replayed from the artifact store.  SRV001 enforces the quarantine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import resolve_call
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule

#: Modules whose use marks code as network-serving machinery.
_SERVING_MODULES = ("socket", "socketserver", "http.server")


def _is_serving_name(name: str) -> bool:
    return any(
        name == module or name.startswith(module + ".")
        for module in _SERVING_MODULES
    )


class ServingOutsideServeRule(Rule):
    id = "SRV001"
    title = "socket/HTTP-server machinery outside repro.serve"
    rationale = (
        "Sockets and HTTP servers (`socket`, `socketserver`, `http.server`) "
        "belong in the quarantined serving layer. Anywhere else — stage "
        "builders, paradigms, perf areas — they make results depend on the "
        "network, which breaks content-addressed caching and determinism. "
        "Put transport code in repro.serve and call it through a service "
        "interface."
    )
    example = "from http.server import HTTPServer  # in a stage module"

    def applies_to(self, ctx) -> bool:
        # Any `serve` component in the dotted module path marks the
        # quarantine zone (repro.serve.*, a test's serve fixtures, ...).
        return "serve" not in ctx.module.split(".")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_serving_name(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} outside repro.serve; "
                            f"serving transport is quarantined there",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _is_serving_name(node.module):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {node.module!r} outside repro.serve; "
                        f"serving transport is quarantined there",
                    )
            elif isinstance(node, ast.Call):
                name = resolve_call(node, ctx.aliases) or ""
                if _is_serving_name(name):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}(...) outside repro.serve; serving "
                        f"transport is quarantined there",
                    )


RULES = (ServingOutsideServeRule,)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
