"""Performance rules (PERF): artifact reads must choose a memory story.

Large artifact matrices are loaded on every warm pipeline run; whether a
read copies the bytes or maps them is a real resource decision, not a
default to inherit silently.  ``repro.pipeline.arrays.load_array`` owns
that decision (size-gated ``mmap_mode="r"``, ``REPRO_NO_MMAP`` escape
hatch, bytes-mapped/bytes-copied gauges) — any other ``np.load`` inside
``repro.pipeline`` that does not state ``mmap_mode`` explicitly is a read
that made the decision by accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import resolve_call
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule


class ImplicitMmapLoadRule(Rule):
    id = "PERF001"
    title = "np.load without explicit mmap_mode in pipeline code"
    rationale = (
        "Artifact matrices read inside repro.pipeline are on the warm-run "
        "hot path; np.load without mmap_mode silently copies every byte "
        "into fresh pages. Route reads through pipeline.arrays.load_array "
        "(size-gated mmap + gauges) or pass mmap_mode explicitly — "
        "including mmap_mode=None when a copy is the intent."
    )
    example = "matrix = np.load(entry_dir / 'matrix.npy')"

    def applies_to(self, ctx) -> bool:
        return "pipeline" in ctx.module.split(".")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call(node, ctx.aliases) != "numpy.load":
                continue
            explicit = any(kw.arg == "mmap_mode" for kw in node.keywords)
            if not explicit and len(node.args) < 2:
                yield self.finding(
                    ctx,
                    node,
                    "np.load() without explicit mmap_mode on the pipeline "
                    "hot path; use pipeline.arrays.load_array or state "
                    "mmap_mode explicitly",
                )


RULES = (ImplicitMmapLoadRule,)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
