"""Resilience/observability contract rules (RES, OBS).

The resilience layer (PR 3) established two contracts: client failures are
never silently swallowed — they are re-raised, retried, or *accounted for*
(a metric, a degraded outcome) — and every span is opened with ``with`` so
its duration and parentage are recorded even on the exception path.  These
rules enforce both statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import dotted_name, last_segment, resolve_call
from repro.statcheck.findings import Finding
from repro.statcheck.rules.base import Rule

#: Exception names whose handlers must re-raise or record a metric.
_BROAD_NAMES = frozenset({"Exception", "BaseException", "ChatClientError"})

#: Method names that count as "recording the failure" inside a handler.
_METRIC_ATTRS = frozenset(
    {"count", "incr", "record_failure", "record_success", "gauge"}
)

#: Dotted-name fragments that mark a call as metrics/logging machinery.
_METRIC_ROOTS = ("tracer", "metrics", "logger", "logging", "warnings")


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    node = handler.type
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        name = dotted_name(element)
        if name:
            yield name.rsplit(".", 1)[-1]


class SwallowedBroadExceptRule(Rule):
    id = "RES001"
    title = "broad except swallows failures unaccounted"
    rationale = (
        "`except Exception:` (or a handler catching ChatClientError) that "
        "neither re-raises nor records a metric erases delivery failures "
        "from manifests — degraded runs then look healthy. Re-raise, or "
        "bump a counter before degrading."
    )
    example = "except ChatClientError:\n    return None"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or any(
                name in _BROAD_NAMES for name in _handler_names(node)
            )
            if not broad:
                continue
            if self._accounts_for_failure(node, ctx):
                continue
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield self.finding(
                ctx,
                node,
                f"{caught} neither re-raises nor records a metric; "
                f"swallowed failures disappear from run manifests",
            )

    def _accounts_for_failure(self, handler: ast.ExceptHandler, ctx) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases) or ""
            if last_segment(name) in _METRIC_ATTRS:
                return True
            root = name.partition(".")[0].lower()
            if any(fragment in root for fragment in _METRIC_ROOTS):
                return True
            # Metric methods on an unresolvable base, e.g. the canonical
            # `get_tracer().count(...)`: require the base to *look like*
            # metrics machinery so `items.count(x)` does not count.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_ATTRS
            ):
                base = ast.unparse(node.func.value).lower()
                if any(fragment in base for fragment in _METRIC_ROOTS):
                    return True
        return False


#: Direct clock calls that defeat the delivery layer's injectable Clock.
_DIRECT_CLOCK_CALLS = frozenset(
    {"time.sleep", "time.monotonic", "time.time", "time.perf_counter"}
)


class DirectClockInDeliveryRule(Rule):
    id = "RES002"
    title = "direct time call inside repro.delivery"
    rationale = (
        "The delivery engine's rate limits, deadlines, and hedge delays "
        "are pure functions of an injectable Clock; a direct time.sleep() "
        "or time.monotonic() bypasses the injection, so fake-clock tests "
        "silently run on the wall clock and backoff schedules stop being "
        "assertable. Route every wait and read through the backend's "
        "clock (a sanctioned `shell` module is the only exemption)."
    )
    example = "time.sleep(self.hedge_s)  # in repro/delivery/engine.py"

    def applies_to(self, ctx) -> bool:
        # Only the delivery layer is under the injectable-clock contract,
        # and a module literally named `shell` is the sanctioned place for
        # wall-clock plumbing (mirroring the serve quarantine).
        parts = ctx.module.split(".")
        return "delivery" in parts and parts[-1] != "shell"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, ctx.aliases)
            if name in _DIRECT_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() bypasses the injectable Clock; use the "
                    f"backend/engine clock so fake-clock tests stay honest",
                )


class SpanWithoutWithRule(Rule):
    id = "OBS001"
    title = "span opened without `with`"
    rationale = (
        "A span started as a bare call or assignment never records its "
        "exit on the exception path, corrupting the per-thread span stack "
        "and losing the subtree from manifests. Always `with span(...)`."
    )
    example = "sp = span('stage.build')  # never closed on raise"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            value = None
            if isinstance(node, ast.Expr):
                value = node.value
            elif isinstance(node, ast.Assign):
                value = node.value
            if not isinstance(value, ast.Call):
                continue
            name = resolve_call(value, ctx.aliases)
            segment = last_segment(name)
            if segment in ("span", "start_span"):
                yield self.finding(
                    ctx,
                    value,
                    f"{segment}(...) result must be entered with "
                    f"`with` so the span closes on every path",
                )


#: Wall-clock reads whose differences are *not* valid durations: the system
#: clock can step (NTP slew, suspend/resume, DST on naive datetimes), so a
#: difference of two reads can be negative or wildly wrong.
_WALL_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


class WallClockDurationRule(Rule):
    id = "OBS002"
    title = "duration measured with time.time()"
    rationale = (
        "Subtracting two wall-clock reads (time.time(), datetime.now()) "
        "measures the system clock, not elapsed time — NTP steps and "
        "suspend/resume make such durations wrong or negative. Durations "
        "belong on time.perf_counter() (or monotonic())."
    )
    example = "start = time.time(); elapsed = time.time() - start"

    def check(self, ctx) -> Iterator[Finding]:
        for scope in self._scopes(ctx.tree):
            yield from self._check_scope(scope, ctx)

    # -- scope machinery ------------------------------------------------------

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope's nodes without descending into nested functions
        (each nested function is analysed as its own scope)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- the actual check -----------------------------------------------------

    def _check_scope(self, scope: ast.AST, ctx) -> Iterator[Finding]:
        # Pass 1: names bound (anywhere in the scope) from a wall-clock read.
        wall_names = set()
        for node in self._walk_scope(scope):
            if not isinstance(node, ast.Assign):
                continue
            if not self._is_wall_read(node.value, ctx):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    wall_names.add(target.id)
        # Pass 2: subtractions where *every* operand is a wall-clock value.
        # Requiring both sides keeps mixed arithmetic — e.g. comparing a
        # wall timestamp against a file's st_mtime — out of scope.
        for node in self._walk_scope(scope):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
                continue
            if self._is_wallish(node.left, wall_names, ctx) and self._is_wallish(
                node.right, wall_names, ctx
            ):
                yield self.finding(
                    ctx,
                    node,
                    "difference of two wall-clock reads used as a duration; "
                    "use time.perf_counter() instead of time.time()",
                )

    def _is_wall_read(self, node: ast.AST, ctx) -> bool:
        return (
            isinstance(node, ast.Call)
            and resolve_call(node, ctx.aliases) in _WALL_READS
        )

    def _is_wallish(self, node: ast.AST, wall_names, ctx) -> bool:
        if self._is_wall_read(node, ctx):
            return True
        return isinstance(node, ast.Name) and node.id in wall_names


RULES = (
    SwallowedBroadExceptRule,
    DirectClockInDeliveryRule,
    SpanWithoutWithRule,
    WallClockDurationRule,
)

__all__ = [cls.__name__ for cls in RULES] + ["RULES"]
