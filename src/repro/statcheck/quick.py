"""``repro lint --quick``: compile + import-cycle smoke check.

A broken module normally surfaces as a wall of pytest collection errors;
this check fails in milliseconds instead.  Two probes:

* **CYC-compile** (reported as ``SYN001``): every file must byte-compile
  (the same check ``py_compile`` performs, run in-process via
  :func:`compile` so nothing is written to disk);
* **CYC001**: the *module-level* import graph among first-party modules
  must be acyclic.  Function-level imports are excluded — deferring an
  import into a function is the sanctioned way to break a cycle, and the
  shipped tree uses it (e.g. ``pipeline/stages.py`` importing
  ``core.experiment`` lazily).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.statcheck.engine import (
    PathLike,
    SYNTAX_RULE,
    discover_files,
    module_name,
)
from repro.statcheck.findings import Finding

#: Engine-level rule id for module-level import cycles.
CYCLE_RULE = "CYC001"


def _compile_findings(path: Path, rel: str, source: str) -> List[Finding]:
    try:
        compile(source, str(path), "exec")
    except SyntaxError as error:
        return [
            Finding(
                path=rel,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule=SYNTAX_RULE,
                message=f"file does not compile: {error.msg}",
            )
        ]
    except ValueError as error:  # null bytes and friends
        return [
            Finding(
                path=rel, line=1, col=1, rule=SYNTAX_RULE,
                message=f"file does not compile: {error}",
            )
        ]
    return []


def _module_level_imports(
    source: str, path: Path, package: str, known: Set[str]
) -> Set[str]:
    """First-party modules imported at module level (absolute names).

    ``from X import Y`` depends on module ``X.Y`` when that is itself a
    module in the analyzed set; only otherwise is it an attribute read of
    package ``X``.  Without this distinction every submodule import would
    manufacture an edge onto its parent ``__init__`` and the universal
    re-export pattern (``__init__`` importing its own submodules) would be
    reported as a cycle.
    """
    import ast

    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return set()
    imports: Set[str] = set()
    for node in tree.body:  # module level only — function imports are lazy
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == package and alias.name in known:
                    imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level or node.module.split(".")[0] != package:
                continue
            for alias in node.names:
                candidate = f"{node.module}.{alias.name}"
                if candidate in known:
                    imports.add(candidate)
                elif node.module in known:
                    imports.add(node.module)
    return imports


def strongly_connected_components(
    edges: Dict[str, Set[str]]
) -> List[List[str]]:
    """Every strongly connected component of ``edges``, via iterative
    Tarjan, in reverse topological order (callees before callers).

    Shared machinery: the import-cycle check uses the non-trivial
    components, the flow layer's call graph uses the full reverse-topo
    ordering for its may-raise fixpoint.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return components


def _cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Components with more than one node (or a self edge) — the cycles."""
    return [
        component
        for component in strongly_connected_components(edges)
        if len(component) > 1
        or component[0] in edges.get(component[0], ())
    ]


def quick_check(paths: Optional[Sequence[PathLike]] = None) -> List[Finding]:
    """Compile every file and verify the import graph is acyclic."""
    files = discover_files(paths)
    findings: List[Finding] = []
    modules: Dict[str, Path] = {}
    sources: Dict[Path, str] = {}
    rels: Dict[str, str] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        sources[path] = source
        rel = str(path)
        name = module_name(path)
        modules[name] = path
        rels[name] = rel
        findings.extend(_compile_findings(path, rel, source))

    edges: Dict[str, Set[str]] = {}
    known = set(modules)
    for name, path in modules.items():
        package = name.split(".")[0]
        imports = _module_level_imports(sources[path], path, package, known)
        edges[name] = {dep for dep in imports if dep != name}
    for cycle in _cycles(edges):
        first = cycle[0]
        findings.append(
            Finding(
                path=rels.get(first, first),
                line=1,
                col=1,
                rule=CYCLE_RULE,
                message=(
                    "module-level import cycle: "
                    + " -> ".join(cycle + [first])
                    + "; defer one import into a function"
                ),
            )
        )
    return sorted(findings)


__all__ = ["CYCLE_RULE", "quick_check", "strongly_connected_components"]
