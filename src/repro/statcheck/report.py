"""Lint reporters: text for humans, JSON for CI, inventory for manifests.

The JSON document is a stable artifact (format tag
``repro-statcheck-v1``) that CI uploads next to test results; the
inventory (findings per rule per module) is also pushed into the
``repro.obs`` run context so every manifest written afterwards records the
lint state of the tree it was produced by — lint drift across PRs then
shows up in manifest diffs, not just CI logs.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.statcheck.engine import LintReport
from repro.statcheck.rules import catalog

#: Format tag of the JSON report document.
REPORT_FORMAT = "repro-statcheck-v1"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per finding plus a summary tail."""
    lines = [finding.render() for finding in report.findings]
    if verbose and report.suppressed:
        lines.extend(
            f"{finding.render()} (suppressed)" for finding in report.suppressed
        )
    counts = report.counts_by_rule()
    summary = (
        f"statcheck: {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.n_files} file(s) in {report.duration_s:.2f}s"
    )
    if counts:
        summary += " [" + ", ".join(
            f"{rule}={count}" for rule, count in counts.items()
        ) + "]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> dict:
    """JSON-ready document: findings, suppressions, inventory, catalog."""
    return {
        "format": REPORT_FORMAT,
        "ok": report.ok,
        "n_files": report.n_files,
        "duration_s": round(report.duration_s, 4),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in report.findings
        ],
        "n_suppressed": len(report.suppressed),
        "suppressed": [
            {"path": f.path, "line": f.line, "rule": f.rule}
            for f in report.suppressed
        ],
        "inventory": report.inventory(),
        "rules": list(catalog()),
    }


def write_json(report: LintReport, handle: IO) -> None:
    json.dump(render_json(report), handle, indent=2, sort_keys=True)
    handle.write("\n")


def record_inventory(report: LintReport, n_quick: Optional[int] = None) -> None:
    """Push the findings inventory into the ``repro.obs`` run context.

    Every manifest written after this call carries a ``lint`` block, so a
    benchmark table produced from a tree with (suppressed or live) lint
    findings says so — drift is visible in manifest diffs across PRs.
    """
    from repro.obs import manifest

    block = {
        "n_files": report.n_files,
        "n_findings": len(report.findings),
        "n_suppressed": len(report.suppressed),
        "per_rule": report.counts_by_rule(),
        "inventory": report.inventory(),
    }
    if n_quick is not None:
        block["n_quick_findings"] = n_quick
    manifest.set_context(lint=block)


__all__ = [
    "REPORT_FORMAT",
    "render_text",
    "render_json",
    "write_json",
    "record_inventory",
]
