"""Lint reporters: text for humans, JSON for CI, SARIF for code scanning.

The JSON document is a stable artifact (format tag
``repro-statcheck-v1``) that CI uploads next to test results; the
inventory (findings per rule per module) is also pushed into the
``repro.obs`` run context so every manifest written afterwards records the
lint state of the tree it was produced by — lint drift across PRs then
shows up in manifest diffs, not just CI logs.  The SARIF 2.1.0 renderer
feeds GitHub code scanning: findings surface as PR annotations instead of
a log line nobody reads.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Optional

from repro.statcheck.engine import STALE_RULE, SYNTAX_RULE, LintReport
from repro.statcheck.rules import catalog

#: Format tag of the JSON report document.
REPORT_FORMAT = "repro-statcheck-v1"

#: SARIF schema pinned by the renderer.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per finding plus a summary tail."""
    lines = [finding.render() for finding in report.findings]
    lines.extend(
        f"{finding.render()} (stale suppression)" for finding in report.stale
    )
    if verbose:
        lines.extend(
            f"{finding.render()} (baselined)" for finding in report.baselined
        )
        lines.extend(
            f"{finding.render()} (suppressed)" for finding in report.suppressed
        )
    counts = report.counts_by_rule()
    summary = (
        f"statcheck: {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.n_files} file(s) in {report.duration_s:.2f}s"
    )
    extras = []
    if report.stale:
        extras.append(f"{len(report.stale)} stale suppression(s)")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    if counts:
        summary += " [" + ", ".join(
            f"{rule}={count}" for rule, count in counts.items()
        ) + "]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> dict:
    """JSON-ready document: findings, suppressions, inventory, catalog."""
    return {
        "format": REPORT_FORMAT,
        "ok": report.ok,
        "n_files": report.n_files,
        "duration_s": round(report.duration_s, 4),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in report.findings
        ],
        "n_suppressed": len(report.suppressed),
        "suppressed": [
            {"path": f.path, "line": f.line, "rule": f.rule}
            for f in report.suppressed
        ],
        "n_stale": len(report.stale),
        "stale": [
            {"path": f.path, "line": f.line, "message": f.message}
            for f in report.stale
        ],
        "n_baselined": len(report.baselined),
        "baselined": [
            {"path": f.path, "line": f.line, "rule": f.rule}
            for f in report.baselined
        ],
        "inventory": report.inventory(),
        "rules": list(catalog()),
    }


def write_json(report: LintReport, handle: IO) -> None:
    json.dump(render_json(report), handle, indent=2, sort_keys=True)
    handle.write("\n")


def _rule_metadata() -> Dict[str, dict]:
    """SARIF ``rules`` descriptors for every id the engine can emit."""
    rules: Dict[str, dict] = {}
    for entry in catalog():
        rules[entry["id"]] = {
            "id": entry["id"],
            "shortDescription": {"text": entry["title"]},
            "fullDescription": {"text": entry["rationale"]},
        }
    for rule_id, title in (
        (SYNTAX_RULE, "file does not parse"),
        (STALE_RULE, "stale suppression comment"),
    ):
        rules.setdefault(
            rule_id,
            {"id": rule_id, "shortDescription": {"text": title}},
        )
    return rules


def _sarif_result(finding, level: str) -> dict:
    return {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }


def render_sarif(report: LintReport) -> dict:
    """SARIF 2.1.0 log: findings as errors, stale suppressions as warnings.

    Baselined findings are emitted as ``note``-level results so code
    scanning still shows the debt without failing the check; suppressed
    findings are omitted entirely (they are resolved, by design).
    """
    rules = _rule_metadata()
    emitted = set()
    results = []
    for finding in report.findings:
        results.append(_sarif_result(finding, "error"))
        emitted.add(finding.rule)
    for finding in report.stale:
        results.append(_sarif_result(finding, "warning"))
        emitted.add(finding.rule)
    for finding in report.baselined:
        results.append(_sarif_result(finding, "note"))
        emitted.add(finding.rule)
    # Rules block: everything we know about, so rule help renders even for
    # ids with zero results; unknown ids seen in results get a stub.
    for rule_id in sorted(emitted - set(rules)):
        rules[rule_id] = {
            "id": rule_id,
            "shortDescription": {"text": rule_id},
        }
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-statcheck",
                        "informationUri": "https://example.invalid/repro/LINTING.md",
                        "rules": [rules[k] for k in sorted(rules)],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def write_sarif(report: LintReport, handle: IO) -> None:
    json.dump(render_sarif(report), handle, indent=2, sort_keys=True)
    handle.write("\n")


def record_inventory(report: LintReport, n_quick: Optional[int] = None) -> None:
    """Push the findings inventory into the ``repro.obs`` run context.

    Every manifest written after this call carries a ``lint`` block, so a
    benchmark table produced from a tree with (suppressed or live) lint
    findings says so — drift is visible in manifest diffs across PRs.
    """
    from repro.obs import manifest

    block = {
        "n_files": report.n_files,
        "n_findings": len(report.findings),
        "n_suppressed": len(report.suppressed),
        "n_stale": len(report.stale),
        "n_baselined": len(report.baselined),
        "per_rule": report.counts_by_rule(),
        "inventory": report.inventory(),
    }
    if n_quick is not None:
        block["n_quick_findings"] = n_quick
    manifest.set_context(lint=block)


__all__ = [
    "REPORT_FORMAT",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
    "write_json",
    "write_sarif",
    "record_inventory",
]
