"""Text substrate: chemical-name tokenisation, vocabularies, and corpora."""

from repro.text.corpus import (
    CorpusConfig,
    generate_chemistry_corpus,
    generate_generic_corpus,
)
from repro.text.tokenizer import ChemTokenizer, RegexpTokenizer
from repro.text.vocab import Vocabulary, build_vocabulary

__all__ = [
    "ChemTokenizer",
    "RegexpTokenizer",
    "Vocabulary",
    "build_vocabulary",
    "CorpusConfig",
    "generate_chemistry_corpus",
    "generate_generic_corpus",
]
