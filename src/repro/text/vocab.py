"""Vocabulary management: token census, id mapping, OOV bookkeeping.

Used for embedding training, the paper's Table A4 out-of-vocabulary
statistics, and the Table A5 token-frequency analysis.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Vocabulary:
    """A frozen token → id mapping with frequency counts.

    Ids are dense, starting at 0, assigned in descending frequency order
    (ties broken lexicographically) so id order is deterministic.
    """

    def __init__(self, counts: Dict[str, int]):
        if not counts:
            raise ValueError("vocabulary must contain at least one token")
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        self._tokens: List[str] = [token for token, _ in ordered]
        self._counts: Dict[str, int] = dict(ordered)
        self._ids: Dict[str, int] = {t: i for i, t in enumerate(self._tokens)}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __iter__(self):
        return iter(self._tokens)

    def id_of(self, token: str) -> int:
        """Dense id of ``token``; raises :class:`KeyError` for OOV tokens."""
        try:
            return self._ids[token]
        except KeyError:
            raise KeyError(f"token {token!r} not in vocabulary") from None

    def get_id(self, token: str) -> Optional[int]:
        """Dense id or ``None`` when out of vocabulary."""
        return self._ids.get(token)

    def token_of(self, token_id: int) -> str:
        return self._tokens[token_id]

    def count(self, token: str) -> int:
        """Training-corpus frequency of ``token`` (0 when OOV)."""
        return self._counts.get(token, 0)

    def counts(self) -> Dict[str, int]:
        """Copy of the full frequency table."""
        return dict(self._counts)

    def most_common(self, n: int) -> List[Tuple[str, int]]:
        return [(t, self._counts[t]) for t in self._tokens[:n]]

    def top_fraction(self, fraction: float) -> List[str]:
        """The most frequent ``fraction`` of tokens (at least one).

        Used by the task-oriented adaptation (Algorithm 2), which analyses the
        top 25% most frequent tokens.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n = max(1, int(len(self._tokens) * fraction))
        return self._tokens[:n]

    def oov_statistics(self, tokens: Iterable[str]) -> Tuple[int, int, float]:
        """``(n_oov, n_unique, fraction_oov)`` over the unique ``tokens``.

        This is the paper's Table A4 measurement: the share of unique ChEBI
        triple tokens missing from an embedding model's vocabulary.
        """
        unique = set(tokens)
        if not unique:
            raise ValueError("token set must be non-empty")
        n_oov = sum(1 for token in unique if token not in self._ids)
        return n_oov, len(unique), n_oov / len(unique)


def build_vocabulary(
    token_streams: Iterable[Sequence[str]], min_count: int = 1
) -> Vocabulary:
    """Count tokens across an iterable of token sequences.

    ``min_count`` drops rare tokens (standard word2vec/GloVe preprocessing).
    """
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    counter: Counter = Counter()
    for stream in token_streams:
        counter.update(stream)
    kept = {t: c for t, c in counter.items() if c >= min_count}
    if not kept:
        raise ValueError(
            f"no token reached min_count={min_count}; corpus too small"
        )
    return Vocabulary(kept)


__all__ = ["Vocabulary", "build_vocabulary"]
