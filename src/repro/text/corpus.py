"""Synthetic training corpora for the embedding models.

The paper trains W2V-Chem and GloVe-Chem on 7,201 ChEBI-linked PubMed papers
(Section 2.3).  That corpus is unavailable offline, so
:func:`generate_chemistry_corpus` produces an equivalent distributional
signal: documents of templated scientific sentences that verbalise true
ontology triples (so tokens of related entities co-occur) interleaved with
generic methods/results boilerplate.

:func:`generate_generic_corpus` produces an open-domain corpus (the
Common-Crawl / PubMed-at-large analogue used to pretrain the GloVe and
BioWordVec stand-ins): mostly general English with a configurable small
fraction of chemistry sentences, which yields the high out-of-vocabulary
rates on ChEBI tokens the paper reports in Table A4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ontology.model import Ontology, Statement
from repro.text.tokenizer import ChemTokenizer
from repro.utils.rng import SeedLike, derive_rng

#: Verbalisation templates per relationship type.  ``{s}`` / ``{o}`` are the
#: subject / object entity names.
RELATION_TEMPLATES: Dict[str, Sequence[str]] = {
    "is_a": (
        "{s} is a {o}",
        "{s} belongs to the class of {o}",
        "we characterised {s} as a novel {o}",
        "{s} was classified as a {o} in this screen",
    ),
    "has_role": (
        "{s} has role {o}",
        "{s} acts as a {o}",
        "{s} exhibited potent {o} activity",
        "treatment with {s} confirmed its function as a {o}",
    ),
    "has_functional_parent": (
        "{s} has functional parent {o}",
        "{s} is obtained from {o} by functional modification",
        "{s} derives from {o} through substitution",
    ),
    "is_conjugate_base_of": (
        "{s} is conjugate base of {o}",
        "deprotonation of {o} yields {s}",
    ),
    "is_conjugate_acid_of": (
        "{s} is conjugate acid of {o}",
        "protonation of {o} yields {s}",
    ),
    "has_part": (
        "{s} has part {o}",
        "{s} contains {o} as a structural component",
    ),
    "is_enantiomer_of": (
        "{s} is enantiomer of {o}",
        "{s} and {o} are non superimposable mirror images",
    ),
    "is_tautomer_of": (
        "{s} is tautomer of {o}",
        "{s} exists in equilibrium with its tautomer {o}",
    ),
    "has_parent_hydride": (
        "{s} has parent hydride {o}",
        "the skeleton of {s} corresponds to the hydride {o}",
    ),
    "is_substituent_group_from": (
        "{s} is substituent group from {o}",
        "{s} is formed from {o} by loss of a proton",
    ),
}

#: Filler sentences mentioning one or two random entities, emulating the
#: methods/results prose of a chemistry paper.
FILLER_TEMPLATES: Sequence[str] = (
    "the synthesis of {a} from {b} proceeded in high yield",
    "levels of {a} were quantified by mass spectrometry",
    "binding of {a} to the target protein was measured in vitro",
    "{a} was isolated from plant material and purified by chromatography",
    "co administration of {a} and {b} altered the metabolic profile",
    "the crystal structure of {a} was solved at high resolution",
    "{a} concentrations increased significantly after treatment",
    "docking studies suggested that {a} occupies the active site",
    "nmr analysis confirmed the proposed structure of {a}",
    "{a} showed weak inhibition compared with {b} in the assay",
)

#: Generic-English sentence templates for the open-domain corpus.
GENERIC_TEMPLATES: Sequence[str] = (
    "the {a} of the {b} was discussed at length in the report",
    "researchers from the {a} presented new findings about the {b}",
    "the committee agreed that the {a} should be reviewed next year",
    "a large {a} was observed near the {b} during the survey",
    "many people consider the {a} to be an important part of the {b}",
    "the government announced a new policy on {a} and {b}",
    "students studied the history of the {a} in the {b}",
    "the market for {a} grew rapidly over the past decade",
    "the weather affected the {a} more than the {b} this season",
    "analysts expect the {a} to influence the {b} substantially",
)

#: Open-domain noun pool used by the generic templates (drawn with a Zipf-like
#: bias so the generic corpus has a realistic frequency profile).
GENERIC_NOUNS: Sequence[str] = (
    "time", "year", "people", "way", "day", "man", "thing", "woman", "life",
    "child", "world", "school", "state", "family", "student", "group",
    "country", "problem", "hand", "part", "place", "case", "week", "company",
    "system", "program", "question", "work", "government", "number", "night",
    "point", "home", "water", "room", "mother", "area", "money", "story",
    "fact", "month", "lot", "right", "study", "book", "eye", "job", "word",
    "business", "issue", "side", "kind", "head", "house", "service", "friend",
    "father", "power", "hour", "game", "line", "end", "member", "law", "car",
    "city", "community", "name", "president", "team", "minute", "idea",
    "body", "information", "back", "parent", "face", "others", "level",
    "office", "door", "health", "person", "art", "war", "history", "party",
    "result", "change", "morning", "reason", "research", "girl", "guy",
    "moment", "air", "teacher", "force", "education", "acid", "compound",
    "metabolite", "protein", "cell", "molecule", "drug", "agent", "sample",
)


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of a synthetic corpus.

    Attributes:
        n_documents: number of documents (the paper's chem corpus has 7,201
            papers; scale to taste).
        sentences_per_document: sentences per document.
        triple_sentence_fraction: share of sentences that verbalise a true
            ontology triple (the rest are filler prose).
        statement_coverage: fraction of ontology statements the corpus may
            verbalise.  A real literature corpus only discusses part of the
            knowledge in ChEBI; coverage < 1 reproduces that (and prevents
            embeddings from indirectly "reading" every test triple).
        seed: corpus-level seed.
    """

    n_documents: int = 400
    sentences_per_document: int = 30
    triple_sentence_fraction: float = 0.7
    statement_coverage: float = 0.6
    seed: int = 11

    def __post_init__(self):
        if self.n_documents < 1 or self.sentences_per_document < 1:
            raise ValueError("corpus dimensions must be positive")
        if not 0.0 <= self.triple_sentence_fraction <= 1.0:
            raise ValueError("triple_sentence_fraction must be in [0, 1]")
        if not 0.0 < self.statement_coverage <= 1.0:
            raise ValueError("statement_coverage must be in (0, 1]")


def _verbalise(statement: Statement, ontology: Ontology,
               rng: np.random.Generator) -> str:
    templates = RELATION_TEMPLATES[statement.relation.name]
    template = templates[int(rng.integers(0, len(templates)))]
    return template.format(
        s=ontology.entity(statement.subject).name,
        o=ontology.entity(statement.object).name,
    )


def generate_chemistry_corpus(
    ontology: Ontology, config: Optional[CorpusConfig] = None
) -> List[List[str]]:
    """Generate the domain corpus: tokenised sentences grouped by document.

    Returns a list of documents; each document is a list of token lists
    (one per sentence), ready for embedding training.
    """
    from repro.obs.trace import span

    config = config or CorpusConfig()
    rng = derive_rng(config.seed, "chemistry-corpus")
    tokenizer = ChemTokenizer()
    statements = list(ontology.statements())
    if not statements:
        raise ValueError("ontology has no statements to verbalise")
    if config.statement_coverage < 1.0:
        n_covered = max(1, int(len(statements) * config.statement_coverage))
        coverage_rng = derive_rng(config.seed, "statement-coverage")
        chosen = coverage_rng.choice(len(statements), size=n_covered, replace=False)
        statements = [statements[int(i)] for i in sorted(chosen)]
    # Filler prose only mentions entities the (partial) corpus knows about —
    # a real literature corpus does not name every ChEBI entity.
    covered_ids = {s.subject for s in statements} | {s.object for s in statements}
    entity_names = [ontology.entity(i).name for i in sorted(covered_ids)]

    documents: List[List[str]] = []
    with span("corpus.chemistry", n_documents=config.n_documents) as sp:
        for _ in range(config.n_documents):
            sentences: List[str] = []
            for _ in range(config.sentences_per_document):
                if rng.random() < config.triple_sentence_fraction:
                    statement = statements[int(rng.integers(0, len(statements)))]
                    sentences.append(_verbalise(statement, ontology, rng))
                else:
                    template = FILLER_TEMPLATES[int(rng.integers(0, len(FILLER_TEMPLATES)))]
                    a = entity_names[int(rng.integers(0, len(entity_names)))]
                    b = entity_names[int(rng.integers(0, len(entity_names)))]
                    sentences.append(template.format(a=a, b=b))
            documents.append([" ".join(tokenizer(s)) for s in sentences])
            sp.incr("documents")
            sp.incr("sentences", len(sentences))
    return documents


def generate_generic_corpus(
    ontology: Ontology,
    config: Optional[CorpusConfig] = None,
    chemistry_fraction: float = 0.15,
) -> List[List[str]]:
    """Generate the open-domain corpus used to pretrain generic embeddings.

    ``chemistry_fraction`` controls how many sentences mention ontology
    entities; low values reproduce the high ChEBI-token OOV rates of generic
    embeddings (Table A4: GloVe 87.8% OOV vs BioWordVec 47.8%).
    """
    from repro.obs.trace import span

    if not 0.0 <= chemistry_fraction <= 1.0:
        raise ValueError("chemistry_fraction must be in [0, 1]")
    config = config or CorpusConfig()
    rng = derive_rng(config.seed, "generic-corpus", chemistry_fraction)
    tokenizer = ChemTokenizer()
    statements = list(ontology.statements())
    if statements and config.statement_coverage < 1.0:
        n_covered = max(1, int(len(statements) * config.statement_coverage))
        coverage_rng = derive_rng(config.seed, "statement-coverage")
        chosen = coverage_rng.choice(len(statements), size=n_covered, replace=False)
        statements = [statements[int(i)] for i in sorted(chosen)]
    # Zipf-like weights over the generic noun pool.
    ranks = np.arange(1, len(GENERIC_NOUNS) + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()

    documents: List[List[str]] = []
    with span(
        "corpus.generic",
        n_documents=config.n_documents,
        chemistry_fraction=chemistry_fraction,
    ) as sp:
        for _ in range(config.n_documents):
            sentences: List[str] = []
            for _ in range(config.sentences_per_document):
                if statements and rng.random() < chemistry_fraction:
                    statement = statements[int(rng.integers(0, len(statements)))]
                    sentences.append(_verbalise(statement, ontology, rng))
                else:
                    template = GENERIC_TEMPLATES[int(rng.integers(0, len(GENERIC_TEMPLATES)))]
                    a, b = (
                        GENERIC_NOUNS[int(i)]
                        for i in rng.choice(len(GENERIC_NOUNS), size=2, p=weights)
                    )
                    sentences.append(template.format(a=a, b=b))
            documents.append([" ".join(tokenizer(s)) for s in sentences])
            sp.incr("documents")
            sp.incr("sentences", len(sentences))
    return documents


def corpus_sentences(documents: List[List[str]]) -> List[List[str]]:
    """Flatten documents into tokenised sentences (lists of token strings)."""
    return [sentence.split() for document in documents for sentence in document]


__all__ = [
    "CorpusConfig",
    "generate_chemistry_corpus",
    "generate_generic_corpus",
    "corpus_sentences",
    "RELATION_TEMPLATES",
    "FILLER_TEMPLATES",
]
