"""Regular-expression tokenisers for chemical entity names.

The paper tokenises entity names with NLTK's ``RegexpTokenizer`` using
hand-crafted patterns for chemical nomenclature (Section 2.6).
:class:`RegexpTokenizer` reproduces NLTK's contract (return all matches of a
pattern); :class:`ChemTokenizer` is the configured instance used throughout
this repository.

The chemical pattern lower-cases input and emits maximal alphanumeric runs,
so ``(2S)-3-hydroxybutanoic acid`` tokenises to ``['2s', '3',
'hydroxybutanoic', 'acid']`` — reproducing the short locant / stereo tokens
(``2``, ``3``, ``6r``, ``2s``) that dominate the paper's Table A5 census.
"""

from __future__ import annotations

import re
from typing import List, Pattern, Union


class RegexpTokenizer:
    """Tokenise text as the list of non-overlapping matches of a pattern.

    Mirrors ``nltk.tokenize.RegexpTokenizer(pattern, gaps=False)``.
    """

    def __init__(self, pattern: Union[str, Pattern[str]], gaps: bool = False):
        self._pattern = re.compile(pattern) if isinstance(pattern, str) else pattern
        self._gaps = gaps

    def tokenize(self, text: str) -> List[str]:
        """Return the tokens of ``text``; empty strings are dropped."""
        if self._gaps:
            pieces = self._pattern.split(text)
        else:
            pieces = self._pattern.findall(text)
        return [piece for piece in pieces if piece]

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)


#: Maximal run of ASCII letters/digits.  Greek letters written out in ChEBI
#: names ("alpha", "beta") are ordinary letter runs already.
CHEM_TOKEN_PATTERN = r"[a-z0-9]+"


class ChemTokenizer(RegexpTokenizer):
    """The chemical-name tokeniser used across the benchmark.

    Lower-cases before matching, so stereo descriptors like ``(2S)-`` become
    the single token ``2s``.

    >>> ChemTokenizer()("(2S)-3-Hydroxybutanoic acid")
    ['2s', '3', 'hydroxybutanoic', 'acid']
    >>> ChemTokenizer()("N(2)-L-glutamino(1-) group")
    ['n', '2', 'l', 'glutamino', '1', 'group']
    """

    def __init__(self, pattern: str = CHEM_TOKEN_PATTERN):
        super().__init__(pattern)

    def tokenize(self, text: str) -> List[str]:
        return super().tokenize(text.lower())


__all__ = ["RegexpTokenizer", "ChemTokenizer", "CHEM_TOKEN_PATTERN"]
