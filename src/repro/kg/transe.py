"""TransE (Bordes et al., 2013) from scratch in numpy.

Entities and relations live in the same space; a true triple ``(s, l, o)``
should satisfy ``e_s + r_l ~ e_o``.  Training minimises a margin ranking
loss against corrupted triples (head or tail replaced by a random entity),
with entity vectors renormalised to the unit ball each step.

For the curation tasks the scorer is wrapped as a classifier: a decision
threshold on ``-||e_s + r_l - e_o||`` is calibrated on the training triples
(maximising F1).  Because TransE never sees entity *names*, it is the
structure-only comparator to the paper's text-based paradigms: strong on
task 1 (random negatives break graph structure), weak on triples about
entities unseen in training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.metrics.classification import f1_score
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class TransEConfig:
    """TransE hyperparameters."""

    dim: int = 32
    margin: float = 1.0
    epochs: int = 40
    learning_rate: float = 0.05
    batch_size: int = 512
    norm: int = 1  # L1 or L2 dissimilarity
    seed: int = 0

    def __post_init__(self):
        if self.dim < 1 or self.epochs < 1 or self.batch_size < 1:
            raise ValueError("dim, epochs, batch_size must be positive")
        if self.margin <= 0 or self.learning_rate <= 0:
            raise ValueError("margin and learning_rate must be positive")
        if self.norm not in (1, 2):
            raise ValueError("norm must be 1 or 2")


class TransE:
    """A trained TransE model with a calibrated classification threshold."""

    def __init__(self, config: Optional[TransEConfig] = None):
        self.config = config or TransEConfig()
        self.entity_index: Dict[str, int] = {}
        self.relation_index: Dict[str, int] = {}
        self.entity_vectors: Optional[np.ndarray] = None
        self.relation_vectors: Optional[np.ndarray] = None
        self.threshold: float = 0.0

    # -- training -------------------------------------------------------------

    def _index_triples(
        self, triples: Sequence[LabeledTriple]
    ) -> np.ndarray:
        rows = []
        for triple in triples:
            rows.append(
                (
                    self.entity_index[triple.subject_id],
                    self.relation_index[triple.relation.name],
                    self.entity_index[triple.object_id],
                )
            )
        return np.array(rows, dtype=np.int64)

    def _distance(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        diff = (
            self.entity_vectors[heads]
            + self.relation_vectors[relations]
            - self.entity_vectors[tails]
        )
        if self.config.norm == 1:
            return np.abs(diff).sum(axis=1)
        return np.sqrt((diff**2).sum(axis=1) + 1e-12)

    def fit(self, train_triples: Sequence[LabeledTriple]) -> "TransE":
        """Train on the *positive* triples of a labelled training split.

        Only the graph edges present in the training data are learned —
        test positives are never seen, so the evaluation is leak-free.  The
        full labelled split calibrates the classification threshold.
        """
        config = self.config
        rng = derive_rng(config.seed, "transe")
        positives = [t for t in train_triples if t.label == 1]
        if not positives:
            raise ValueError("training split contains no positive triples")

        entity_ids = sorted(
            {t.subject_id for t in train_triples}
            | {t.object_id for t in train_triples}
        )
        self.entity_index = {e: i for i, e in enumerate(entity_ids)}
        relations = sorted({t.relation.name for t in train_triples})
        self.relation_index = {r: i for i, r in enumerate(relations)}
        n_entities = len(self.entity_index)

        bound = 6.0 / np.sqrt(config.dim)
        self.entity_vectors = rng.uniform(-bound, bound, (n_entities, config.dim))
        self.relation_vectors = rng.uniform(
            -bound, bound, (len(self.relation_index), config.dim)
        )
        self.relation_vectors /= np.maximum(
            np.linalg.norm(self.relation_vectors, axis=1, keepdims=True), 1e-12
        )

        edges = self._index_triples(positives)
        n_edges = edges.shape[0]

        for _ in range(config.epochs):
            # Renormalise entities to the unit ball (the TransE constraint).
            norms = np.maximum(
                np.linalg.norm(self.entity_vectors, axis=1, keepdims=True), 1.0
            )
            self.entity_vectors /= norms

            order = rng.permutation(n_edges)
            for start in range(0, n_edges, config.batch_size):
                batch = edges[order[start : start + config.batch_size]]
                heads, rels, tails = batch[:, 0], batch[:, 1], batch[:, 2]
                corrupt = rng.integers(0, n_entities, size=batch.shape[0])
                corrupt_heads = rng.random(batch.shape[0]) < 0.5
                neg_heads = np.where(corrupt_heads, corrupt, heads)
                neg_tails = np.where(corrupt_heads, tails, corrupt)

                pos_diff = (
                    self.entity_vectors[heads]
                    + self.relation_vectors[rels]
                    - self.entity_vectors[tails]
                )
                neg_diff = (
                    self.entity_vectors[neg_heads]
                    + self.relation_vectors[rels]
                    - self.entity_vectors[neg_tails]
                )
                if config.norm == 1:
                    pos_dist = np.abs(pos_diff).sum(axis=1)
                    neg_dist = np.abs(neg_diff).sum(axis=1)
                    pos_grad = np.sign(pos_diff)
                    neg_grad = np.sign(neg_diff)
                else:
                    pos_dist = np.sqrt((pos_diff**2).sum(axis=1) + 1e-12)
                    neg_dist = np.sqrt((neg_diff**2).sum(axis=1) + 1e-12)
                    pos_grad = pos_diff / pos_dist[:, None]
                    neg_grad = neg_diff / neg_dist[:, None]

                active = (config.margin + pos_dist - neg_dist) > 0
                if not active.any():
                    continue
                lr = config.learning_rate
                pos_grad = pos_grad[active] * lr
                neg_grad = neg_grad[active] * lr

                np.add.at(self.entity_vectors, heads[active], -pos_grad)
                np.add.at(self.entity_vectors, tails[active], pos_grad)
                np.add.at(self.relation_vectors, rels[active], -pos_grad)
                np.add.at(self.entity_vectors, neg_heads[active], neg_grad)
                np.add.at(self.entity_vectors, neg_tails[active], -neg_grad)
                np.add.at(self.relation_vectors, rels[active], neg_grad)

        self._calibrate(train_triples, edges)
        return self

    def _calibrate(
        self, train_triples: Sequence[LabeledTriple], edges: np.ndarray
    ) -> None:
        known = [
            t for t in train_triples
            if t.subject_id in self.entity_index
            and t.object_id in self.entity_index
            and t.relation.name in self.relation_index
        ]
        labels = [t.label for t in known]
        if known and 0 in labels and 1 in labels:
            indexed = self._index_triples(known)
            distances = self._distance(indexed[:, 0], indexed[:, 1], indexed[:, 2])
            candidates = np.quantile(distances, np.linspace(0.05, 0.95, 19))
            best_threshold, best_f1 = float(candidates[0]), -1.0
            for candidate in candidates:
                predictions = (distances <= candidate).astype(np.int64)
                score = f1_score(labels, predictions)
                if score > best_f1:
                    best_f1 = score
                    best_threshold = float(candidate)
            self.threshold = best_threshold
            return
        positive_distances = self._distance(edges[:, 0], edges[:, 1], edges[:, 2])
        self.threshold = float(np.median(positive_distances))

    # -- inference ---------------------------------------------------------------

    def score(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """Plausibility score (higher = more plausible): ``-distance``.

        Triples mentioning unknown entities/relations score ``-inf``.
        """
        if self.entity_vectors is None:
            raise RuntimeError("model is not fitted")
        scores = np.full(len(triples), -np.inf)
        rows = []
        positions = []
        for position, triple in enumerate(triples):
            if (
                triple.subject_id in self.entity_index
                and triple.object_id in self.entity_index
                and triple.relation.name in self.relation_index
            ):
                rows.append(
                    (
                        self.entity_index[triple.subject_id],
                        self.relation_index[triple.relation.name],
                        self.entity_index[triple.object_id],
                    )
                )
                positions.append(position)
        if rows:
            indexed = np.array(rows, dtype=np.int64)
            distances = self._distance(indexed[:, 0], indexed[:, 1], indexed[:, 2])
            scores[positions] = -distances
        return scores

    def predict(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """0/1 decisions via the calibrated distance threshold."""
        return (self.score(triples) >= -self.threshold).astype(np.int64)


__all__ = ["TransE", "TransEConfig"]
