"""Structure-based knowledge-graph embedding baselines.

The paper situates its text-based paradigms within the link-prediction
literature (Section 1).  This package provides the canonical structural
comparator — TransE — which learns entity/relation vectors from the graph
alone (no entity names), so its comparison against the text-feature models
isolates how much of the curation signal lives in nomenclature vs topology.
"""

from repro.kg.transe import TransE, TransEConfig

__all__ = ["TransE", "TransEConfig"]
