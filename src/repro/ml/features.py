"""Triple → feature conversion (the paper's Algorithm 1).

Two representations, chosen by the learning algorithm:

* **vector** (Random Forest and other non-sequential models): tokenize each
  component, average its token vectors, concatenate the three component
  means into one ``3 * dim`` vector;
* **sequence** (LSTM / RNN models): token vectors of subject, relation and
  object joined by a learnable-free separator vector.

Token-selection *adaptations* (Section 2.7) plug in as a ``token_filter``
applied after tokenisation.  Phrase-level (contextual) embedding models skip
tokenisation: each component is embedded as a whole phrase.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.triples import LabeledTriple
from repro.embeddings.base import EmbeddingModel
from repro.text.tokenizer import ChemTokenizer

TokenFilter = Callable[[List[str]], List[str]]

#: Separator pseudo-token embedded between components in sequence features.
SEPARATOR_TOKEN = "[SEP]"


def triple_component_tokens(
    triple: LabeledTriple,
    tokenizer: Optional[ChemTokenizer] = None,
    token_filter: Optional[TokenFilter] = None,
) -> Tuple[List[str], List[str], List[str]]:
    """Tokenised (subject, relation, object) with the adaptation filter applied.

    A filter that would empty a component is ignored for that component (the
    paper's naive adaptation keeps all tokens when every token is short).
    """
    tokenizer = tokenizer or ChemTokenizer()
    components = []
    for text in (triple.subject_name, triple.relation.label, triple.object_name):
        tokens = tokenizer(text)
        if not tokens:
            tokens = [text.lower()]
        if token_filter is not None:
            filtered = token_filter(tokens)
            if filtered:
                tokens = filtered
        components.append(tokens)
    return components[0], components[1], components[2]


def triple_to_vector(
    triple: LabeledTriple,
    embeddings: EmbeddingModel,
    tokenizer: Optional[ChemTokenizer] = None,
    token_filter: Optional[TokenFilter] = None,
) -> np.ndarray:
    """Averaged-then-concatenated feature vector, shape ``(3 * dim,)``."""
    if embeddings.phrase_level:
        parts = [
            embeddings.vector(text)
            for text in (
                triple.subject_name,
                triple.relation.label,
                triple.object_name,
            )
        ]
        return np.concatenate(parts)
    subject, relation, obj = triple_component_tokens(triple, tokenizer, token_filter)
    return np.concatenate(
        [
            embeddings.mean_vector(subject),
            embeddings.mean_vector(relation),
            embeddings.mean_vector(obj),
        ]
    )


def triple_to_sequence(
    triple: LabeledTriple,
    embeddings: EmbeddingModel,
    tokenizer: Optional[ChemTokenizer] = None,
    token_filter: Optional[TokenFilter] = None,
) -> np.ndarray:
    """Token-vector sequence with separator rows, shape ``(T, dim)``."""
    separator = embeddings.oov_vector(SEPARATOR_TOKEN)[None, :]
    if embeddings.phrase_level:
        rows = [
            embeddings.vector(triple.subject_name)[None, :],
            separator,
            embeddings.vector(triple.relation.label)[None, :],
            separator,
            embeddings.vector(triple.object_name)[None, :],
        ]
        return np.concatenate(rows, axis=0)
    subject, relation, obj = triple_component_tokens(triple, tokenizer, token_filter)
    return np.concatenate(
        [
            embeddings.encode(subject),
            separator,
            embeddings.encode(relation),
            separator,
            embeddings.encode(obj),
        ],
        axis=0,
    )


class FeatureExtractor:
    """Reusable extractor binding an embedding model and an adaptation.

    Caches nothing across calls beyond what the embedding model itself
    caches; instances are cheap and safe to share.
    """

    def __init__(
        self,
        embeddings: EmbeddingModel,
        token_filter: Optional[TokenFilter] = None,
        tokenizer: Optional[ChemTokenizer] = None,
    ):
        self.embeddings = embeddings
        self.token_filter = token_filter
        self.tokenizer = tokenizer or ChemTokenizer()

    def matrix(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """Feature matrix ``(n, 3 * dim)`` for the vector representation."""
        if not triples:
            raise ValueError("no triples to featurise")
        return np.stack(
            [
                triple_to_vector(
                    t, self.embeddings, self.tokenizer, self.token_filter
                )
                for t in triples
            ]
        )

    def sequences(self, triples: Sequence[LabeledTriple]) -> List[np.ndarray]:
        """Per-triple ``(T_i, dim)`` sequences for the RNN representation."""
        if not triples:
            raise ValueError("no triples to featurise")
        return [
            triple_to_sequence(t, self.embeddings, self.tokenizer, self.token_filter)
            for t in triples
        ]

    @staticmethod
    def labels(triples: Sequence[LabeledTriple]) -> np.ndarray:
        return np.array([t.label for t in triples], dtype=np.int64)


__all__ = [
    "TokenFilter",
    "SEPARATOR_TOKEN",
    "triple_component_tokens",
    "triple_to_vector",
    "triple_to_sequence",
    "FeatureExtractor",
]
