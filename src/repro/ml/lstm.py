"""LSTM sequence classifier with backpropagation through time, in numpy.

The paper's RNN archetype (Section 2.6): triples are converted into token
vector sequences (Algorithm 1) and classified from the final hidden state.
Embeddings are fixed inputs (not fine-tuned), matching the paper's setup.
Sequences are right-padded per batch; masked steps pass hidden and cell
states through unchanged so the final state equals the state at each
sequence's true last step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Parameter
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam, clip_gradients
from repro.obs.progress import StageProgress, emit
from repro.obs.trace import span
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class LSTMConfig:
    """LSTM classifier hyperparameters."""

    hidden_size: int = 32
    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 5e-3
    max_grad_norm: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _pad_batch(
    sequences: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Right-pad to ``(batch, T_max, dim)`` with a ``(batch, T_max)`` mask."""
    dim = sequences[0].shape[1]
    t_max = max(s.shape[0] for s in sequences)
    x = np.zeros((len(sequences), t_max, dim))
    mask = np.zeros((len(sequences), t_max))
    for row, sequence in enumerate(sequences):
        x[row, : sequence.shape[0]] = sequence
        mask[row, : sequence.shape[0]] = 1.0
    return x, mask


class LSTMClassifier:
    """Single-layer LSTM → linear softmax classifier over sequences."""

    def __init__(self, input_dim: int, config: Optional[LSTMConfig] = None):
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        self.config = config or LSTMConfig()
        self.input_dim = input_dim
        h = self.config.hidden_size
        rng = derive_rng(self.config.seed, "lstm-init")
        scale_x = 1.0 / np.sqrt(input_dim)
        scale_h = 1.0 / np.sqrt(h)
        self.w_x = Parameter(rng.normal(0, scale_x, size=(input_dim, 4 * h)), "lstm.w_x")
        self.w_h = Parameter(rng.normal(0, scale_h, size=(h, 4 * h)), "lstm.w_h")
        bias = np.zeros(4 * h)
        bias[h : 2 * h] = 1.0  # forget-gate bias trick
        self.b = Parameter(bias, "lstm.b")
        self.w_out = Parameter(rng.normal(0, scale_h, size=(h, 2)), "lstm.w_out")
        self.b_out = Parameter(np.zeros(2), "lstm.b_out")
        self.history: List[dict] = []

    def parameters(self) -> List[Parameter]:
        return [self.w_x, self.w_h, self.b, self.w_out, self.b_out]

    # -- forward/backward ----------------------------------------------------

    def _forward(self, x: np.ndarray, mask: np.ndarray):
        """Run the recurrence; returns (final hidden, per-step caches)."""
        batch, t_max, _ = x.shape
        h_size = self.config.hidden_size
        h = np.zeros((batch, h_size))
        c = np.zeros((batch, h_size))
        caches = []
        for t in range(t_max):
            x_t = x[:, t, :]
            m = mask[:, t : t + 1]
            z = x_t @ self.w_x.value + h @ self.w_h.value + self.b.value
            i = _sigmoid(z[:, :h_size])
            f = _sigmoid(z[:, h_size : 2 * h_size])
            g = np.tanh(z[:, 2 * h_size : 3 * h_size])
            o = _sigmoid(z[:, 3 * h_size :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            caches.append((x_t, h, c, i, f, g, o, tanh_c, m))
            c = m * c_new + (1.0 - m) * c
            h = m * h_new + (1.0 - m) * h
        return h, caches

    def _backward(self, caches, grad_h: np.ndarray):
        h_size = self.config.hidden_size
        grad_c = np.zeros_like(grad_h)
        for x_t, h_prev, c_prev, i, f, g, o, tanh_c, m in reversed(caches):
            dh_new = grad_h * m
            dc_pass = grad_c * (1.0 - m)
            dh_pass = grad_h * (1.0 - m)

            do = dh_new * tanh_c
            dc_new = grad_c * m + dh_new * o * (1.0 - tanh_c**2)

            df = dc_new * c_prev
            di = dc_new * g
            dg = dc_new * i
            dc_prev = dc_new * f + dc_pass

            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            self.w_x.grad += x_t.T @ dz
            self.w_h.grad += h_prev.T @ dz
            self.b.grad += dz.sum(axis=0)
            grad_h = dz @ self.w_h.value.T + dh_pass
            grad_c = dc_prev

    # -- training & inference ---------------------------------------------------

    def fit(
        self,
        sequences: Sequence[np.ndarray],
        labels: Sequence[int],
        validation: Optional[Tuple[Sequence[np.ndarray], Sequence[int]]] = None,
    ) -> "LSTMClassifier":
        """Train on variable-length sequences with binary labels."""
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must have equal length")
        if not sequences:
            raise ValueError("training set is empty")
        for sequence in sequences:
            if sequence.ndim != 2 or sequence.shape[1] != self.input_dim:
                raise ValueError(
                    f"each sequence must be (T, {self.input_dim})"
                )
        y = np.asarray(labels, dtype=np.int64)
        rng = derive_rng(self.config.seed, "lstm-train")
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)

        with span(
            "classifier.lstm.fit",
            epochs=self.config.epochs,
            sequences=len(sequences),
        ) as sp, StageProgress("classifier.lstm.fit", unit="steps") as progress:
            for epoch in range(self.config.epochs):
                order = rng.permutation(len(sequences))
                epoch_losses: List[float] = []
                for start in range(0, len(sequences), self.config.batch_size):
                    chosen = order[start : start + self.config.batch_size]
                    batch = [sequences[int(i)] for i in chosen]
                    x, mask = _pad_batch(batch)
                    h_final, caches = self._forward(x, mask)
                    logits = h_final @ self.w_out.value + self.b_out.value
                    loss, grad_logits = softmax_cross_entropy(logits, y[chosen])
                    for parameter in self.parameters():
                        parameter.zero_grad()
                    self.w_out.grad += h_final.T @ grad_logits
                    self.b_out.grad += grad_logits.sum(axis=0)
                    grad_h = grad_logits @ self.w_out.value.T
                    self._backward(caches, grad_h)
                    clip_gradients(self.parameters(), self.config.max_grad_norm)
                    optimizer.step()
                    epoch_losses.append(loss)
                    sp.incr("steps")
                    progress.advance(1)
                record = {"epoch": epoch, "train_loss": float(np.mean(epoch_losses))}
                if validation is not None:
                    val_x, val_y = validation
                    predictions = self.predict(val_x)
                    record["validation_accuracy"] = float(
                        np.mean(predictions == np.asarray(val_y))
                    )
                self.history.append(record)
                emit("classifier.lstm.fit", **record)
            if self.history:
                sp.gauge("final_train_loss", self.history[-1]["train_loss"])
        return self

    def predict_proba(self, sequences: Sequence[np.ndarray],
                      batch_size: int = 128) -> np.ndarray:
        """Positive-class probability per sequence."""
        if not sequences:
            raise ValueError("no sequences to classify")
        probs: List[np.ndarray] = []
        for start in range(0, len(sequences), batch_size):
            x, mask = _pad_batch(sequences[start : start + batch_size])
            h_final, _ = self._forward(x, mask)
            logits = h_final @ self.w_out.value + self.b_out.value
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            probs.append((exp / exp.sum(axis=1, keepdims=True))[:, 1])
        return np.concatenate(probs)

    def predict(self, sequences: Sequence[np.ndarray]) -> np.ndarray:
        return (self.predict_proba(sequences) >= 0.5).astype(np.int64)


__all__ = ["LSTMClassifier", "LSTMConfig"]
