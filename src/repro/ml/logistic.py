"""Logistic regression on triple feature vectors.

A linear baseline for the supervised-learning paradigm: the paper's
Algorithm 1 feeds any non-sequential learner; logistic regression is the
standard linear comparator for the Random Forest and exposes the same
``fit`` / ``predict`` / ``predict_proba`` interface (so it drops into the
grid search and the paradigm wrappers unchanged).

Trained with full-batch gradient descent + L2 regularisation; features are
standardised internally (embedding coordinates have wildly different
scales across models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LogisticRegressionConfig:
    """Training hyperparameters."""

    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    tol: float = 1e-7

    def __post_init__(self):
        if self.learning_rate <= 0 or self.epochs < 1:
            raise ValueError("learning_rate and epochs must be positive")
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")


class LogisticRegression:
    """Binary logistic regression with internal feature standardisation."""

    def __init__(self, config: Optional[LogisticRegressionConfig] = None):
        self.config = config or LogisticRegressionConfig()
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.n_iterations_: int = 0

    def _standardise(self, x: np.ndarray) -> np.ndarray:
        return (x - self._mean) / self._std

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) with matching y")
        bad = set(np.unique(y)) - {0.0, 1.0}
        if bad:
            raise ValueError(f"labels must be binary, found {sorted(bad)}")

        self._mean = x.mean(axis=0)
        self._std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        z = self._standardise(x)

        n, d = z.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        previous_loss = np.inf
        for iteration in range(self.config.epochs):
            logits = z @ self.weights + self.bias
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            error = probs - y
            grad_w = z.T @ error / n + self.config.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.config.learning_rate * grad_w
            self.bias -= self.config.learning_rate * grad_b
            loss = float(
                -np.mean(
                    y * np.log(np.maximum(probs, 1e-12))
                    + (1 - y) * np.log(np.maximum(1 - probs, 1e-12))
                )
                + 0.5 * self.config.l2 * float(self.weights @ self.weights)
            )
            self.n_iterations_ = iteration + 1
            if abs(previous_loss - loss) < self.config.tol:
                break
            previous_loss = loss
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.weights.size:
            raise ValueError(
                f"x must be (n, {self.weights.size}), got shape {x.shape}"
            )
        logits = self._standardise(x) @ self.weights + self.bias
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)


__all__ = ["LogisticRegression", "LogisticRegressionConfig"]
