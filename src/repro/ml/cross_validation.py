"""Stratified k-fold cross-validation indices."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, derive_rng


def stratified_kfold(
    labels: Sequence[int], n_folds: int = 5, seed: SeedLike = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Stratified fold index pairs ``[(train_idx, test_idx), ...]``.

    Each class's indices are shuffled and dealt round-robin into folds, so
    fold class ratios match the dataset's.  Every index appears in exactly
    one test fold.
    """
    y = np.asarray(labels, dtype=np.int64)
    if y.ndim != 1 or y.size == 0:
        raise ValueError("labels must be a non-empty 1-D sequence")
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    class_counts = np.bincount(y)
    smallest = class_counts[class_counts > 0].min()
    if smallest < n_folds:
        raise ValueError(
            f"smallest class has {smallest} samples; cannot build {n_folds} folds"
        )
    rng = derive_rng(seed, "kfold", n_folds)
    fold_members: List[List[int]] = [[] for _ in range(n_folds)]
    for label in np.unique(y):
        indices = np.flatnonzero(y == label)
        indices = indices[rng.permutation(indices.size)]
        for position, index in enumerate(indices):
            fold_members[position % n_folds].append(int(index))

    folds = []
    all_indices = set(range(y.size))
    for members in fold_members:
        test_idx = np.array(sorted(members), dtype=np.int64)
        train_idx = np.array(sorted(all_indices - set(members)), dtype=np.int64)
        folds.append((train_idx, test_idx))
    return folds


__all__ = ["stratified_kfold"]
