"""CART decision trees (binary classification) from scratch.

Split search is quantile-histogram based: per candidate feature, up to
``n_thresholds`` quantile cut points are evaluated in one vectorised pass.
This trades a little exactness for an order-of-magnitude speedup over sorted
scans, which matters because the benchmarks train many forests.  Impurity
decrease per feature is accumulated into feature importances (needed for the
paper's Figure A1 analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class DecisionTreeConfig:
    """CART hyperparameters.

    Attributes:
        max_depth: maximum tree depth (root at depth 0).
        min_samples_split: minimum node size eligible for splitting.
        min_samples_leaf: minimum samples on each side of a split.
        max_features: candidate features per node; ``None`` uses all,
            ``"sqrt"`` uses the square root (the Random Forest default).
        n_thresholds: quantile cut points evaluated per feature.
        seed: feature-subsampling seed.
    """

    max_depth: int = 12
    min_samples_split: int = 4
    min_samples_leaf: int = 2
    max_features: Optional[object] = "sqrt"
    n_thresholds: int = 24
    seed: int = 0

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if self.n_thresholds < 1:
            raise ValueError("n_thresholds must be >= 1")

    def resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")


class _Node:
    """One tree node; leaves carry the positive-class probability."""

    __slots__ = ("feature", "threshold", "left", "right", "probability")

    def __init__(self):
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.probability: float = 0.5

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_from_counts(n_pos: np.ndarray, n_total: np.ndarray) -> np.ndarray:
    """Gini impurity for arrays of (positive, total) counts; 0 where empty."""
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(n_total > 0, n_pos / np.maximum(n_total, 1), 0.0)
    return 2.0 * p * (1.0 - p)


class DecisionTree:
    """A fitted CART classifier for binary labels."""

    def __init__(self, config: Optional[DecisionTreeConfig] = None):
        self.config = config or DecisionTreeConfig()
        self._root: Optional[_Node] = None
        self._n_features: int = 0
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_indices: Optional[np.ndarray] = None) -> "DecisionTree":
        """Grow the tree on ``x`` (n, d) and binary labels ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) and y (n,) with matching n")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        bad = set(np.unique(y)) - {0, 1}
        if bad:
            raise ValueError(f"labels must be binary, found {sorted(bad)}")
        self._n_features = x.shape[1]
        self.feature_importances_ = np.zeros(self._n_features)
        rng = derive_rng(self.config.seed, "tree-features")
        indices = (
            np.arange(x.shape[0]) if sample_indices is None
            else np.asarray(sample_indices, dtype=np.int64)
        )
        self._root = self._build(x, y, indices, depth=0, rng=rng,
                                 n_total=indices.size)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, indices: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[Tuple[int, float, float]]:
        """Return ``(feature, threshold, impurity_decrease)`` or None."""
        config = self.config
        n = indices.size
        labels = y[indices]
        n_pos = int(labels.sum())
        parent_gini = _gini_from_counts(
            np.array([n_pos]), np.array([n])
        )[0]
        if parent_gini == 0.0:
            return None
        k = config.resolve_max_features(self._n_features)
        features = rng.choice(self._n_features, size=k, replace=False)
        best = None
        best_decrease = 1e-12
        for feature in features:
            values = x[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            cum_pos = np.cumsum(labels[order])
            # Candidate cuts at evenly spaced ranks; each cut keeps every
            # duplicate of its threshold value on the left side.
            ranks = np.unique(
                np.linspace(
                    config.min_samples_leaf - 1,
                    n - config.min_samples_leaf - 1,
                    num=min(config.n_thresholds, n),
                ).astype(np.int64)
            )
            ranks = ranks[(ranks >= 0) & (ranks < n - 1)]
            if ranks.size == 0:
                continue
            n_left = np.searchsorted(
                sorted_values, sorted_values[ranks], side="right"
            )
            n_left = np.unique(n_left)
            n_left = n_left[
                (n_left >= config.min_samples_leaf)
                & (n - n_left >= config.min_samples_leaf)
            ]
            if n_left.size == 0:
                continue
            n_right = n - n_left
            pos_left = cum_pos[n_left - 1]
            pos_right = n_pos - pos_left
            gini_left = _gini_from_counts(pos_left, n_left)
            gini_right = _gini_from_counts(pos_right, n_right)
            child = (n_left * gini_left + n_right * gini_right) / n
            decrease = parent_gini - child
            pick = int(np.argmax(decrease))
            if decrease[pick] > best_decrease:
                best_decrease = float(decrease[pick])
                best = (
                    int(feature),
                    float(sorted_values[n_left[pick] - 1]),
                    best_decrease,
                )
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, indices: np.ndarray,
               depth: int, rng: np.random.Generator, n_total: int) -> _Node:
        node = _Node()
        labels = y[indices]
        node.probability = float(labels.mean()) if indices.size else 0.5
        if (
            depth >= self.config.max_depth
            or indices.size < self.config.min_samples_split
            or labels.min() == labels.max()
        ):
            return node
        split = self._best_split(x, y, indices, rng)
        if split is None:
            return node
        feature, threshold, decrease = split
        mask = x[indices, feature] <= threshold
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if (
            left_idx.size < self.config.min_samples_leaf
            or right_idx.size < self.config.min_samples_leaf
        ):
            return node
        self.feature_importances_[feature] += decrease * indices.size / n_total
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x, y, left_idx, depth + 1, rng, n_total)
        node.right = self._build(x, y, right_idx, depth + 1, rng, n_total)
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Positive-class probability per row."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self._n_features:
            raise ValueError(
                f"x must be (n, {self._n_features}), got shape {x.shape}"
            )
        out = np.empty(x.shape[0])
        # Batched traversal: route index groups level by level.
        stack = [(self._root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.probability
                continue
            mask = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


__all__ = ["DecisionTree", "DecisionTreeConfig"]
