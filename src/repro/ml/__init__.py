"""Supervised-learning paradigm: feature pipeline, Random Forest, LSTM.

Implements the paper's Algorithm 1 (triple → vector / sequence features via
embedding models), from-scratch CART decision trees and Random Forests with
feature importances (needed for the Figure A1 analysis), a numpy LSTM
classifier, and the 5-fold-CV hyperparameter grid search of Appendix A7.
"""

from repro.ml.features import (
    FeatureExtractor,
    triple_component_tokens,
    triple_to_sequence,
    triple_to_vector,
)
from repro.ml.forest import RandomForest, RandomForestConfig
from repro.ml.logistic import LogisticRegression, LogisticRegressionConfig
from repro.ml.tree import DecisionTree, DecisionTreeConfig
from repro.ml.lstm import LSTMClassifier, LSTMConfig
from repro.ml.cross_validation import stratified_kfold
from repro.ml.grid_search import GridSearchResult, grid_search

__all__ = [
    "FeatureExtractor",
    "triple_component_tokens",
    "triple_to_vector",
    "triple_to_sequence",
    "DecisionTree",
    "DecisionTreeConfig",
    "RandomForest",
    "RandomForestConfig",
    "LogisticRegression",
    "LogisticRegressionConfig",
    "LSTMClassifier",
    "LSTMConfig",
    "stratified_kfold",
    "grid_search",
    "GridSearchResult",
]
