"""Hyperparameter grid search with stratified cross-validation.

The paper optimises ML hyperparameters with a 5-fold CV grid search on the
training data, scored by F1 (Section 2.6, Appendix A7).  The search is
model-agnostic: callers supply a factory ``params -> model`` where the model
exposes ``fit(x, y)`` and ``predict(x)`` (matrix models) — sequence models
can be searched by wrapping them in an adapter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.metrics.classification import f1_score
from repro.ml.cross_validation import stratified_kfold
from repro.utils.rng import SeedLike

ModelFactory = Callable[[Dict[str, object]], object]


@dataclass
class GridSearchResult:
    """Outcome of a grid search.

    Attributes:
        best_params: the winning parameter combination.
        best_score: its mean CV F1.
        best_model: a model refit on the full training data with best_params.
        all_scores: ``[(params, mean_f1), ...]`` for every combination.
    """

    best_params: Dict[str, object]
    best_score: float
    best_model: object
    all_scores: List[Tuple[Dict[str, object], float]] = field(default_factory=list)


def parameter_grid(grid: Dict[str, Sequence[object]]) -> List[Dict[str, object]]:
    """Expand a parameter grid into all combinations, stably ordered."""
    if not grid:
        raise ValueError("parameter grid must not be empty")
    keys = sorted(grid)
    for key in keys:
        if not grid[key]:
            raise ValueError(f"parameter {key!r} has no candidate values")
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[k] for k in keys))
    ]


def grid_search(
    factory: ModelFactory,
    grid: Dict[str, Sequence[object]],
    x: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    seed: SeedLike = 0,
) -> GridSearchResult:
    """Exhaustive search over ``grid``, scored by mean CV F1.

    Ties break toward the earlier combination (stable order), so results are
    deterministic.
    """
    y = np.asarray(y, dtype=np.int64)
    combinations = parameter_grid(grid)
    folds = stratified_kfold(y, n_folds=n_folds, seed=seed)

    scores: List[Tuple[Dict[str, object], float]] = []
    best_index = 0
    best_score = -1.0
    for index, params in enumerate(combinations):
        fold_scores = []
        for train_idx, test_idx in folds:
            model = factory(params)
            model.fit(x[train_idx], y[train_idx])
            predictions = model.predict(x[test_idx])
            fold_scores.append(f1_score(y[test_idx], predictions))
        mean_score = float(np.mean(fold_scores))
        scores.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_index = index

    best_params = combinations[best_index]
    best_model = factory(best_params)
    best_model.fit(x, y)
    return GridSearchResult(
        best_params=best_params,
        best_score=best_score,
        best_model=best_model,
        all_scores=scores,
    )


__all__ = ["grid_search", "parameter_grid", "GridSearchResult", "ModelFactory"]
