"""Random Forest classifier built on the CART trees.

Bootstrap-sampled trees with per-node random feature subsets; probabilities
are the mean of tree leaf probabilities, and feature importances the mean of
tree importances (used by the paper's Figure A1 head/relation/tail analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTree, DecisionTreeConfig
from repro.obs.progress import StageProgress
from repro.obs.trace import span
from repro.utils.rng import SeedLike, derive_rng, stable_hash


@dataclass(frozen=True)
class RandomForestConfig:
    """Forest hyperparameters (grid-searched in the Appendix A7 protocol)."""

    n_estimators: int = 30
    max_depth: int = 12
    min_samples_split: int = 4
    min_samples_leaf: int = 2
    max_features: Optional[object] = "sqrt"
    n_thresholds: int = 24
    bootstrap: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")

    def tree_config(self, index: int) -> DecisionTreeConfig:
        return DecisionTreeConfig(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            n_thresholds=self.n_thresholds,
            seed=stable_hash(self.seed, "tree", index),
        )


class RandomForest:
    """A fitted ensemble of CART trees."""

    def __init__(self, config: Optional[RandomForestConfig] = None):
        self.config = config or RandomForestConfig()
        self.trees: List[DecisionTree] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForest":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) with y of length n")
        n = x.shape[0]
        self.trees = []
        importances = np.zeros(x.shape[1])
        with span(
            "classifier.forest.fit",
            n_estimators=self.config.n_estimators,
            samples=n,
            features=x.shape[1],
        ) as sp, StageProgress("classifier.forest.fit", unit="trees") as progress:
            for index in range(self.config.n_estimators):
                rng = derive_rng(self.config.seed, "bootstrap", index)
                if self.config.bootstrap:
                    sample = rng.integers(0, n, size=n)
                else:
                    sample = np.arange(n)
                tree = DecisionTree(self.config.tree_config(index))
                tree.fit(x, y, sample_indices=sample)
                self.trees.append(tree)
                importances += tree.feature_importances_
                sp.incr("trees")
                progress.advance(1)
        self.feature_importances_ = importances / self.config.n_estimators
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across trees."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        return np.mean([tree.predict_proba(x) for tree in self.trees], axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

    def component_importances(self, dim: int) -> np.ndarray:
        """Importance mass per triple component ``(subject, relation, object)``.

        The vector features concatenate three ``dim``-wide component blocks
        (Algorithm 1); summing importances per block reproduces the paper's
        head/relation/tail attention analysis (Section 2.7 / Figure A1).
        """
        if self.feature_importances_ is None:
            raise RuntimeError("forest is not fitted")
        if self.feature_importances_.size != 3 * dim:
            raise ValueError(
                f"feature vector length {self.feature_importances_.size} "
                f"is not 3 * dim = {3 * dim}"
            )
        blocks = self.feature_importances_.reshape(3, dim)
        return blocks.sum(axis=1)


__all__ = ["RandomForest", "RandomForestConfig"]
