"""The mini-BERT model: encoder + MLM head + classification head.

Mirrors the structure of BERT-style encoders: a bidirectional transformer
over WordPiece ids with an MLM head for pretraining and a tanh pooler +
softmax classifier for fine-tuning (paper Section 2.5: "a feed-forward
neural network [...] passed through a softmax layer").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bert.wordpiece import WordPieceTokenizer
from repro.nn.layers import Linear, Module
from repro.nn.transformer import TransformerConfig, TransformerEncoder
from repro.utils.rng import stable_hash


@dataclass(frozen=True)
class BertConfig:
    """Mini-BERT shape.  ``n_layers=4`` lets the contextual-embedding model
    sum the last four hidden layers as PubmedBERT embeddings do."""

    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 4
    d_ff: int = 128
    max_len: int = 64
    dropout: float = 0.1
    n_classes: int = 2
    seed: int = 0

    def transformer_config(self, vocab_size: int) -> TransformerConfig:
        return TransformerConfig(
            vocab_size=vocab_size,
            d_model=self.d_model,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            d_ff=self.d_ff,
            max_len=self.max_len,
            dropout=self.dropout,
            seed=self.seed,
        )


class MiniBert(Module):
    """Encoder with MLM and classification heads sharing one body."""

    def __init__(self, tokenizer: WordPieceTokenizer, config: Optional[BertConfig] = None):
        super().__init__()
        self.config = config or BertConfig()
        self.tokenizer = tokenizer
        self.encoder = TransformerEncoder(
            self.config.transformer_config(len(tokenizer))
        )
        seed = stable_hash(self.config.seed, "heads")
        self.mlm_head = Linear(
            self.config.d_model, len(tokenizer), seed=seed, name="mlm_head"
        )
        self.pooler = Linear(
            self.config.d_model, self.config.d_model, seed=seed, name="pooler"
        )
        self.classifier = Linear(
            self.config.d_model, self.config.n_classes, seed=seed, name="classifier"
        )
        self._cls_cache = None
        self._hidden_shape: Optional[Tuple[int, ...]] = None

    # -- batching ----------------------------------------------------------

    def pad_batch(
        self, sequences: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pad id sequences to a rectangle; returns ``(ids, mask)``."""
        if not sequences:
            raise ValueError("cannot pad an empty batch")
        max_len = min(self.config.max_len, max(len(s) for s in sequences))
        ids = np.full((len(sequences), max_len), self.tokenizer.pad_id, dtype=np.int64)
        mask = np.zeros((len(sequences), max_len), dtype=np.float64)
        for row, sequence in enumerate(sequences):
            clipped = list(sequence)[:max_len]
            ids[row, : len(clipped)] = clipped
            mask[row, : len(clipped)] = 1.0
        return ids, mask

    # -- MLM path ------------------------------------------------------------

    def forward_mlm(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Vocabulary logits for every position: ``(batch, seq, vocab)``."""
        final, _ = self.encoder.forward(ids, mask)
        self._hidden_shape = final.shape
        return self.mlm_head.forward(final)

    def backward_mlm(self, grad_logits: np.ndarray) -> None:
        grad_hidden = self.mlm_head.backward(grad_logits)
        self.encoder.backward(grad_hidden)

    # -- classification path ---------------------------------------------------

    def forward_classify(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Class logits from the pooled ``[CLS]`` representation."""
        final, _ = self.encoder.forward(ids, mask)
        self._hidden_shape = final.shape
        pooled_pre = self.pooler.forward(final[:, 0, :])
        pooled = np.tanh(pooled_pre)
        self._cls_cache = pooled
        return self.classifier.forward(pooled)

    def backward_classify(self, grad_logits: np.ndarray) -> None:
        if self._cls_cache is None or self._hidden_shape is None:
            raise RuntimeError("backward_classify called before forward_classify")
        grad_pooled = self.classifier.backward(grad_logits)
        grad_pre = grad_pooled * (1.0 - self._cls_cache**2)  # tanh'
        grad_cls = self.pooler.backward(grad_pre)
        grad_hidden = np.zeros(self._hidden_shape)
        grad_hidden[:, 0, :] = grad_cls
        self.encoder.backward(grad_hidden)

    # -- feature extraction ------------------------------------------------------

    def hidden_layers(self, ids: np.ndarray, mask: np.ndarray) -> List[np.ndarray]:
        """All per-block hidden states (used for last-4-layer embeddings)."""
        _, layers = self.encoder.forward(ids, mask)
        return layers

    def cls_embedding(self, words: Sequence[str], n_last_layers: int = 4) -> np.ndarray:
        """Sum of the ``[CLS]`` vectors over the last ``n_last_layers`` blocks.

        This is the paper's PubmedBERT entity representation (Section 2.3).
        """
        ids = self.tokenizer.encode(words, max_len=self.config.max_len)
        batch_ids, batch_mask = self.pad_batch([ids])
        was_training = self.training
        self.set_training(False)
        layers = self.hidden_layers(batch_ids, batch_mask)
        self.set_training(was_training)
        take = min(n_last_layers, len(layers))
        return sum(layer[0, 0, :] for layer in layers[-take:])


__all__ = ["BertConfig", "MiniBert"]
