"""The mini-BERT model: encoder + MLM head + classification head.

Mirrors the structure of BERT-style encoders: a bidirectional transformer
over WordPiece ids with an MLM head for pretraining and a tanh pooler +
softmax classifier for fine-tuning (paper Section 2.5: "a feed-forward
neural network [...] passed through a softmax layer").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bert.wordpiece import WordPieceTokenizer
from repro.nn.layers import Linear, Module
from repro.nn.transformer import TransformerConfig, TransformerEncoder
from repro.utils.rng import stable_hash


@dataclass(frozen=True)
class BertConfig:
    """Mini-BERT shape.  ``n_layers=4`` lets the contextual-embedding model
    sum the last four hidden layers as PubmedBERT embeddings do."""

    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 4
    d_ff: int = 128
    max_len: int = 64
    dropout: float = 0.1
    n_classes: int = 2
    seed: int = 0

    def transformer_config(self, vocab_size: int) -> TransformerConfig:
        return TransformerConfig(
            vocab_size=vocab_size,
            d_model=self.d_model,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            d_ff=self.d_ff,
            max_len=self.max_len,
            dropout=self.dropout,
            seed=self.seed,
        )


def pad_all(
    sequences: Sequence[Sequence[int]], pad_id: int, max_len: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad every id sequence into one ``(n, width)`` rectangle.

    Returns ``(ids, mask, lengths)`` where ``width`` is the longest (clipped)
    sequence.  Training loops build this once and slice per-batch row/column
    windows out of it, instead of re-padding Python lists every batch; a
    batch sliced to its own max length is identical to what
    :meth:`MiniBert.pad_batch` would have produced for the same rows.
    """
    if not sequences:
        raise ValueError("cannot pad an empty batch")
    lengths = np.minimum(
        np.fromiter((len(s) for s in sequences), dtype=np.int64, count=len(sequences)),
        max_len,
    )
    width = int(lengths.max())
    ids = np.full((len(sequences), width), pad_id, dtype=np.int64)
    inside = np.arange(width)[None, :] < lengths[:, None]
    ids[inside] = np.fromiter(
        (piece for s in sequences for piece in list(s)[:max_len]),
        dtype=np.int64,
        count=int(lengths.sum()),
    )
    return ids, inside.astype(np.float64), lengths


class MiniBert(Module):
    """Encoder with MLM and classification heads sharing one body."""

    def __init__(self, tokenizer: WordPieceTokenizer, config: Optional[BertConfig] = None):
        super().__init__()
        self.config = config or BertConfig()
        self.tokenizer = tokenizer
        self.encoder = TransformerEncoder(
            self.config.transformer_config(len(tokenizer))
        )
        seed = stable_hash(self.config.seed, "heads")
        self.mlm_head = Linear(
            self.config.d_model, len(tokenizer), seed=seed, name="mlm_head"
        )
        self.pooler = Linear(
            self.config.d_model, self.config.d_model, seed=seed, name="pooler"
        )
        self.classifier = Linear(
            self.config.d_model, self.config.n_classes, seed=seed, name="classifier"
        )
        self._cls_cache = None
        self._hidden_shape: Optional[Tuple[int, ...]] = None
        self._mlm_positions: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- batching ----------------------------------------------------------

    def pad_batch(
        self, sequences: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pad id sequences to a rectangle; returns ``(ids, mask)``."""
        ids, mask, _ = pad_all(sequences, self.tokenizer.pad_id, self.config.max_len)
        return ids, mask

    # -- MLM path ------------------------------------------------------------

    def forward_mlm(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Vocabulary logits for every position: ``(batch, seq, vocab)``."""
        final, _ = self.encoder.forward(ids, mask)
        self._hidden_shape = final.shape
        self._mlm_positions = None
        return self.mlm_head.forward(final)

    def forward_mlm_at(
        self, ids: np.ndarray, mask: np.ndarray, positions: Tuple[np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Vocabulary logits only at ``positions`` (``(rows, cols)`` arrays).

        MLM loss touches ~15% of positions; projecting just those through
        the vocabulary head computes the identical loss and gradients (the
        other positions contribute zero to both) at a fraction of the cost.
        The encoder still sees the full batch, so dropout draws are
        unchanged relative to :meth:`forward_mlm`.
        """
        final, _ = self.encoder.forward(ids, mask)
        self._hidden_shape = final.shape
        self._mlm_positions = positions
        return self.mlm_head.forward(final[positions])

    def backward_mlm(self, grad_logits: np.ndarray) -> None:
        grad_selected = self.mlm_head.backward(grad_logits)
        if self._mlm_positions is None:
            self.encoder.backward(grad_selected)
            return
        grad_hidden = np.zeros(self._hidden_shape)
        grad_hidden[self._mlm_positions] = grad_selected
        self.encoder.backward(grad_hidden)

    # -- classification path ---------------------------------------------------

    def forward_classify(self, ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Class logits from the pooled ``[CLS]`` representation."""
        final, _ = self.encoder.forward(ids, mask)
        self._hidden_shape = final.shape
        pooled_pre = self.pooler.forward(final[:, 0, :])
        pooled = np.tanh(pooled_pre)
        self._cls_cache = pooled
        return self.classifier.forward(pooled)

    def backward_classify(self, grad_logits: np.ndarray) -> None:
        if self._cls_cache is None or self._hidden_shape is None:
            raise RuntimeError("backward_classify called before forward_classify")
        grad_pooled = self.classifier.backward(grad_logits)
        grad_pre = grad_pooled * (1.0 - self._cls_cache**2)  # tanh'
        grad_cls = self.pooler.backward(grad_pre)
        grad_hidden = np.zeros(self._hidden_shape)
        grad_hidden[:, 0, :] = grad_cls
        self.encoder.backward(grad_hidden)

    # -- feature extraction ------------------------------------------------------

    def hidden_layers(self, ids: np.ndarray, mask: np.ndarray) -> List[np.ndarray]:
        """All per-block hidden states (used for last-4-layer embeddings)."""
        _, layers = self.encoder.forward(ids, mask)
        return layers

    def cls_embedding(self, words: Sequence[str], n_last_layers: int = 4) -> np.ndarray:
        """Sum of the ``[CLS]`` vectors over the last ``n_last_layers`` blocks.

        This is the paper's PubmedBERT entity representation (Section 2.3).
        """
        ids = self.tokenizer.encode(words, max_len=self.config.max_len)
        batch_ids, batch_mask = self.pad_batch([ids])
        was_training = self.training
        self.set_training(False)
        layers = self.hidden_layers(batch_ids, batch_mask)
        self.set_training(was_training)
        take = min(n_last_layers, len(layers))
        return sum(layer[0, 0, :] for layer in layers[-take:])


__all__ = ["BertConfig", "MiniBert", "pad_all"]
