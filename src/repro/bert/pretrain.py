"""Masked-language-model pretraining (BERT's self-supervision).

PubmedBERT was pretrained from scratch on the PubMed corpus; here the
mini-BERT is pretrained on the synthetic chemistry corpus with standard MLM
dynamics: 15% of positions are selected, of which 80% become ``[MASK]``, 10%
a random piece and 10% stay unchanged; the model predicts the original piece
at the selected positions only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bert.model import BertConfig, MiniBert, pad_all
from repro.bert.wordpiece import WordPieceTokenizer
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam, clip_gradients
from repro.obs.progress import StageProgress, emit
from repro.obs.trace import span
from repro.utils.rng import SeedLike, derive_rng

_IGNORE = -100  # label value for positions that carry no MLM loss


@dataclass(frozen=True)
class PretrainConfig:
    """MLM pretraining hyperparameters."""

    epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1e-3
    mask_probability: float = 0.15
    max_grad_norm: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 < self.mask_probability < 1.0:
            raise ValueError("mask_probability must be in (0, 1)")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


def _apply_masking(
    ids: np.ndarray,
    mask: np.ndarray,
    tokenizer: WordPieceTokenizer,
    mask_probability: float,
    rng: np.random.Generator,
    maskable: Optional[np.ndarray] = None,
):
    """BERT's 80/10/10 masking.  Returns ``(masked_ids, labels)``.

    ``maskable`` (real, non-special positions) may be precomputed once for
    the whole corpus and sliced per batch; recomputing it here draws the
    same RNG stream either way, so both call styles produce identical
    maskings.
    """
    labels = np.full(ids.shape, _IGNORE, dtype=np.int64)
    masked = ids.copy()
    if maskable is None:
        maskable = (mask > 0) & ~np.isin(ids, tokenizer.special_ids())
    selected = maskable & (rng.random(ids.shape) < mask_probability)
    labels[selected] = ids[selected]

    action = rng.random(ids.shape)
    to_mask = selected & (action < 0.8)
    to_random = selected & (action >= 0.8) & (action < 0.9)
    masked[to_mask] = tokenizer.mask_id
    n_random = int(to_random.sum())
    if n_random:
        masked[to_random] = rng.integers(
            len(tokenizer.special_ids()), len(tokenizer), size=n_random
        )
    return masked, labels


def pretrain_mlm(
    sentences: Sequence[Sequence[str]],
    tokenizer: WordPieceTokenizer,
    bert_config: Optional[BertConfig] = None,
    config: Optional[PretrainConfig] = None,
) -> MiniBert:
    """Pretrain a :class:`MiniBert` on tokenised sentences with MLM.

    Returns the pretrained model (in eval mode).  The per-epoch mean loss is
    recorded on the returned model as ``model.pretrain_losses`` so callers
    and tests can verify the loss decreased.
    """
    config = config or PretrainConfig()
    model = MiniBert(tokenizer, bert_config)
    rng = derive_rng(config.seed, "mlm-pretrain")
    parameters = model.parameters()  # hoisted: traversal is per-call work
    optimizer = Adam(parameters, lr=config.learning_rate)

    encoded = [
        tokenizer.encode(sentence, max_len=model.config.max_len)
        for sentence in sentences
        if sentence
    ]
    encoded = [ids for ids in encoded if len(ids) > 2]
    if not encoded:
        raise ValueError("no usable sentences for pretraining")

    # Pad the whole corpus once; every batch is a row window sliced to its
    # own max length, which matches what per-batch pad_batch produced (and
    # therefore keeps the masking RNG draw shapes, hence the stream, intact).
    all_ids, all_mask, lengths = pad_all(
        encoded, tokenizer.pad_id, model.config.max_len
    )
    all_maskable = (all_mask > 0) & ~np.isin(all_ids, tokenizer.special_ids())

    losses: List[float] = []
    model.set_training(True)
    with span(
        "bert.pretrain", epochs=config.epochs, sentences=len(encoded)
    ) as sp, StageProgress("bert.pretrain", unit="steps") as progress:
        for epoch in range(config.epochs):
            order = rng.permutation(len(encoded))
            epoch_losses: List[float] = []
            for start in range(0, len(encoded), config.batch_size):
                rows = order[start : start + config.batch_size]
                width = int(lengths[rows].max())
                ids = all_ids[rows, :width]
                mask = all_mask[rows, :width]
                masked_ids, labels = _apply_masking(
                    ids, mask, tokenizer, config.mask_probability, rng,
                    maskable=all_maskable[rows, :width],
                )
                # Only ~15% of positions carry MLM loss; push just those
                # through the vocabulary head.  Loss and gradients match the
                # dense forward_mlm + ignore_index path exactly (row-major
                # gather order equals the flat active order), at a fraction
                # of the vocab-projection cost.
                positions = np.nonzero(labels != _IGNORE)
                logits = model.forward_mlm_at(masked_ids, mask, positions)
                sp.incr("steps")
                progress.advance(1)
                if positions[0].size == 0:
                    continue  # no position was selected in this batch
                loss, grad = softmax_cross_entropy(logits, labels[positions])
                for parameter in parameters:
                    parameter.zero_grad()
                model.backward_mlm(grad)
                clip_gradients(parameters, config.max_grad_norm)
                optimizer.step()
                epoch_losses.append(loss)
            losses.append(
                float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            )
            emit("bert.pretrain", epoch=epoch, loss=losses[-1])
        if losses:
            sp.gauge("final_loss", losses[-1])

    model.set_training(False)
    model.pretrain_losses = losses
    return model


__all__ = ["PretrainConfig", "pretrain_mlm"]
