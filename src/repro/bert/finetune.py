"""Fine-tuning the mini-BERT for triple classification (paper Section 2.5).

Triples are rendered as ``[CLS] subject [SEP] relation [SEP] object [SEP]``
WordPiece sequences; the pooled ``[CLS]`` representation feeds a softmax
classifier trained with cross-entropy and Adam (the paper uses lr 1e-4,
3 epochs).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bert.model import MiniBert, pad_all
from repro.core.triples import LabeledTriple
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam, clip_gradients
from repro.obs.progress import StageProgress, emit
from repro.obs.trace import span
from repro.text.tokenizer import ChemTokenizer
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class FineTuneConfig:
    """Fine-tuning hyperparameters (paper Section 3.4)."""

    epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1e-4
    max_grad_norm: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


_TOKENIZER = ChemTokenizer()


def triple_to_words(triple: LabeledTriple) -> List[str]:
    """Word sequence for one triple, with ``[SEP]`` between components.

    Components are tokenised with the chemical tokenizer so the words match
    the distribution the WordPiece vocabulary was trained on (hyphenated
    IUPAC names would otherwise fall through to ``[UNK]``).
    """
    words: List[str] = []
    words.extend(_TOKENIZER(triple.subject_name) or [triple.subject_name.lower()])
    words.append("[SEP]")
    words.extend(_TOKENIZER(triple.relation.label) or [triple.relation.name])
    words.append("[SEP]")
    words.extend(_TOKENIZER(triple.object_name) or [triple.object_name.lower()])
    return words


class FineTunedClassifier:
    """A fine-tuned mini-BERT exposing predict / predict_proba over triples."""

    def __init__(self, model: MiniBert):
        self.model = model
        self.history: List[dict] = []

    def _encode(self, triples: Sequence[LabeledTriple]) -> List[List[int]]:
        tokenizer = self.model.tokenizer
        max_len = self.model.config.max_len
        sequences = []
        for triple in triples:
            words = triple_to_words(triple)
            # encode word-by-word so the literal "[SEP]" words map to the
            # special id rather than being WordPiece-split.
            ids = [tokenizer.cls_id]
            for word in words:
                if word == "[SEP]":
                    ids.append(tokenizer.sep_id)
                else:
                    ids.extend(tokenizer.encode_word(word))
            ids.append(tokenizer.sep_id)
            if len(ids) > max_len:
                ids = ids[: max_len - 1] + [tokenizer.sep_id]
            sequences.append(ids)
        return sequences

    def predict_proba(
        self, triples: Sequence[LabeledTriple], batch_size: int = 64
    ) -> np.ndarray:
        """Positive-class probability for each triple."""
        if not triples:
            raise ValueError("no triples to classify")
        sequences = self._encode(triples)
        all_ids, all_mask, lengths = pad_all(
            sequences, self.model.tokenizer.pad_id, self.model.config.max_len
        )
        self.model.set_training(False)
        probs: List[np.ndarray] = []
        for start in range(0, len(sequences), batch_size):
            stop = start + batch_size
            width = int(lengths[start:stop].max())
            ids = all_ids[start:stop, :width]
            mask = all_mask[start:stop, :width]
            logits = self.model.forward_classify(ids, mask)
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            probs.append((exp / exp.sum(axis=1, keepdims=True))[:, 1])
        return np.concatenate(probs)

    def predict(self, triples: Sequence[LabeledTriple]) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(triples) >= 0.5).astype(np.int64)


def fine_tune(
    pretrained: MiniBert,
    train_triples: Sequence[LabeledTriple],
    config: Optional[FineTuneConfig] = None,
    validation_triples: Optional[Sequence[LabeledTriple]] = None,
) -> FineTunedClassifier:
    """Fine-tune a (copy of a) pretrained mini-BERT on labelled triples.

    The pretrained model is deep-copied so one pretraining run can seed all
    three tasks, as in the paper.  Per-epoch train loss (and validation
    accuracy when ``validation_triples`` is given) is stored in
    ``classifier.history``.
    """
    config = config or FineTuneConfig()
    if not train_triples:
        raise ValueError("training set is empty")
    model = copy.deepcopy(pretrained)
    classifier = FineTunedClassifier(model)
    rng = derive_rng(config.seed, "fine-tune")
    parameters = model.parameters()  # hoisted: traversal is per-call work
    optimizer = Adam(parameters, lr=config.learning_rate)

    sequences = classifier._encode(train_triples)
    labels = np.array([t.label for t in train_triples], dtype=np.int64)
    # Pad once; batches are row windows sliced to their own max length,
    # matching the rectangles per-batch pad_batch used to build.
    all_ids, all_mask, lengths = pad_all(
        sequences, model.tokenizer.pad_id, model.config.max_len
    )

    with span(
        "bert.finetune", epochs=config.epochs, triples=len(train_triples)
    ) as sp, StageProgress("bert.finetune", unit="steps") as progress:
        for epoch in range(config.epochs):
            model.set_training(True)
            order = rng.permutation(len(sequences))
            epoch_losses: List[float] = []
            for start in range(0, len(sequences), config.batch_size):
                chosen = order[start : start + config.batch_size]
                width = int(lengths[chosen].max())
                ids = all_ids[chosen, :width]
                mask = all_mask[chosen, :width]
                logits = model.forward_classify(ids, mask)
                loss, grad = softmax_cross_entropy(logits, labels[chosen])
                for parameter in parameters:
                    parameter.zero_grad()
                model.backward_classify(grad)
                clip_gradients(parameters, config.max_grad_norm)
                optimizer.step()
                epoch_losses.append(loss)
                sp.incr("steps")
                progress.advance(1)
            record = {"epoch": epoch, "train_loss": float(np.mean(epoch_losses))}
            if validation_triples:
                predictions = classifier.predict(validation_triples)
                gold = np.array([t.label for t in validation_triples])
                record["validation_accuracy"] = float(np.mean(predictions == gold))
            classifier.history.append(record)
            emit("bert.finetune", **record)
        if classifier.history:
            sp.gauge("final_train_loss", classifier.history[-1]["train_loss"])

    model.set_training(False)
    return classifier


__all__ = ["FineTuneConfig", "FineTunedClassifier", "fine_tune", "triple_to_words"]
