"""WordPiece tokenisation: BPE-style vocabulary training + greedy encoding.

PubmedBERT ships a 28,895-piece WordPiece vocabulary trained on PubMed
(Table A4).  This module trains an equivalent (smaller) vocabulary on the
synthetic corpus: pieces start as characters, the most frequent adjacent pair
is merged repeatedly, and continuation pieces carry the ``##`` prefix.
Encoding is greedy longest-match-first with ``[UNK]`` fallback, exactly as in
the reference implementation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS: Tuple[str, ...] = (
    PAD_TOKEN,
    UNK_TOKEN,
    CLS_TOKEN,
    SEP_TOKEN,
    MASK_TOKEN,
)


class WordPieceTokenizer:
    """A trained WordPiece vocabulary with greedy sub-word encoding."""

    def __init__(self, pieces: Sequence[str]):
        for special in SPECIAL_TOKENS:
            if special not in pieces:
                raise ValueError(f"vocabulary missing special token {special}")
        self._pieces: List[str] = list(pieces)
        self._ids: Dict[str, int] = {p: i for i, p in enumerate(self._pieces)}
        if len(self._ids) != len(self._pieces):
            raise ValueError("vocabulary contains duplicate pieces")
        # Greedy encoding is deterministic per word; corpora repeat words
        # heavily, so memoising keeps encode() off the pretraining profile.
        self._word_cache: Dict[str, List[int]] = {}

    # -- vocabulary access ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._pieces)

    def __contains__(self, piece: str) -> bool:
        return piece in self._ids

    def id_of(self, piece: str) -> int:
        try:
            return self._ids[piece]
        except KeyError:
            raise KeyError(f"piece {piece!r} not in WordPiece vocabulary") from None

    def piece_of(self, piece_id: int) -> str:
        return self._pieces[piece_id]

    @property
    def pad_id(self) -> int:
        return self._ids[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._ids[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._ids[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._ids[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._ids[MASK_TOKEN]

    def special_ids(self) -> List[int]:
        return [self._ids[t] for t in SPECIAL_TOKENS]

    # -- encoding --------------------------------------------------------------

    def encode_word(self, word: str) -> List[int]:
        """Greedy longest-match WordPiece encoding of one word."""
        if not word:
            return []
        cached = self._word_cache.get(word)
        if cached is not None:
            return list(cached)
        pieces: List[int] = []
        start = 0
        while start < len(word):
            end = len(word)
            found = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self._ids:
                    found = self._ids[candidate]
                    break
                end -= 1
            if found is None:
                pieces = [self.unk_id]
                break
            pieces.append(found)
            start = end
        self._word_cache[word] = pieces
        return list(pieces)

    def encode(self, words: Sequence[str], add_special: bool = True,
               max_len: Optional[int] = None) -> List[int]:
        """Encode a word sequence into piece ids, optionally adding
        ``[CLS]`` / ``[SEP]`` and truncating to ``max_len``."""
        ids: List[int] = []
        for word in words:
            ids.extend(self.encode_word(word))
        if add_special:
            ids = [self.cls_id] + ids + [self.sep_id]
        if max_len is not None and len(ids) > max_len:
            ids = ids[: max_len - 1] + [self.sep_id] if add_special else ids[:max_len]
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        """Inverse of :meth:`encode` (specials dropped, ``##`` joined)."""
        words: List[str] = []
        for piece_id in ids:
            piece = self._pieces[piece_id]
            if piece in SPECIAL_TOKENS:
                continue
            if piece.startswith("##") and words:
                words[-1] += piece[2:]
            else:
                words.append(piece)
        return " ".join(words)


def _word_to_symbols(word: str) -> Tuple[str, ...]:
    return tuple([word[0]] + ["##" + c for c in word[1:]])


def train_wordpiece(
    sentences: Iterable[Sequence[str]],
    vocab_size: int = 1_000,
    min_pair_frequency: int = 2,
) -> WordPieceTokenizer:
    """Train a WordPiece vocabulary by iterative pair merging.

    ``vocab_size`` bounds the total vocabulary including the five special
    tokens and the initial character pieces.
    """
    if vocab_size < len(SPECIAL_TOKENS) + 10:
        raise ValueError("vocab_size too small to be useful")

    word_freq: Counter = Counter()
    for sentence in sentences:
        word_freq.update(sentence)
    if not word_freq:
        raise ValueError("corpus is empty")

    segmentations: Dict[str, Tuple[str, ...]] = {
        word: _word_to_symbols(word) for word in word_freq
    }
    vocab = set(SPECIAL_TOKENS)
    for symbols in segmentations.values():
        vocab.update(symbols)

    def merged_piece(a: str, b: str) -> str:
        return a + (b[2:] if b.startswith("##") else b)

    while len(vocab) < vocab_size:
        pair_freq: Counter = Counter()
        for word, symbols in segmentations.items():
            freq = word_freq[word]
            for a, b in zip(symbols, symbols[1:]):
                pair_freq[(a, b)] += freq
        if not pair_freq:
            break
        (best_a, best_b), best_count = max(
            pair_freq.items(), key=lambda kv: (kv[1], kv[0])
        )
        if best_count < min_pair_frequency:
            break
        new_piece = merged_piece(best_a, best_b)
        vocab.add(new_piece)
        for word, symbols in segmentations.items():
            if best_a not in symbols:
                continue
            merged: List[str] = []
            index = 0
            while index < len(symbols):
                if (
                    index + 1 < len(symbols)
                    and symbols[index] == best_a
                    and symbols[index + 1] == best_b
                ):
                    merged.append(new_piece)
                    index += 2
                else:
                    merged.append(symbols[index])
                    index += 1
            segmentations[word] = tuple(merged)

    ordered = list(SPECIAL_TOKENS) + sorted(vocab - set(SPECIAL_TOKENS))
    return WordPieceTokenizer(ordered)


__all__ = [
    "WordPieceTokenizer",
    "train_wordpiece",
    "SPECIAL_TOKENS",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "CLS_TOKEN",
    "SEP_TOKEN",
    "MASK_TOKEN",
]
