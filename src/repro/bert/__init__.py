"""Mini-BERT: the PubmedBERT stand-in for the fine-tuning paradigm.

A from-scratch bidirectional transformer encoder with a WordPiece tokenizer,
masked-language-model pretraining on the synthetic chemistry corpus, and a
sequence-classification fine-tuning head — the full PubmedBERT workflow of
paper Sections 2.3 and 2.5 at laptop scale.
"""

from repro.bert.wordpiece import WordPieceTokenizer, train_wordpiece
from repro.bert.model import BertConfig, MiniBert
from repro.bert.pretrain import PretrainConfig, pretrain_mlm
from repro.bert.finetune import FineTuneConfig, FineTunedClassifier, fine_tune

__all__ = [
    "WordPieceTokenizer",
    "train_wordpiece",
    "BertConfig",
    "MiniBert",
    "PretrainConfig",
    "pretrain_mlm",
    "FineTuneConfig",
    "FineTunedClassifier",
    "fine_tune",
]
