"""The curation service: warm backends, shedding, and request accounting.

:class:`CurationService` is the transport-free core of ``repro serve``: it
owns one :class:`Backend` per paradigm adapter — curator + micro-batcher +
circuit breaker — and exposes exactly what the HTTP layer needs:
``classify``, ``healthz_payload`` and ``statz_payload``.  Tests exercise the
full request path (batching, breaker trips, queue-full shedding) against
this class directly; the HTTP server in :mod:`repro.serve.server` is a thin
adapter over it.

Load-shedding contract: when a backend cannot take a request — its breaker
is open after consecutive handler failures, or its bounded queue is full —
``classify`` raises :class:`ShedError` carrying the advisory
``retry_after_s`` that the HTTP layer turns into a 503 + ``Retry-After``
header.  Shed requests are counted (``serve.shed``) so a saturated run is
visible in manifests, never silent.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.triples import LabeledTriple
from repro.obs.trace import get_tracer, span
from repro.perf.harness import percentile
from repro.resilience.retry import CircuitBreaker, CircuitOpenError, Clock
from repro.serve.batcher import MicroBatcher, QueueFullError
from repro.serve.curator import Curator

#: How many recent request latencies the stats window keeps.
LATENCY_WINDOW = 4096

#: Upper bound on how long one request waits for its batch to come back.
DEFAULT_REQUEST_TIMEOUT_S = 30.0


class ShedError(RuntimeError):
    """The request was refused to protect the backend (HTTP 503)."""

    retryable = False

    def __init__(self, message: str, retry_after_s: float, reason: str):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


class Backend:
    """One served paradigm: curator + micro-batcher + circuit breaker."""

    def __init__(
        self,
        curator: Curator,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        max_queue: int = 256,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock: Optional[Clock] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    ):
        self.curator = curator
        self.name = curator.name
        self.request_timeout_s = request_timeout_s
        self.max_wait_s = max_wait_s
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            clock=clock,
        )
        self.batcher = MicroBatcher(
            curator.classify_batch,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            max_queue=max_queue,
            clock=clock,
            name=self.name,
        )

    def start(self) -> "Backend":
        self.batcher.start()
        return self

    def stop(self) -> None:
        self.batcher.stop()

    def classify(
        self, triples: Sequence[LabeledTriple]
    ) -> Tuple[List[Optional[int]], int]:
        """Labels for one request plus the coalesced batch size it rode in.

        Raises :class:`ShedError` when the breaker is open or the queue is
        full, and re-raises the handler's failure (after feeding the
        breaker) when the batch itself failed.
        """
        try:
            self.breaker.before_call()
        except CircuitOpenError as error:
            raise ShedError(
                str(error), retry_after_s=self.breaker.reset_timeout,
                reason="breaker-open",
            ) from None
        try:
            item = self.batcher.submit(triples)
        except QueueFullError as error:
            # A full queue usually clears within a couple of batch windows.
            raise ShedError(
                str(error),
                retry_after_s=max(2 * self.max_wait_s, 0.05),
                reason="queue-full",
            ) from None
        if not item.wait(self.request_timeout_s):
            self.breaker.record_failure()
            raise TimeoutError(
                f"backend {self.name!r} did not answer within "
                f"{self.request_timeout_s}s"
            )
        if item.error is not None:
            self.breaker.record_failure()
            raise item.error
        self.breaker.record_success()
        return list(item.result or []), int(item.batch_size or len(triples))


class ServeStats:
    """Thread-safe request counters + a sliding latency window."""

    def __init__(self, window: int = LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._requests = 0
        self._ok = 0
        self._shed = 0
        self._errors = 0
        self._triples = 0
        self._latencies = deque(maxlen=window)

    def record(self, outcome: str, triples: int = 0, latency_s: float = 0.0):
        with self._lock:
            self._requests += 1
            self._triples += triples
            if outcome == "ok":
                self._ok += 1
                self._latencies.append(latency_s)
            elif outcome == "shed":
                self._shed += 1
            else:
                self._errors += 1

    def snapshot(self) -> dict:
        with self._lock:
            latencies = list(self._latencies)
            payload = {
                "requests": self._requests,
                "ok": self._ok,
                "shed": self._shed,
                "errors": self._errors,
                "triples": self._triples,
            }
        payload["shed_rate"] = (
            round(payload["shed"] / payload["requests"], 4)
            if payload["requests"]
            else 0.0
        )
        payload["latency_p50_ms"] = (
            round(percentile(latencies, 50.0) * 1000, 3) if latencies else None
        )
        payload["latency_p99_ms"] = (
            round(percentile(latencies, 99.0) * 1000, 3) if latencies else None
        )
        return payload


class CurationService:
    """The warm pool of backends behind ``/v1/classify``."""

    def __init__(self, pool: Dict[str, Backend]):
        if not pool:
            raise ValueError("service needs at least one backend")
        self.pool = dict(pool)
        self.default_backend = next(iter(self.pool))
        self.stats = ServeStats()
        self._started = False

    @classmethod
    def from_curators(
        cls, curators: Dict[str, Curator], **backend_kwargs
    ) -> "CurationService":
        return cls(
            {name: Backend(curator, **backend_kwargs)
             for name, curator in curators.items()}
        )

    def start(self) -> "CurationService":
        for backend in self.pool.values():
            backend.start()
        self._started = True
        return self

    def stop(self) -> None:
        for backend in self.pool.values():
            backend.stop()
        self._started = False

    def __enter__(self) -> "CurationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def classify(
        self, backend_name: Optional[str], triples: Sequence[LabeledTriple]
    ) -> Tuple[str, List[Optional[int]], int]:
        """Route one request; returns (backend, labels, coalesced size)."""
        name = backend_name or self.default_backend
        backend = self.pool.get(name)
        if backend is None:
            raise KeyError(
                f"unknown backend {name!r}; serving: {sorted(self.pool)}"
            )
        tracer = get_tracer()
        tracer.count("serve.requests")
        started = time.perf_counter()
        with span("serve.request", backend=name, triples=len(triples)):
            try:
                labels, batch_size = backend.classify(triples)
            except ShedError:
                tracer.count("serve.shed")
                self.stats.record("shed")
                raise
            except Exception:
                tracer.count("serve.request_errors")
                self.stats.record("error")
                raise
        self.stats.record(
            "ok", triples=len(triples), latency_s=time.perf_counter() - started
        )
        return name, labels, batch_size

    # -- introspection payloads ----------------------------------------------

    def healthz_payload(self) -> dict:
        return {
            "status": "ok" if self._started else "stopped",
            "backends": sorted(self.pool),
            "default_backend": self.default_backend,
        }

    def statz_payload(self) -> dict:
        return {
            "totals": self.stats.snapshot(),
            "backends": {
                name: {
                    "breaker": backend.breaker.state,
                    "batcher": backend.batcher.snapshot(),
                }
                for name, backend in sorted(self.pool.items())
            },
        }


__all__ = [
    "DEFAULT_REQUEST_TIMEOUT_S",
    "LATENCY_WINDOW",
    "ShedError",
    "Backend",
    "ServeStats",
    "CurationService",
]
