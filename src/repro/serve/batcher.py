"""Micro-batching: coalesce concurrent requests into one forward pass.

The supervised backends are vectorised — classifying 64 triples in one call
costs far less than 64 single-triple calls — but HTTP requests arrive one at
a time on independent threads.  The :class:`MicroBatcher` bridges the two: a
request thread :meth:`submit`\\ s its triples and blocks on an event; a
single worker thread coalesces everything waiting into one
``handler(triples)`` call and fans the labels back out per request.

Two knobs govern the trade-off, both expressed against an injectable
:class:`~repro.resilience.retry.Clock` so tests drive the policy on a fake
clock deterministically:

* ``max_batch`` — flush as soon as this many *triples* are waiting (the
  vectorisation sweet spot).
* ``max_wait_s`` — flush once the oldest waiting request has aged this much
  (the latency ceiling a lone request pays hoping for company).  ``0``
  disables coalescing: every request dispatches alone, immediately.

The queue is bounded: :meth:`submit` raises :class:`QueueFullError` instead
of queueing unboundedly, which the service layer converts into an explicit
503 + ``Retry-After`` (load-shedding, not collapse).

The batching *policy* is a pure, non-blocking function of (queue, clock) —
:meth:`poll` — and the worker loop is a thin blocking shell around it, so
the policy is testable without threads or sleeps.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.triples import LabeledTriple
from repro.obs.trace import get_tracer, span
from repro.resilience.retry import Clock, SYSTEM_CLOCK

#: Labels produced for one request's triples (None = backend abstained).
BatchHandler = Callable[[Sequence[LabeledTriple]], Sequence[Optional[int]]]


class QueueFullError(RuntimeError):
    """The batcher's bounded queue is full: the request must be shed."""

    #: Shedding is load-dependent; immediate retries only add load.
    retryable = False


class BatchItem:
    """One submitted request: its triples, and a slot for the outcome."""

    __slots__ = ("triples", "enqueued_at", "result", "error", "batch_size", "_done")

    def __init__(self, triples: Tuple[LabeledTriple, ...], enqueued_at: float):
        self.triples = triples
        self.enqueued_at = enqueued_at
        self.result: Optional[List[Optional[int]]] = None
        self.error: Optional[BaseException] = None
        #: Total triples in the coalesced batch this item rode in.
        self.batch_size: Optional[int] = None
        self._done = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the batch containing this item was dispatched."""
        return self._done.wait(timeout)

    def resolve(
        self,
        result: Optional[List[Optional[int]]],
        error: Optional[BaseException],
        batch_size: int,
    ) -> None:
        self.result = result
        self.error = error
        self.batch_size = batch_size
        self._done.set()


class MicroBatcher:
    """Bounded queue + coalescing policy + optional worker thread."""

    def __init__(
        self,
        handler: BatchHandler,
        max_batch: int = 32,
        max_wait_s: float = 0.005,
        max_queue: int = 256,
        clock: Optional[Clock] = None,
        name: str = "batcher",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.clock = clock or SYSTEM_CLOCK
        self.name = name
        self._lock = threading.Condition()
        self._pending: List[BatchItem] = []
        self._stopped = False
        self._worker: Optional[threading.Thread] = None
        self._batches = 0
        self._items = 0
        self._triples = 0
        self._max_batch_seen = 0

    # -- submission -----------------------------------------------------------

    def submit(self, triples: Sequence[LabeledTriple]) -> BatchItem:
        """Enqueue one request; raises :class:`QueueFullError` when saturated."""
        item = BatchItem(tuple(triples), self.clock.monotonic())
        with self._lock:
            if self._stopped:
                raise RuntimeError(f"batcher {self.name!r} is stopped")
            if len(self._pending) >= self.max_queue:
                raise QueueFullError(
                    f"batcher {self.name!r} queue is full "
                    f"({self.max_queue} requests waiting)"
                )
            self._pending.append(item)
            self._lock.notify()
        return item

    # -- the coalescing policy (non-blocking, fake-clock friendly) ------------

    def poll(self) -> List[BatchItem]:
        """Items ready to dispatch now, or ``[]`` if the policy says wait.

        Ready when coalescing is disabled (``max_wait_s == 0``), when at
        least ``max_batch`` triples are waiting, or when the oldest request
        has waited ``max_wait_s``.  Takes whole requests up to the triple
        budget — but always at least one, so a single over-budget request
        still dispatches (alone).
        """
        with self._lock:
            return self._take_ready_locked()

    def flush(self) -> List[BatchItem]:
        """Unconditionally take everything waiting (shutdown drain)."""
        with self._lock:
            taken, self._pending = self._pending, []
        return taken

    def _take_ready_locked(self) -> List[BatchItem]:
        if not self._pending:
            return []
        waiting = sum(len(item.triples) for item in self._pending)
        oldest_age = self.clock.monotonic() - self._pending[0].enqueued_at
        ready = (
            self.max_wait_s == 0
            or waiting >= self.max_batch
            or oldest_age >= self.max_wait_s
        )
        if not ready:
            return []
        taken: List[BatchItem] = []
        budget = 0
        while self._pending:
            nxt = self._pending[0]
            if taken and budget + len(nxt.triples) > self.max_batch:
                break
            taken.append(self._pending.pop(0))
            budget += len(nxt.triples)
        return taken

    def _wait_budget_locked(self) -> Optional[float]:
        """Seconds the worker may sleep before the oldest request ages out."""
        if not self._pending:
            return None
        oldest_age = self.clock.monotonic() - self._pending[0].enqueued_at
        return max(0.0, self.max_wait_s - oldest_age)

    # -- dispatch -------------------------------------------------------------

    def dispatch(self, batch: List[BatchItem]) -> None:
        """Run the handler over a coalesced batch and fan results back out."""
        if not batch:
            return
        merged: List[LabeledTriple] = []
        for item in batch:
            merged.extend(item.triples)
        try:
            with span(
                "serve.batch",
                batcher=self.name,
                requests=len(batch),
                triples=len(merged),
            ):
                labels = list(self.handler(merged))
            if len(labels) != len(merged):
                raise RuntimeError(
                    f"handler returned {len(labels)} labels "
                    f"for {len(merged)} triples"
                )
        except Exception as error:
            get_tracer().count("serve.batch_errors")
            for item in batch:
                item.resolve(None, error, len(merged))
            return
        offset = 0
        for item in batch:
            item.resolve(
                labels[offset : offset + len(item.triples)], None, len(merged)
            )
            offset += len(item.triples)
        with self._lock:
            self._batches += 1
            self._items += len(batch)
            self._triples += len(merged)
            self._max_batch_seen = max(self._max_batch_seen, len(merged))

    # -- worker thread --------------------------------------------------------

    def run_forever(self) -> None:
        """Worker loop: sleep until work is ready, dispatch, repeat."""
        while True:
            with self._lock:
                if self._stopped:
                    batch, self._pending = self._pending, []
                else:
                    batch = self._take_ready_locked()
                    if not batch:
                        self._lock.wait(timeout=self._wait_budget_locked())
                        continue
            if batch:
                self.dispatch(batch)
            elif self._is_stopped():
                return

    def _is_stopped(self) -> bool:
        with self._lock:
            return self._stopped and not self._pending

    def start(self) -> "MicroBatcher":
        if self._worker is not None:
            raise RuntimeError(f"batcher {self.name!r} already started")
        self._worker = threading.Thread(
            target=self.run_forever, name=f"microbatcher-{self.name}", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain what is queued, join the worker."""
        with self._lock:
            self._stopped = True
            self._lock.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=timeout)
            self._worker = None

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            pending = len(self._pending)
            batches, items, triples = self._batches, self._items, self._triples
            max_seen = self._max_batch_seen
        return {
            "pending": pending,
            "batches": batches,
            "requests": items,
            "triples": triples,
            "batch_size_max": max_seen,
            "batch_size_mean": round(triples / batches, 3) if batches else 0.0,
        }


__all__ = ["BatchHandler", "QueueFullError", "BatchItem", "MicroBatcher"]
