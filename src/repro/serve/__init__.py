"""Curation-as-a-service: the online serving layer over trained paradigms.

The paper's paradigms answer "is this ChEBI triple plausible?" offline;
this package stands them up behind a stdlib HTTP API with the production
machinery real curation services need — micro-batching, circuit breakers,
bounded-queue load-shedding, and span/counter observability — all composed
from the platform's existing resilience, obs, and perf layers.

Modules: :mod:`schemas` (wire format), :mod:`curator` (batch-invariant
paradigm adapters), :mod:`batcher` (request coalescing), :mod:`service`
(backends + shedding + stats), :mod:`server` (HTTP transport),
:mod:`bench` (the ``repro bench serve`` traffic harness).
"""

from repro.serve.batcher import BatchItem, MicroBatcher, QueueFullError
from repro.serve.curator import (
    DEFAULT_BACKENDS,
    Curator,
    ICLCurator,
    ParadigmCurator,
    build_curator,
    build_pool,
)
from repro.serve.schemas import (
    SERVE_FORMAT,
    SchemaError,
    classify_response,
    parse_classify_request,
    parse_triple,
    render_json,
    triple_payload,
)
from repro.serve.server import CurationHTTPServer, start_server, stop_server
from repro.serve.service import Backend, CurationService, ServeStats, ShedError

__all__ = [
    "SERVE_FORMAT",
    "DEFAULT_BACKENDS",
    "SchemaError",
    "ShedError",
    "QueueFullError",
    "BatchItem",
    "MicroBatcher",
    "Curator",
    "ParadigmCurator",
    "ICLCurator",
    "build_curator",
    "build_pool",
    "Backend",
    "ServeStats",
    "CurationService",
    "CurationHTTPServer",
    "start_server",
    "stop_server",
    "parse_triple",
    "triple_payload",
    "parse_classify_request",
    "classify_response",
    "render_json",
]
