"""Request/response JSON schemas for the curation service.

The wire format is deliberately small and schema-versioned: every response
carries ``"format": "repro-serve-v1"`` so clients (and the golden round-trip
tests) can detect drift the same way the perf baselines and run manifests
do.  A classify request names a backend and carries either one ``triple`` or
a ``triples`` batch; a triple is the JSON rendering of
:class:`~repro.core.triples.LabeledTriple` minus the gold label::

    {"subject": "ammonium chloride", "relation": "has_role",
     "object": "ferroptosis inhibitor"}

Identifiers are optional — curation queries usually arrive as names — and
default to a deterministic ``req:<name>`` placeholder, so the same request
always parses to the same triple (and therefore the same content-addressed
behaviour downstream).

All serialisation goes through :func:`render_json` (``sort_keys=True``) so
responses are byte-stable for a given payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.triples import LabeledTriple
from repro.ontology.relations import relation_by_name

#: Format tag carried by every serve request/response document.
SERVE_FORMAT = "repro-serve-v1"

#: Hard cap on triples per request — larger batches must be split client-side
#: so one request cannot monopolise the micro-batcher.
MAX_TRIPLES_PER_REQUEST = 256


class SchemaError(ValueError):
    """A request or response document does not match the serve schema."""


def _require_str(obj: dict, key: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str) or not value.strip():
        raise SchemaError(f"triple field {key!r} must be a non-empty string")
    return value


def parse_triple(obj: object) -> LabeledTriple:
    """Parse one request triple into a :class:`LabeledTriple`.

    The gold label is unknown at request time; the placeholder ``label=0``
    is never read by ``classify`` paths.
    """
    if not isinstance(obj, dict):
        raise SchemaError(f"triple must be an object, got {type(obj).__name__}")
    subject = _require_str(obj, "subject")
    object_name = _require_str(obj, "object")
    relation_name = _require_str(obj, "relation")
    try:
        relation = relation_by_name(relation_name)
    except KeyError as error:
        raise SchemaError(str(error)) from None
    return LabeledTriple(
        subject_id=str(obj.get("subject_id") or f"req:{subject}"),
        subject_name=subject,
        relation=relation,
        object_id=str(obj.get("object_id") or f"req:{object_name}"),
        object_name=object_name,
        label=0,
    )


def triple_payload(triple: LabeledTriple) -> dict:
    """The JSON rendering of one triple (inverse of :func:`parse_triple`)."""
    return {
        "subject": triple.subject_name,
        "subject_id": triple.subject_id,
        "relation": triple.relation.name,
        "object": triple.object_name,
        "object_id": triple.object_id,
    }


@dataclass(frozen=True)
class ClassifyRequest:
    """A parsed ``POST /v1/classify`` body."""

    backend: Optional[str]
    triples: Tuple[LabeledTriple, ...]
    #: Whether the request used the batch (``triples``) or single (``triple``)
    #: spelling; responses mirror it so clients round-trip cleanly.
    batch: bool = True

    def to_payload(self) -> dict:
        payload: dict = {"format": SERVE_FORMAT}
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.batch:
            payload["triples"] = [triple_payload(t) for t in self.triples]
        else:
            payload["triple"] = triple_payload(self.triples[0])
        return payload


def parse_classify_request(body: object) -> ClassifyRequest:
    """Parse a classify request document (dict, str, or bytes)."""
    if isinstance(body, (bytes, bytearray)):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise SchemaError(f"request body is not UTF-8: {error}") from None
    if isinstance(body, str):
        try:
            body = json.loads(body)
        except json.JSONDecodeError as error:
            raise SchemaError(f"request body is not JSON: {error}") from None
    if not isinstance(body, dict):
        raise SchemaError("request body must be a JSON object")
    backend = body.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise SchemaError("'backend' must be a string when present")
    if ("triple" in body) == ("triples" in body):
        raise SchemaError("request must carry exactly one of 'triple'/'triples'")
    if "triple" in body:
        return ClassifyRequest(
            backend=backend, triples=(parse_triple(body["triple"]),), batch=False
        )
    raw = body["triples"]
    if not isinstance(raw, list) or not raw:
        raise SchemaError("'triples' must be a non-empty array")
    if len(raw) > MAX_TRIPLES_PER_REQUEST:
        raise SchemaError(
            f"'triples' carries {len(raw)} items; the per-request cap is "
            f"{MAX_TRIPLES_PER_REQUEST} — split the batch client-side"
        )
    return ClassifyRequest(
        backend=backend,
        triples=tuple(parse_triple(item) for item in raw),
        batch=True,
    )


def classify_response(
    backend: str,
    labels: Sequence[Optional[int]],
    batch: bool = True,
    batched_with: Optional[int] = None,
) -> dict:
    """The response document for one classify request.

    ``labels`` entries are 1 (plausible), 0 (not plausible) or ``None``
    (the backend abstained/could not classify — ICL only).
    ``batched_with`` reports how many requests the micro-batcher coalesced
    this one with (observability for clients; absent when unknown).
    """
    payload: dict = {
        "format": SERVE_FORMAT,
        "backend": backend,
        "n": len(labels),
    }
    if batch:
        payload["labels"] = [None if l is None else int(l) for l in labels]
    else:
        payload["label"] = None if labels[0] is None else int(labels[0])
    if batched_with is not None:
        payload["batched_with"] = int(batched_with)
    return payload


def error_response(status: int, error: str, retry_after_s: Optional[float] = None) -> dict:
    """The error document (400/404/503/...) with optional retry advice."""
    payload: dict = {"format": SERVE_FORMAT, "status": int(status), "error": error}
    if retry_after_s is not None:
        payload["retry_after_s"] = round(float(retry_after_s), 3)
    return payload


def render_json(payload: dict) -> str:
    """Canonical JSON rendering: sorted keys, stable separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


__all__ = [
    "SERVE_FORMAT",
    "MAX_TRIPLES_PER_REQUEST",
    "SchemaError",
    "parse_triple",
    "triple_payload",
    "ClassifyRequest",
    "parse_classify_request",
    "classify_response",
    "error_response",
    "render_json",
]
