"""Synthetic-traffic benchmark for the curation server (``repro bench serve``).

Hundreds of concurrent clients hammer an in-process HTTP server and the
harness records what production cares about: request latency (p50/p99),
throughput, and how much load was shed.  The traffic itself is fully
deterministic — client *c*'s request *r* draws its triples from the
candidate pool with ``derive_rng(seed, "serve-bench", c, r)`` — so the
label histogram across all successful requests is a pure function of the
workload, and the :class:`~repro.perf.harness.Benchmark` determinism
checksum doubles as an end-to-end batch-invariance proof: whatever order
the scheduler interleaves clients, however the micro-batcher coalesces
them, every wave must classify every triple identically.

Timing rides the existing perf protocol (warmup waves then timed waves) and
the resulting payload is a ``repro-bench-v1`` document with one extra
``serving`` section, persisted as ``BENCH_serve.json`` next to the other
committed baselines.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.retry import SYSTEM_CLOCK, Clock

from repro.core.experiment import Lab, LabConfig
from repro.core.triples import LabeledTriple
from repro.obs.trace import get_tracer
from repro.perf.harness import FULL, Benchmark, BenchResult, Protocol, percentile
from repro.perf.baseline import result_payload
from repro.serve.curator import build_pool
from repro.serve.schemas import render_json, triple_payload
from repro.serve.server import start_server
from repro.serve.service import CurationService
from repro.utils.rng import derive_rng

#: Area name: the baseline lands in ``BENCH_serve.json``.
SERVE_AREA = "serve"

#: Give up on a request after this many 503-shed attempts.
MAX_RETRIES = 8

#: Never sleep longer than this between shed retries (keeps waves bounded).
RETRY_AFTER_CAP_S = 0.1


def bench_lab_config(entities: int = 120, seed: int = 0) -> LabConfig:
    """The micro lab the bench trains its backends on.

    Mirrors the test suite's micro configuration: every substrate is small
    enough that a cold warm-up (ontology through trained models) stays in
    seconds, while the served models remain real trained artifacts.
    """
    return LabConfig(
        n_chemical_entities=entities,
        corpus_documents=12,
        corpus_sentences=6,
        wordpiece_vocab=200,
        bert_d_model=16,
        bert_layers=1,
        bert_heads=2,
        bert_d_ff=32,
        bert_max_len=24,
        pretrain_epochs=1,
        pretrain_sentences=60,
        embedding_dim=8,
        embedding_epochs=1,
        glove_epochs=1,
        max_train=120,
        max_test=40,
        rf_estimators=4,
        rf_max_depth=4,
        lstm_epochs=1,
        ft_epochs=1,
        seed=seed,
    )


@dataclass(frozen=True)
class ServeWorkload:
    """Shape of the synthetic traffic one wave drives."""

    clients: int = 200
    requests: int = 3
    batch: int = 4
    backend: str = "rf"
    task: int = 1
    entities: int = 120
    seed: int = 0
    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_size: int = 1024

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "batch": self.batch,
            "backend": self.backend,
            "task": self.task,
            "entities": self.entities,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "queue_size": self.queue_size,
        }


@dataclass
class _ClientOutcome:
    """What one synthetic client observed across its requests."""

    latencies_s: List[float] = field(default_factory=list)
    labels: List[Optional[int]] = field(default_factory=list)
    sheds: int = 0
    retries: int = 0
    failures: int = 0


def _client_requests(
    workload: ServeWorkload, candidates: Sequence[LabeledTriple], client: int
) -> List[List[LabeledTriple]]:
    """The deterministic request sequence for one client."""
    batches = []
    for request in range(workload.requests):
        rng = derive_rng(workload.seed, "serve-bench", client, request)
        indices = rng.integers(0, len(candidates), size=workload.batch)
        batches.append([candidates[int(i)] for i in indices])
    return batches


def _run_client(
    workload: ServeWorkload,
    candidates: Sequence[LabeledTriple],
    client: int,
    port: int,
    barrier: threading.Barrier,
    outcome: _ClientOutcome,
    clock: Clock,
) -> None:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        barrier.wait(timeout=60)
        for triples in _client_requests(workload, candidates, client):
            try:
                _run_request(workload, connection, triples, outcome, clock)
            except Exception:
                # A dead client must surface as an accounted failure, not a
                # silently shorter wave.
                get_tracer().count("serve.bench_client_errors")
                outcome.failures += 1
                return
    finally:
        connection.close()


def _run_request(
    workload: ServeWorkload,
    connection: http.client.HTTPConnection,
    triples: Sequence[LabeledTriple],
    outcome: _ClientOutcome,
    clock: Clock,
) -> None:
    """Send one request, retrying shed (503) responses with Retry-After.

    The shed-retry wait honours the server's ``Retry-After`` hint through
    the injected ``clock``, so tests drive the backoff with a virtual clock
    and the production path sleeps for real.  Every retried attempt is
    tallied in ``outcome.retries`` (reported, but outside the determinism
    checksum — retry counts depend on scheduler timing).
    """
    body = render_json(
        {
            "backend": workload.backend,
            "triples": [triple_payload(t) for t in triples],
        }
    ).encode("utf-8")
    for _ in range(MAX_RETRIES):
        started = time.perf_counter()
        connection.request(
            "POST",
            "/v1/classify",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        elapsed = time.perf_counter() - started
        if response.status == 200:
            outcome.latencies_s.append(elapsed)
            outcome.labels.extend(payload["labels"])
            return
        if response.status == 503:
            outcome.sheds += 1
            outcome.retries += 1
            retry_after = float(
                response.getheader("Retry-After")
                or payload.get("retry_after_s")
                or 0.01
            )
            clock.sleep(min(retry_after, RETRY_AFTER_CAP_S))
            continue
        raise RuntimeError(f"unexpected status {response.status}: {payload}")
    outcome.failures += 1


def run_wave(
    service: CurationService,
    workload: ServeWorkload,
    candidates: Sequence[LabeledTriple],
    clock: Optional[Clock] = None,
) -> dict:
    """One traffic wave: boot HTTP, release all clients at once, aggregate.

    Returns a summary whose deterministic core (label histogram + request
    counts) becomes the benchmark checksum, plus the raw latencies that
    :func:`measure_serve` folds into the serving section.
    """
    clock = clock or SYSTEM_CLOCK
    server, thread, port = start_server(service)
    outcomes = [_ClientOutcome() for _ in range(workload.clients)]
    barrier = threading.Barrier(workload.clients)
    threads = [
        threading.Thread(
            target=_run_client,
            args=(
                workload,
                candidates,
                client,
                port,
                barrier,
                outcomes[client],
                clock,
            ),
            name=f"serve-bench-client-{client}",
            daemon=True,
        )
        for client in range(workload.clients)
    ]
    try:
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=120)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    histogram: Dict[str, int] = {"0": 0, "1": 0, "null": 0}
    latencies: List[float] = []
    sheds = retries = failures = 0
    for outcome in outcomes:
        for label in outcome.labels:
            histogram["null" if label is None else str(label)] += 1
        latencies.extend(outcome.latencies_s)
        sheds += outcome.sheds
        retries += outcome.retries
        failures += outcome.failures
    return {
        "labels": histogram,
        "requests": workload.clients * workload.requests,
        "failures": failures,
        "sheds": sheds,
        "retries": retries,
        "latencies_s": latencies,
    }


def measure_serve(
    workload: ServeWorkload,
    protocol: Protocol = FULL,
    lab: Optional[Lab] = None,
) -> Tuple[BenchResult, dict]:
    """Train the backend, run warmup + timed waves, summarise.

    Returns the harness :class:`BenchResult` (wave wall time + determinism
    checksum over the label histogram) and the ``serving`` section
    aggregated over every wave's per-request latencies.
    """
    serving: Dict[str, object] = {}
    all_latencies: List[float] = []
    totals = {"requests": 0, "sheds": 0, "retries": 0, "failures": 0}

    def setup():
        bench_lab = lab or Lab(bench_lab_config(workload.entities, workload.seed))
        curators = build_pool(
            bench_lab, [workload.backend], task=workload.task, seed=workload.seed
        )
        service = CurationService.from_curators(
            curators,
            max_batch=workload.max_batch,
            max_wait_s=workload.max_wait_ms / 1000.0,
            max_queue=workload.queue_size,
        ).start()
        candidates = list(bench_lab.ml_split(workload.task).test)
        return service, candidates

    def run(state):
        service, candidates = state
        wave = run_wave(service, workload, candidates)
        all_latencies.extend(wave["latencies_s"])
        totals["requests"] += wave["requests"]
        totals["sheds"] += wave["sheds"]
        totals["retries"] += wave["retries"]
        totals["failures"] += wave["failures"]
        # Only the deterministic core feeds the checksum.
        return {
            "labels": wave["labels"],
            "requests": wave["requests"],
            "failures": wave["failures"],
        }

    def teardown(state):
        service, _ = state
        service.stop()

    result = Benchmark(
        f"{SERVE_AREA}-{workload.backend}",
        run,
        setup=setup,
        teardown=teardown,
        units=float(workload.clients * workload.requests),
    ).measure(protocol)

    waves = protocol.warmup + protocol.repeats
    wave_requests = workload.clients * workload.requests
    total_time_s = sum(result.stats.samples)
    serving = {
        "clients": workload.clients,
        "requests_per_wave": wave_requests,
        "requests": totals["requests"],
        "sheds": totals["sheds"],
        "retries": totals["retries"],
        "failures": totals["failures"],
        "shed_rate": (
            round(totals["sheds"] / (totals["requests"] + totals["sheds"]), 4)
            if totals["requests"]
            else 0.0
        ),
        "latency_p50_ms": (
            round(percentile(all_latencies, 50.0) * 1000, 3)
            if all_latencies
            else None
        ),
        "latency_p99_ms": (
            round(percentile(all_latencies, 99.0) * 1000, 3)
            if all_latencies
            else None
        ),
        "throughput_rps": (
            round(wave_requests * protocol.repeats / total_time_s, 1)
            if total_time_s > 0
            else None
        ),
        "waves": waves,
    }
    return result, serving


def serve_payload(
    result: BenchResult, workload: ServeWorkload, serving: dict
) -> dict:
    """The ``BENCH_serve.json`` document: bench-v1 plus a serving section."""
    payload = result_payload(result, workload.to_dict())
    payload["area"] = SERVE_AREA
    payload["serving"] = dict(serving)
    return payload


__all__ = [
    "SERVE_AREA",
    "MAX_RETRIES",
    "bench_lab_config",
    "ServeWorkload",
    "run_wave",
    "measure_serve",
    "serve_payload",
]
