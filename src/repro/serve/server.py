"""HTTP transport for the curation service (stdlib-only).

A :class:`ThreadingHTTPServer` whose handler translates between the wire
schemas (:mod:`repro.serve.schemas`) and :class:`CurationService`:

* ``POST /v1/classify`` — classify one triple or a batch; 400 on schema
  errors, 404 on unknown backends, 503 + ``Retry-After`` when the request
  was shed, 500 (counted) on anything else.
* ``GET /healthz`` — liveness + the backend lineup.
* ``GET /statz`` — request/shed/latency counters and per-backend breaker
  and batcher snapshots.

``HTTP/1.1`` with explicit ``Content-Length`` keeps client connections
alive, which is what lets the bench harness drive hundreds of clients over
persistent connections.  Access logging is silenced: request accounting
lives in ``/statz`` and the obs counters, not a text log.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.trace import get_tracer
from repro.serve.schemas import (
    SchemaError,
    classify_response,
    error_response,
    parse_classify_request,
    render_json,
)
from repro.serve.service import CurationService, ShedError

#: Request bodies above this size are rejected outright (413).
MAX_BODY_BYTES = 1 << 20


class CurationRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's ``service``."""

    protocol_version = "HTTP/1.1"
    server: "CurationHTTPServer"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = render_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SchemaError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        return self.rfile.read(length)

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, service.healthz_payload())
        elif self.path == "/statz":
            self._send_json(200, service.statz_payload())
        else:
            self._send_json(404, error_response(404, f"no route {self.path!r}"))

    def do_POST(self) -> None:
        if self.path != "/v1/classify":
            self._send_json(404, error_response(404, f"no route {self.path!r}"))
            return
        service = self.server.service
        try:
            request = parse_classify_request(self._read_body())
            backend, labels, batch_size = service.classify(
                request.backend, request.triples
            )
        except SchemaError as error:
            self._send_json(400, error_response(400, str(error)))
        except KeyError as error:
            self._send_json(404, error_response(404, str(error)))
        except ShedError as error:
            retry_after = error.retry_after_s
            self._send_json(
                503,
                error_response(503, str(error), retry_after_s=retry_after),
                headers=(("Retry-After", f"{retry_after:.3f}"),),
            )
        except Exception as error:
            get_tracer().count("serve.internal_errors")
            self._send_json(500, error_response(500, str(error)))
        else:
            self._send_json(
                200,
                classify_response(
                    backend, labels, batch=request.batch, batched_with=batch_size
                ),
            )


class CurationHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns a :class:`CurationService`."""

    daemon_threads = True
    #: The socketserver default listen backlog (5) resets connections when
    #: hundreds of bench clients connect in the same instant.
    request_queue_size = 512

    def __init__(self, address: Tuple[str, int], service: CurationService):
        super().__init__(address, CurationRequestHandler)
        self.service = service


def start_server(
    service: CurationService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[CurationHTTPServer, threading.Thread, int]:
    """Serve in a daemon thread; ``port=0`` binds an ephemeral port.

    Returns the server, its thread, and the actual bound port.  The caller
    owns shutdown: ``server.shutdown(); thread.join(); service.stop()``.
    """
    server = CurationHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread, server.server_address[1]


def stop_server(
    server: CurationHTTPServer, thread: Optional[threading.Thread] = None
) -> None:
    """Shut the HTTP layer down, then the backends behind it."""
    server.shutdown()
    server.server_close()
    if thread is not None:
        thread.join(timeout=5.0)
    server.service.stop()


__all__ = [
    "MAX_BODY_BYTES",
    "CurationRequestHandler",
    "CurationHTTPServer",
    "start_server",
    "stop_server",
]
