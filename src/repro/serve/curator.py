"""Curator backends: the serving-side interface over trained paradigms.

A :class:`Curator` answers the paper's end question — "is this candidate
triple plausible?" — for a batch of triples at once.  The server never
talks to a :class:`~repro.core.paradigms.Paradigm` directly; it talks to a
curator, which pins down the serving contract the paradigms only promise
loosely:

* **Batch invariance.**  ``classify_batch(a + b) == classify_batch(a) +
  classify_batch(b)``.  The micro-batcher coalesces triples from unrelated
  requests into one forward pass, so a triple's label must not depend on
  its batch neighbours or its batch index.  The vectorised paradigms (RF,
  LSTM, fine-tuned BERT) already classify each row independently; the ICL
  paradigm does *not* — its example-selection rng is derived from the batch
  index and its simulated client counts deliveries per prompt — so
  :class:`ICLCurator` re-anchors every triple at index 0 with a fresh
  delivery history.
* **Warm startup.**  :func:`build_curator` trains through the
  :class:`~repro.core.experiment.Lab`, so with ``artifact_dir`` (or
  ``$REPRO_ARTIFACTS``) configured every substrate — ontology, embeddings,
  splits, the pretrained BERT — loads from the content-addressed
  ``ArtifactStore`` instead of being rebuilt.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import Lab
from repro.core.paradigms import (
    FineTuneParadigm,
    ICLParadigm,
    LSTMParadigm,
    Paradigm,
    RandomForestParadigm,
)
from repro.core.triples import LabeledTriple
from repro.delivery import DeliveryBackend, DeliveryConfig, DeliveryEngine
from repro.llm.simulated import (
    BIOGPT_PROFILE,
    GPT4_PROFILE,
    GPT35_PROFILE,
    LLAMA2_PROFILE,
    SimulatedChatModel,
    truth_table,
)
from repro.obs.trace import span

#: Backends every server warms by default, in wire-name order.
DEFAULT_BACKENDS: Tuple[str, ...] = ("rf", "lstm", "ft", "icl")

#: Embedding used by the supervised backends (the paper's strongest
#: non-contextual embedding family for curation tasks).
SERVE_EMBEDDING = "W2V-Chem"

_ICL_PROFILES = {
    "gpt-4": GPT4_PROFILE,
    "gpt-3.5-turbo": GPT35_PROFILE,
    "biogpt": BIOGPT_PROFILE,
    "llama-2": LLAMA2_PROFILE,
}


class Curator(abc.ABC):
    """A warm, batch-invariant triple classifier behind the server."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def classify_batch(
        self, triples: Sequence[LabeledTriple]
    ) -> List[Optional[int]]:
        """Per-triple 0/1 plausibility, or ``None`` when the backend abstains."""

    def classify(self, triple: LabeledTriple) -> Optional[int]:
        return self.classify_batch([triple])[0]


class ParadigmCurator(Curator):
    """Direct adapter for paradigms whose ``classify`` is batch-invariant."""

    def __init__(self, name: str, paradigm: Paradigm):
        super().__init__(name)
        self.paradigm = paradigm

    def classify_batch(
        self, triples: Sequence[LabeledTriple]
    ) -> List[Optional[int]]:
        if not triples:
            return []
        return self.paradigm.classify(triples)


class ICLCurator(ParadigmCurator):
    """Batch-invariant wrapper around :class:`ICLParadigm`.

    The ICL paradigm's example-selection rng is derived from ``(seed,
    batch_index, triple_text)`` and the simulated chat client varies its
    answer with the per-prompt delivery count.  Served batches are arbitrary
    coalitions of concurrent requests, so both sources of batch sensitivity
    must be pinned: each triple is classified alone (batch index always 0)
    against a client with a freshly reset delivery history.  The label for a
    triple is then a pure function of the triple and the backend seed,
    whatever traffic surrounded it.
    """

    def __init__(self, name: str, paradigm: ICLParadigm):
        super().__init__(name, paradigm)

    def classify_batch(
        self, triples: Sequence[LabeledTriple]
    ) -> List[Optional[int]]:
        labels: List[Optional[int]] = []
        for triple in triples:
            client = self.paradigm.client
            reset = getattr(client, "reset", None)
            if callable(reset):
                reset()
            labels.append(self.paradigm.classify([triple])[0])
        return labels


def build_curator(
    lab: Lab,
    backend: str,
    task: int = 1,
    seed: int = 0,
    icl_model: str = "gpt-4",
) -> Curator:
    """Train one backend's curator through the lab (store-warmed when set)."""
    with span("serve.warm", backend=backend, task=task):
        if backend == "rf":
            paradigm = RandomForestParadigm(
                lab.embedding(SERVE_EMBEDDING),
                token_filter=lab.adaptation_filter("naive"),
                config=lab.rf_config(),
            ).fit(lab.ml_split(task).train)
            return ParadigmCurator(backend, paradigm)
        if backend == "lstm":
            paradigm = LSTMParadigm(
                lab.embedding(SERVE_EMBEDDING),
                token_filter=lab.adaptation_filter("naive"),
                config=lab.lstm_config(),
            ).fit(lab.ml_split(task).train)
            return ParadigmCurator(backend, paradigm)
        if backend == "ft":
            paradigm = FineTuneParadigm(lab.bert, lab.ft_config()).fit(
                lab.ft_split(task).train
            )
            return ParadigmCurator(backend, paradigm)
        if backend == "icl":
            try:
                profile = _ICL_PROFILES[icl_model]
            except KeyError:
                raise ValueError(
                    f"unknown ICL model {icl_model!r}; "
                    f"valid: {sorted(_ICL_PROFILES)}"
                ) from None
            client = SimulatedChatModel(
                profile, truth_table(lab.dataset(task)), task, seed=seed
            )
            # Served completions ride the delivery engine (single backend,
            # no hedging): every delivery lands at repeat index 0 through
            # ``complete_indexed``, which pins batch invariance exactly as
            # the per-triple client reset used to, while picking up the
            # engine's typed failure accounting.
            engine = DeliveryEngine(
                [DeliveryBackend(f"{backend}-0", client)],
                DeliveryConfig(jobs=1, seed=seed),
            )
            paradigm = ICLParadigm(client, seed=seed, engine=engine).fit(
                lab.ml_split(task).train
            )
            return ICLCurator(backend, paradigm)
        raise ValueError(
            f"unknown backend {backend!r}; valid: {DEFAULT_BACKENDS}"
        )


def build_pool(
    lab: Lab,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    task: int = 1,
    seed: int = 0,
    icl_model: str = "gpt-4",
) -> Dict[str, Curator]:
    """Warm a curator per backend name, preserving request-routing order."""
    pool: Dict[str, Curator] = {}
    for backend in backends:
        pool[backend] = build_curator(
            lab, backend, task=task, seed=seed, icl_model=icl_model
        )
    return pool


__all__ = [
    "DEFAULT_BACKENDS",
    "SERVE_EMBEDDING",
    "Curator",
    "ParadigmCurator",
    "ICLCurator",
    "build_curator",
    "build_pool",
]
