"""repro — reproduction of the ChEBI knowledge-curation benchmark.

Benchmarks and analyses of three NLP paradigms for biomedical knowledge
curation (in-context learning, fine-tuning, supervised learning) on
ChEBI-style triple-classification tasks, rebuilt from scratch:

* :mod:`repro.ontology` — ChEBI substrate (model, synthesis, OBO I/O);
* :mod:`repro.text` — tokenisation, vocabularies, synthetic corpora;
* :mod:`repro.embeddings` — word2vec, GloVe, fastText, random, contextual;
* :mod:`repro.nn` / :mod:`repro.bert` — numpy transformer + mini-BERT;
* :mod:`repro.ml` — Random Forest, LSTM, feature pipeline, grid search;
* :mod:`repro.llm` — prompting, simulated GPT models, ICL protocol;
* :mod:`repro.adaptation` — the paper's token-selection adaptations;
* :mod:`repro.metrics` — classification, ROC-AUC, Fleiss' kappa;
* :mod:`repro.core` — tasks, datasets, scenarios, paradigms, the Lab;
* :mod:`repro.kg` — TransE, the structure-only comparator;
* :mod:`repro.analysis` — calibration, error breakdowns, model agreement;
* :mod:`repro.curation` — the accept/reject/review triage assistant;
* :mod:`repro.cli` — the ``python -m repro`` command line.

Quickstart::

    from repro.core import Lab, LabConfig
    lab = Lab(LabConfig(n_chemical_entities=800, max_train=1500))
    report, forest = lab.evaluate_random_forest(1, "W2V-Chem", "naive")
    print(report.as_row())
"""

__version__ = "1.0.0"

from repro.core import Lab, LabConfig

__all__ = ["Lab", "LabConfig", "__version__"]
