"""Opt-in span profiling: per-span cProfile capture and allocation deltas.

The profiler is a :class:`~repro.obs.trace.Tracer` listener.  While
installed (``REPRO_PROFILE=1``, the CLI ``--profile`` flag, or
:func:`install`), every *outermost* span of each thread runs under its own
``cProfile.Profile``; on span exit the profile is folded into a
process-wide function table.  When ``tracemalloc`` is tracing (the
profiler starts it by default), every span additionally records its net
allocation delta — and outermost spans their traced peak — as span gauges
(``mem.alloc_delta_bytes`` / ``mem.peak_bytes``), so the numbers travel
inside the ordinary span tree.

Installing also registers a manifest *section provider*
(:func:`repro.obs.manifest.register_section_provider`), so every manifest
built while profiling gains ``hotspots.functions`` (top self-time
functions) and ``hotspots.allocations`` (top allocating spans) next to the
always-present ``hotspots.slowest_stages`` ranking.

Profiling costs real time (2-5x on tight python loops) — it is a
diagnosis tool, never on by default, and its overhead never leaks into
span durations (listeners run outside the timed window).
"""

from __future__ import annotations

import cProfile
import contextlib
import os
import pstats
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import manifest as obs_manifest
from repro.obs.trace import Span, get_tracer, span

try:
    import tracemalloc
except ImportError:  # pragma: no cover - always present on CPython
    tracemalloc = None  # type: ignore[assignment]

#: Environment variable that switches span profiling on.
PROFILE_ENV_VAR = "REPRO_PROFILE"

_FALSY = ("", "0", "false", "no", "off")

#: Name under which the profiler registers its manifest section provider.
_PROVIDER_NAME = "perf.profiler"


def env_enables_profile(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether the environment asks for profiling (``REPRO_PROFILE`` truthy)."""
    value = (env if env is not None else os.environ).get(PROFILE_ENV_VAR, "")
    return value.strip().lower() not in _FALSY


def _function_key(entry: Tuple[str, int, str]) -> str:
    """A compact ``path:line:function`` label for a pstats entry."""
    filename, lineno, funcname = entry
    if filename in ("~", ""):
        return f"<builtin>:{funcname}"
    parts = filename.replace("\\", "/").split("/")
    short = "/".join(parts[-2:])
    return f"{short}:{lineno}:{funcname}"


class SpanProfiler:
    """The tracer listener aggregating per-span CPU and allocation profiles."""

    def __init__(
        self,
        capture_cpu: bool = True,
        capture_memory: bool = True,
        top_n: int = 25,
    ):
        self.capture_cpu = capture_cpu
        self.capture_memory = capture_memory
        self.top_n = top_n
        self._lock = threading.Lock()
        self._local = threading.local()
        # function key -> [ncalls, tottime_s, cumtime_s]
        self._functions: Dict[str, List[float]] = {}
        # span name -> peak/delta alloc bytes (max over occurrences)
        self._allocations: Dict[str, int] = {}

    # -- per-thread bookkeeping ----------------------------------------------

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    # -- listener hooks -------------------------------------------------------

    def on_span_start(self, sp: Span) -> None:
        depth = self._depth()
        self._local.depth = depth + 1
        starts = getattr(self._local, "alloc_starts", None)
        if starts is None:
            starts = self._local.alloc_starts = {}
        if (
            self.capture_memory
            and tracemalloc is not None
            and tracemalloc.is_tracing()
        ):
            current, _ = tracemalloc.get_traced_memory()
            starts[id(sp)] = current
            if depth == 0:
                # Peak tracking is process-global, so only outermost spans
                # may reset it without clobbering an enclosing measurement.
                tracemalloc.reset_peak()
        if self.capture_cpu and depth == 0:
            profile = cProfile.Profile()
            try:
                profile.enable()
            except (ValueError, RuntimeError):
                # Another profiler (coverage, a nested tool) owns the hook.
                get_tracer().count("perf.profiler_conflicts")
                profile = None
            self._local.profile = profile

    def on_span_end(self, sp: Span) -> None:
        depth = max(0, self._depth() - 1)
        self._local.depth = depth
        starts = getattr(self._local, "alloc_starts", {})
        start = starts.pop(id(sp), None)
        if (
            start is not None
            and tracemalloc is not None
            and tracemalloc.is_tracing()
        ):
            current, peak = tracemalloc.get_traced_memory()
            delta = int(current - start)
            sp.gauge("mem.alloc_delta_bytes", delta)
            observed = delta
            if depth == 0:
                sp.gauge("mem.peak_bytes", int(peak))
                # Rank by peak *above the span's starting level* — the
                # absolute peak would charge this span for allocations
                # that predate it and happen to still be alive.
                observed = max(observed, int(peak) - start)
            with self._lock:
                previous = self._allocations.get(sp.name, 0)
                self._allocations[sp.name] = max(previous, observed)
        if self.capture_cpu and depth == 0:
            profile = getattr(self._local, "profile", None)
            self._local.profile = None
            if profile is not None:
                profile.disable()
                self._fold(profile)

    # -- aggregation ----------------------------------------------------------

    def _fold(self, profile: cProfile.Profile) -> None:
        stats = pstats.Stats(profile)
        with self._lock:
            for entry, row in stats.stats.items():  # type: ignore[attr-defined]
                _, ncalls, tottime, cumtime, _ = row
                key = _function_key(entry)
                record = self._functions.setdefault(key, [0.0, 0.0, 0.0])
                record[0] += ncalls
                record[1] += tottime
                record[2] += cumtime

    def snapshot(self) -> dict:
        """The profiler's manifest contribution (functions + allocations)."""
        with self._lock:
            functions = [
                {
                    "function": key,
                    "ncalls": int(record[0]),
                    "tottime_s": round(record[1], 6),
                    "cumtime_s": round(record[2], 6),
                }
                for key, record in self._functions.items()
            ]
            allocations = [
                {"span": name, "alloc_bytes": size}
                for name, size in self._allocations.items()
            ]
        functions.sort(key=lambda row: (-row["tottime_s"], row["function"]))
        allocations.sort(key=lambda row: (-row["alloc_bytes"], row["span"]))
        return {
            "functions": functions[: self.top_n],
            "allocations": allocations[: self.top_n],
        }

    def reset(self) -> None:
        """Drop all aggregated profile data."""
        with self._lock:
            self._functions.clear()
            self._allocations.clear()


#: The installed profiler, if any (module-level singleton).
_PROFILER: Optional[SpanProfiler] = None

#: Whether :func:`install` started tracemalloc (and must stop it again).
_STARTED_TRACEMALLOC = False

_INSTALL_LOCK = threading.Lock()


def install(
    capture_cpu: bool = True,
    capture_memory: bool = True,
    top_n: int = 25,
) -> SpanProfiler:
    """Install the span profiler (idempotent); returns the instance.

    Attaches the listener to the global tracer, registers the manifest
    section provider, and starts ``tracemalloc`` when memory capture is
    requested and nothing else is tracing yet.
    """
    global _PROFILER, _STARTED_TRACEMALLOC
    with _INSTALL_LOCK:
        if _PROFILER is not None:
            return _PROFILER
        profiler = SpanProfiler(
            capture_cpu=capture_cpu,
            capture_memory=capture_memory,
            top_n=top_n,
        )
        if (
            capture_memory
            and tracemalloc is not None
            and not tracemalloc.is_tracing()
        ):
            tracemalloc.start()
            _STARTED_TRACEMALLOC = True
        get_tracer().add_listener(profiler)
        obs_manifest.register_section_provider(_PROVIDER_NAME, profiler.snapshot)
        _PROFILER = profiler
        return profiler


def uninstall() -> None:
    """Remove the profiler and undo everything :func:`install` did."""
    global _PROFILER, _STARTED_TRACEMALLOC
    with _INSTALL_LOCK:
        if _PROFILER is None:
            return
        get_tracer().remove_listener(_PROFILER)
        obs_manifest.unregister_section_provider(_PROVIDER_NAME)
        if (
            _STARTED_TRACEMALLOC
            and tracemalloc is not None
            and tracemalloc.is_tracing()
        ):
            tracemalloc.stop()
        _STARTED_TRACEMALLOC = False
        _PROFILER = None


def installed() -> Optional[SpanProfiler]:
    """The active profiler, or ``None``."""
    return _PROFILER


def configure_from_env(env: Optional[Dict[str, str]] = None) -> bool:
    """Install the profiler when ``REPRO_PROFILE`` asks for it.

    Profiling needs spans to exist, so this also enables tracing — setting
    ``REPRO_PROFILE=1`` alone is enough to get profiled manifests.
    """
    if not env_enables_profile(env):
        return False
    from repro.obs import trace

    trace.enable()
    install()
    return True


@contextlib.contextmanager
def profiled_span(name: str, **attrs) -> Iterator[object]:
    """A span that is guaranteed to be profiled while a profiler is installed.

    Sugar for ``with span(name, ...)`` — the listener machinery does the
    rest — provided so call sites (benchmark computes) read as explicitly
    profiled.
    """
    with span(name, **attrs) as sp:
        yield sp


__all__ = [
    "PROFILE_ENV_VAR",
    "env_enables_profile",
    "SpanProfiler",
    "install",
    "uninstall",
    "installed",
    "configure_from_env",
    "profiled_span",
]
