"""The registry of named perf areas — the apparatus's real hot paths.

Each :class:`PerfArea` wraps one library hot path (OBO parsing, WordPiece
training, GloVe co-occurrence counting, SGNS updates, a mini-BERT MLM
pretraining pass, random-forest fitting, simulated-ICL delivery, artifact
store round-trips) in a :class:`~repro.perf.harness.Benchmark` with a fixed,
seeded workload, so its timing is comparable run-over-run and a committed
``BENCH_<area>.json`` baseline can gate regressions.

Workload sizes are deliberately small (each repeat well under a second on a
laptop) so the full registry can run in CI; ``--quick`` shrinks only the
*protocol* (warmup/repeats), never the workload, keeping quick numbers
comparable to full baselines.
"""

from __future__ import annotations

import io
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.perf.harness import Benchmark, PerfError
from repro.utils.rng import derive_rng

#: Master seed for every perf workload; one knob, deliberately frozen.
WORKLOAD_SEED = 0

#: Syllables composing the synthetic chemistry-ish corpus vocabulary.
_SYLLABLES = (
    "chlo", "ro", "ben", "zene", "meth", "yl", "ox", "ide",
    "am", "ine", "sul", "fate", "phos", "pho", "car", "box",
)


@dataclass(frozen=True)
class PerfArea:
    """One registered benchmarkable hot path."""

    name: str
    title: str
    #: Zero-argument factory returning ``(benchmark, workload_params)``.
    #: Workload construction is deferred so listing areas stays free.
    factory: Callable[[], Tuple[Benchmark, dict]]

    def build(self) -> Tuple[Benchmark, dict]:
        """Materialise the benchmark and its workload-parameter record."""
        return self.factory()


def _corpus(
    n_sentences: int, sentence_len: int, vocab_size: int
) -> List[List[str]]:
    """A seeded synthetic token corpus with a zipf-ish frequency profile."""
    rng = derive_rng(
        WORKLOAD_SEED, "perf-corpus", n_sentences, sentence_len, vocab_size
    )
    words = []
    for _ in range(vocab_size):
        n_parts = 2 + int(rng.integers(0, 3))
        picks = rng.integers(0, len(_SYLLABLES), size=n_parts)
        words.append("".join(_SYLLABLES[int(p)] for p in picks))
    weights = 1.0 / np.arange(1.0, vocab_size + 1.0)
    weights /= weights.sum()
    return [
        [words[int(w)] for w in rng.choice(vocab_size, size=sentence_len, p=weights)]
        for _ in range(n_sentences)
    ]


# -- area factories -----------------------------------------------------------


def _obo_parse() -> Tuple[Benchmark, dict]:
    from repro.ontology.obo import dumps_obo, load_obo
    from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like

    params = {"n_chemical_entities": 400, "seed": WORKLOAD_SEED}

    def setup() -> str:
        ontology = synthesize_chebi_like(
            SynthesisConfig(
                n_chemical_entities=params["n_chemical_entities"],
                seed=params["seed"],
            )
        )
        return dumps_obo(ontology)

    def run(text: object) -> object:
        ontology = load_obo(io.StringIO(str(text)), name="perf")
        return sum(1 for _ in ontology.entities())

    return Benchmark("obo_parse", run, setup=setup), params


def _wordpiece() -> Tuple[Benchmark, dict]:
    from repro.bert.wordpiece import train_wordpiece

    params = {
        "n_sentences": 200,
        "sentence_len": 12,
        "corpus_vocab": 160,
        "vocab_size": 300,
        "seed": WORKLOAD_SEED,
    }

    def setup() -> List[List[str]]:
        return _corpus(
            params["n_sentences"], params["sentence_len"], params["corpus_vocab"]
        )

    def run(sentences: object) -> object:
        corpus = list(sentences)  # type: ignore[arg-type]
        tokenizer = train_wordpiece(
            corpus, vocab_size=params["vocab_size"], min_pair_frequency=2
        )
        encoded = sum(len(tokenizer.encode(s)) for s in corpus[:50])
        return (len(tokenizer), encoded)

    return Benchmark("wordpiece", run, setup=setup), params


def _glove_cooccur() -> Tuple[Benchmark, dict]:
    from repro.embeddings.glove import cooccurrence_arrays
    from repro.text.vocab import build_vocabulary

    params = {
        "n_sentences": 500,
        "sentence_len": 16,
        "corpus_vocab": 250,
        "window": 6,
        "seed": WORKLOAD_SEED,
    }

    def setup() -> dict:
        sentences = _corpus(
            params["n_sentences"], params["sentence_len"], params["corpus_vocab"]
        )
        return {
            "sentences": sentences,
            "vocabulary": build_vocabulary(sentences, min_count=1),
        }

    def run(state: object) -> object:
        # Measures the COO-array path the trainers and pipeline consume; the
        # checksum (entry count, rounded total mass) is order-insensitive and
        # matches what the legacy dict API produced for the same corpus.
        _, _, values = cooccurrence_arrays(
            state["sentences"], state["vocabulary"], params["window"]
        )
        return (int(values.size), round(float(values.sum()), 3))

    return Benchmark("glove_cooccur", run, setup=setup), params


def _word2vec_neg() -> Tuple[Benchmark, dict]:
    from repro.embeddings.word2vec import Word2Vec, Word2VecConfig

    params = {
        "n_sentences": 160,
        "sentence_len": 12,
        "corpus_vocab": 120,
        "dim": 32,
        "negative": 5,
        "epochs": 1,
        "seed": WORKLOAD_SEED,
    }

    def setup() -> List[List[str]]:
        return _corpus(
            params["n_sentences"], params["sentence_len"], params["corpus_vocab"]
        )

    def run(sentences: object) -> object:
        model = Word2Vec.train(
            list(sentences),  # type: ignore[arg-type]
            Word2VecConfig(
                dim=params["dim"],
                negative=params["negative"],
                epochs=params["epochs"],
                min_count=1,
                seed=params["seed"],
            ),
            name="perf",
        )
        probe = state_probe(sentences)
        return round(float(np.sum(model.vector(probe))), 5)

    def state_probe(sentences: object) -> str:
        # the corpus's first token always survives min_count=1
        return sentences[0][0]  # type: ignore[index]

    return Benchmark("word2vec_neg", run, setup=setup), params


def _bert_pretrain_step() -> Tuple[Benchmark, dict]:
    from repro.bert.model import BertConfig
    from repro.bert.pretrain import PretrainConfig, pretrain_mlm
    from repro.bert.wordpiece import train_wordpiece

    params = {
        "n_sentences": 48,
        "sentence_len": 10,
        "corpus_vocab": 90,
        "vocab_size": 220,
        "d_model": 32,
        "n_layers": 2,
        "epochs": 1,
        "batch_size": 16,
        "seed": WORKLOAD_SEED,
    }

    def setup() -> dict:
        sentences = _corpus(
            params["n_sentences"], params["sentence_len"], params["corpus_vocab"]
        )
        tokenizer = train_wordpiece(
            sentences, vocab_size=params["vocab_size"], min_pair_frequency=2
        )
        return {"sentences": sentences, "tokenizer": tokenizer}

    def run(state: object) -> object:
        model = pretrain_mlm(
            state["sentences"],
            state["tokenizer"],
            BertConfig(
                d_model=params["d_model"],
                n_heads=2,
                n_layers=params["n_layers"],
                d_ff=64,
                max_len=32,
                seed=params["seed"],
            ),
            PretrainConfig(
                epochs=params["epochs"],
                batch_size=params["batch_size"],
                seed=params["seed"],
            ),
        )
        return round(float(model.pretrain_losses[-1]), 4)

    return Benchmark("bert_pretrain_step", run, setup=setup), params


def _rf_fit() -> Tuple[Benchmark, dict]:
    from repro.ml.forest import RandomForest, RandomForestConfig

    params = {
        "n_samples": 400,
        "n_features": 32,
        "n_estimators": 8,
        "max_depth": 8,
        "seed": WORKLOAD_SEED,
    }

    def setup() -> dict:
        rng = derive_rng(params["seed"], "perf-rf")
        x = rng.normal(size=(params["n_samples"], params["n_features"]))
        y = (x[:, 0] + 0.5 * x[:, 1] - 0.25 * x[:, 2] > 0).astype(np.int64)
        return {"x": x, "y": y}

    def run(state: object) -> object:
        forest = RandomForest(
            RandomForestConfig(
                n_estimators=params["n_estimators"],
                max_depth=params["max_depth"],
                seed=params["seed"],
            )
        ).fit(state["x"], state["y"])
        return round(float(np.sum(forest.feature_importances_)), 6)

    return Benchmark("rf_fit", run, setup=setup), params


def _icl_delivery() -> Tuple[Benchmark, dict]:
    """ICL prompt delivery through the concurrent delivery engine.

    Each simulated completion carries ~2 ms of injected latency (the
    regime where dispatch concurrency matters; the pure-CPU simulators
    alone finish in microseconds, which the GIL would serialise anyway).
    ``setup`` first measures one *sequential* run of the same latency-laden
    workload and records it as ``sequential_reference_s`` in the workload
    section, so the committed baseline documents the engine's speedup:
    ``sequential_reference_s / stats.median_s`` is the throughput multiple.
    The checksum covers (accuracy, unclassified), which the engine must
    reproduce byte-identically to the sequential path.
    """
    import time

    from repro.core.datasets import build_task_dataset
    from repro.delivery import DeliveryConfig, DeliveryEngine, simulated_backends
    from repro.llm.icl import ICLConfig, build_icl_queries, run_icl_experiment
    from repro.llm.prompts import PromptVariant
    from repro.llm.simulated import GPT35_PROFILE, SimulatedChatModel, truth_table
    from repro.ontology.synthesis import SynthesisConfig, synthesize_chebi_like

    params = {
        "n_chemical_entities": 350,
        "n_queries_per_class": 10,
        "n_repeats": 2,
        "task": 1,
        "seed": WORKLOAD_SEED,
        "backends": 4,
        "jobs": 8,
        "latency_ms": 2.0,
        "sequential_reference_s": None,  # measured in setup
    }

    def setup() -> dict:
        ontology = synthesize_chebi_like(
            SynthesisConfig(
                n_chemical_entities=params["n_chemical_entities"],
                seed=params["seed"],
            )
        )
        dataset = build_task_dataset(ontology, params["task"], seed=params["seed"])
        config = ICLConfig(
            n_positive_queries=params["n_queries_per_class"],
            n_negative_queries=params["n_queries_per_class"],
            n_repeats=params["n_repeats"],
            seed=params["seed"],
        )
        truth = truth_table(dataset)
        pool = list(dataset)[:300]
        queries = build_icl_queries(dataset, config)
        latency_s = params["latency_ms"] / 1000.0

        def build_backends():
            return simulated_backends(
                GPT35_PROFILE,
                truth,
                params["task"],
                n_backends=params["backends"],
                seed=params["seed"],
                latency_s=latency_s,
            )

        # Sequential reference: the same latency-laden deliveries, one at a
        # time through a single backend.  Documented in the workload so the
        # committed baseline shows before/after.
        reference = DeliveryEngine(
            build_backends()[:1], DeliveryConfig(jobs=1, seed=params["seed"])
        )
        started = time.perf_counter()
        run_icl_experiment(
            SimulatedChatModel(
                GPT35_PROFILE, truth, params["task"], seed=params["seed"]
            ),
            pool,
            queries,
            PromptVariant.BASE,
            config,
            engine=reference,
        )
        params["sequential_reference_s"] = round(
            time.perf_counter() - started, 6
        )
        reference.close()

        engine = DeliveryEngine(
            build_backends(),
            DeliveryConfig(jobs=params["jobs"], seed=params["seed"]),
        )
        return {
            "pool": pool,
            "queries": queries,
            "config": config,
            "client": SimulatedChatModel(
                GPT35_PROFILE, truth, params["task"], seed=params["seed"]
            ),
            "engine": engine,
        }

    def run(state: object) -> object:
        result = run_icl_experiment(
            state["client"],
            state["pool"],
            state["queries"],
            PromptVariant.BASE,
            state["config"],
            engine=state["engine"],
        )
        return (round(result.accuracy_mean, 4), result.n_unclassified)

    def teardown(state: object) -> None:
        state["engine"].close()

    return Benchmark("icl_delivery", run, setup=setup, teardown=teardown), params


def _store_roundtrip() -> Tuple[Benchmark, dict]:
    """Warm read of a persisted static-embedding artifact.

    Setup ``put``s one entry through the stage hooks; each run loads it and
    samples a strided slice — the dominant store access pattern once a
    cache is warm.  Large matrices memory-map (see ``repro.pipeline.arrays``),
    so a load costs page faults for the touched rows, not a full copy.
    """
    from repro.embeddings.base import StaticEmbeddings
    from repro.pipeline.stage import Stage
    from repro.pipeline.store import ArtifactStore
    from repro.text.vocab import Vocabulary
    from repro.utils.persistence import (
        load_embeddings_entry,
        save_embeddings_entry,
    )

    params = {"vocab": 2048, "dim": 128, "seed": WORKLOAD_SEED}

    def setup() -> dict:
        root = tempfile.mkdtemp(prefix="repro-perf-store-")
        rng = derive_rng(params["seed"], "perf-store")
        counts = {
            f"tok{i:05d}": int(c)
            for i, c in enumerate(rng.integers(1, 500, size=params["vocab"]))
        }
        vocabulary = Vocabulary(counts)
        matrix = rng.normal(size=(len(vocabulary), params["dim"]))
        store = ArtifactStore(root)
        stage = Stage(
            name="perf-embedding",
            build=lambda lab, inputs: None,
            save=lambda artifact, path: save_embeddings_entry(artifact, path),
            load=lambda path, inputs: load_embeddings_entry(path),
        )
        store.put(
            stage, "warm", StaticEmbeddings(vocabulary, matrix, name="perf")
        )
        return {"store": store, "root": root, "stage": stage}

    def run(state: object) -> object:
        model = state["store"].load(state["stage"], "warm", {})
        sample = np.asarray(model.matrix[::64, ::8])
        return round(float(sample.sum()), 6)

    def teardown(state: object) -> None:
        shutil.rmtree(state["root"], ignore_errors=True)

    return Benchmark("store_roundtrip", run, setup=setup, teardown=teardown), params


#: Every registered perf area, in reporting order.
AREAS: Tuple[PerfArea, ...] = (
    PerfArea("obo_parse", "OBO flat-file parsing", _obo_parse),
    PerfArea("wordpiece", "WordPiece training + encoding", _wordpiece),
    PerfArea("glove_cooccur", "GloVe co-occurrence counting", _glove_cooccur),
    PerfArea("word2vec_neg", "SGNS negative-sampling training", _word2vec_neg),
    PerfArea("bert_pretrain_step", "mini-BERT MLM pretraining pass", _bert_pretrain_step),
    PerfArea("rf_fit", "random-forest fitting", _rf_fit),
    PerfArea("icl_delivery", "simulated ICL prompt delivery", _icl_delivery),
    PerfArea("store_roundtrip", "artifact store put/load round-trip", _store_roundtrip),
)

_BY_NAME: Dict[str, PerfArea] = {area.name: area for area in AREAS}


def area_names() -> List[str]:
    """The registered area names, in registry order."""
    return [area.name for area in AREAS]


def get_area(name: str) -> PerfArea:
    """Look an area up by name; raises :class:`PerfError` on a typo."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise PerfError(
            f"unknown perf area {name!r}; known: {', '.join(area_names())}"
        ) from None


def select_areas(names: object = None) -> List[PerfArea]:
    """Areas filtered to ``names`` (default: all), preserving registry order."""
    if not names:
        return list(AREAS)
    wanted = [get_area(str(name)).name for name in names]
    return [area for area in AREAS if area.name in set(wanted)]


__all__ = [
    "WORKLOAD_SEED",
    "PerfArea",
    "AREAS",
    "area_names",
    "get_area",
    "select_areas",
]
