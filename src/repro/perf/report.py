"""Text rendering for perf results and baseline comparisons."""

from __future__ import annotations

from typing import List, Optional

from repro.core.reporting import Table
from repro.perf.baseline import Comparison

#: Glyph per comparison status, chosen to scan well in CI logs.
_STATUS_MARKS = {
    "ok": "ok",
    "faster": "FASTER",
    "regression": "REGRESSION",
    "drift": "DRIFT",
    "missing": "MISSING",
}


def _ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.2f}"


def render_results(payloads: List[dict], title: str = "perf results") -> str:
    """One row per measured area: the protocol and the robust stats."""
    table = Table(
        title,
        [
            "area",
            "median_ms",
            "min_ms",
            "p99_ms",
            "mad_ms",
            "repeats",
            "warmup",
            "deterministic",
        ],
    )
    for payload in payloads:
        stats = payload["stats"]
        protocol = payload["protocol"]
        table.add_row(
            payload["area"],
            _ms(stats["median_s"]),
            _ms(stats["min_s"]),
            _ms(stats["p99_s"]),
            _ms(stats["mad_s"]),
            protocol["repeats"],
            protocol["warmup"],
            "yes" if payload.get("deterministic") else "NO",
        )
    return table.render()


def render_comparison(
    comparisons: List[Comparison], tolerance: float
) -> str:
    """One row per compared area, worst statuses first."""
    order = {"missing": 0, "drift": 1, "regression": 2, "faster": 3, "ok": 4}
    table = Table(
        f"perf comparison (tolerance {tolerance * 100:.0f}%)",
        ["area", "status", "median_ms", "baseline_ms", "ratio", "note"],
    )
    for comparison in sorted(
        comparisons, key=lambda c: (order.get(c.status, 9), c.area)
    ):
        table.add_row(
            comparison.area,
            _STATUS_MARKS.get(comparison.status, comparison.status),
            _ms(comparison.current_median_s),
            _ms(comparison.baseline_median_s),
            "-" if comparison.ratio is None else f"{comparison.ratio:.3f}",
            comparison.message,
        )
    rendered = table.render()
    warnings = [
        line
        for comparison in sorted(comparisons, key=lambda c: c.area)
        for line in _fingerprint_warning(comparison)
    ]
    if warnings:
        rendered += "\n" + "\n".join(warnings)
    return rendered


def _fingerprint_warning(comparison: Comparison) -> List[str]:
    """Per-field environment mismatch lines for one comparison."""
    if not comparison.fingerprint:
        return []
    lines = [
        f"warning: {comparison.area}: environment fingerprint differs from "
        f"the baseline — timings may not be comparable:"
    ]
    for name, values in comparison.fingerprint.items():
        lines.append(
            f"  {name}: {values['current']!r} (current) vs "
            f"{values['baseline']!r} (baseline)"
        )
    return lines


__all__ = ["render_results", "render_comparison"]
