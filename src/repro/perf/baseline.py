"""Perf baselines: ``BENCH_<area>.json`` files and regression comparison.

A baseline is the committed record of how fast one perf area ran on a known
good revision: schema-versioned, carrying the protocol, the robust stats,
the workload checksum and an environment fingerprint.  ``repro perf
compare`` measures the same areas and diffs medians against these files
with a *noise-tolerant* threshold: a regression is flagged only when the
median grew by more than ``tolerance`` (relative) **and** more than
``min_delta_s`` (absolute) — micro-benchmarks in the hundreds of
microseconds would otherwise trip the relative gate on scheduler noise.

Statuses:

``ok`` / ``faster``
    Within tolerance (or better).  Exit code 0.
``regression``
    Median slower than tolerance allows.  Exit code 1.
``drift``
    The workload checksum changed — the code under test produces different
    results, so the numbers are not comparable; refresh with ``repro perf
    update``.  Exit code 1.
``missing``
    No committed baseline for a measured area.  Exit code 2 (harness/config
    error): CI must fail loudly until the baseline is committed.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.perf.harness import BenchResult, PerfError
from repro.utils.atomic import atomic_write

PathLike = Union[str, Path]

#: Format tag written into (and required of) every baseline file.
BENCH_FORMAT = "repro-bench-v1"

#: Format tag of a multi-area results file (``repro perf run --output``).
RESULTS_FORMAT = "repro-bench-results-v1"

#: Default relative tolerance for :func:`compare_result` (25%).
DEFAULT_TOLERANCE = 0.25

#: Absolute noise floor: median deltas below this never count as regressions.
DEFAULT_MIN_DELTA_S = 0.002


def environment_fingerprint() -> dict:
    """Machine/interpreter facts stored with every baseline.

    Comparisons are only physically meaningful on similar hardware; the
    fingerprint lets readers (and CI logs) judge how comparable two runs
    are without blocking the comparison.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


#: Fingerprint fields compared (and reported) when two runs' environments
#: are diffed; order is the report order.
FINGERPRINT_FIELDS = (
    "python_version",
    "python_implementation",
    "numpy_version",
    "platform",
    "machine",
    "cpu_count",
)


def fingerprint_diff(
    current: Optional[dict], baseline: Optional[dict]
) -> Dict[str, Dict[str, object]]:
    """Which fingerprint fields differ, and how.

    Returns ``{field: {"current": ..., "baseline": ...}}`` for every field
    of :data:`FINGERPRINT_FIELDS` whose values disagree — so ``repro perf
    compare`` can say *what* changed (python 3.11 -> 3.12, another numpy,
    different machine) instead of just that something did.  Empty dict
    means the environments match.
    """
    diffs: Dict[str, Dict[str, object]] = {}
    for name in FINGERPRINT_FIELDS:
        current_value = (current or {}).get(name)
        baseline_value = (baseline or {}).get(name)
        if current_value != baseline_value:
            diffs[name] = {"current": current_value, "baseline": baseline_value}
    return diffs


def baseline_path(area_name: str, directory: PathLike = ".") -> Path:
    """Where the committed baseline for ``area_name`` lives."""
    return Path(directory) / f"BENCH_{area_name}.json"


def result_payload(result: BenchResult, workload: dict) -> dict:
    """The JSON payload for one measured area (baseline or results entry)."""
    return {
        "format": BENCH_FORMAT,
        "area": result.name,
        "workload": dict(workload),
        "environment": environment_fingerprint(),
        **result.to_dict(),
    }


def write_baseline(payload: dict, directory: PathLike = ".") -> Path:
    """Atomically write one area's baseline file; returns its path."""
    path = baseline_path(payload["area"], directory)
    with atomic_write(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(area_name: str, directory: PathLike = ".") -> dict:
    """Load and validate one committed baseline.

    Raises :class:`PerfError` when the file is missing, corrupt, or not a
    ``repro-bench-v1`` document.
    """
    path = baseline_path(area_name, directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise PerfError(f"no baseline for {area_name!r}: {path} not found") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise PerfError(f"corrupt baseline {path}: {error}") from None
    except OSError as error:
        raise PerfError(f"cannot read baseline {path}: {error}") from None
    if not isinstance(data, dict) or data.get("format") != BENCH_FORMAT:
        raise PerfError(
            f"{path} is not a {BENCH_FORMAT} file "
            f"(found format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"{path} is not a {BENCH_FORMAT} file"
        )
    return data


def write_results(payloads: List[dict], path: PathLike) -> Path:
    """Write a multi-area results document (``repro perf run --output``)."""
    document = {
        "format": RESULTS_FORMAT,
        "results": {payload["area"]: payload for payload in payloads},
    }
    path = Path(path)
    with atomic_write(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_results(path: PathLike) -> List[dict]:
    """Load a results document back into a list of area payloads."""
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise PerfError(f"results file not found: {path}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise PerfError(f"corrupt results file {path}: {error}") from None
    if not isinstance(data, dict) or data.get("format") != RESULTS_FORMAT:
        raise PerfError(f"{path} is not a {RESULTS_FORMAT} file")
    results = data.get("results", {})
    return [results[name] for name in sorted(results)]


def parse_tolerance(text: Union[str, float]) -> float:
    """Parse ``"25%"`` or ``"0.25"`` (or a float) into a fraction."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        raw = str(text).strip()
        try:
            value = (
                float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
            )
        except ValueError:
            raise PerfError(f"cannot parse tolerance {text!r}") from None
    if value < 0:
        raise PerfError(f"tolerance must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class Comparison:
    """Outcome of diffing one measured area against its baseline."""

    area: str
    status: str  # "ok" | "faster" | "regression" | "drift" | "missing"
    current_median_s: Optional[float] = None
    baseline_median_s: Optional[float] = None
    ratio: Optional[float] = None
    message: str = ""
    #: Environment-fingerprint fields that differ from the baseline
    #: (:func:`fingerprint_diff` output); None when nothing to compare.
    fingerprint: Optional[Dict[str, Dict[str, object]]] = None

    @property
    def is_regression(self) -> bool:
        return self.status in ("regression", "drift")

    @property
    def is_error(self) -> bool:
        return self.status == "missing"

    def to_dict(self) -> dict:
        return {
            "area": self.area,
            "status": self.status,
            "current_median_s": self.current_median_s,
            "baseline_median_s": self.baseline_median_s,
            "ratio": self.ratio,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def compare_result(
    payload: dict,
    baseline: Optional[dict],
    tolerance: float = DEFAULT_TOLERANCE,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> Comparison:
    """Diff one measured payload against its committed baseline."""
    area = payload["area"]
    if baseline is None:
        return Comparison(
            area=area,
            status="missing",
            current_median_s=payload["stats"]["median_s"],
            message="no committed baseline; run `repro perf update`",
        )
    current = float(payload["stats"]["median_s"])
    base = float(baseline["stats"]["median_s"])
    ratio = current / base if base > 0 else float("inf")
    fingerprint = (
        fingerprint_diff(payload.get("environment"), baseline.get("environment"))
        or None
    )
    current_checksum = payload.get("checksum")
    baseline_checksum = baseline.get("checksum")
    if (
        current_checksum
        and baseline_checksum
        and current_checksum != baseline_checksum
    ):
        return Comparison(
            area=area,
            status="drift",
            current_median_s=current,
            baseline_median_s=base,
            ratio=round(ratio, 3),
            message=(
                "workload checksum changed — results are not comparable; "
                "refresh the baseline with `repro perf update`"
            ),
            fingerprint=fingerprint,
        )
    delta = current - base
    if delta > base * tolerance and delta > min_delta_s:
        return Comparison(
            area=area,
            status="regression",
            current_median_s=current,
            baseline_median_s=base,
            ratio=round(ratio, 3),
            message=(
                f"median {current * 1e3:.2f} ms vs baseline "
                f"{base * 1e3:.2f} ms (+{(ratio - 1) * 100:.0f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            ),
            fingerprint=fingerprint,
        )
    status = "faster" if (-delta > base * tolerance and -delta > min_delta_s) else "ok"
    return Comparison(
        area=area,
        status=status,
        current_median_s=current,
        baseline_median_s=base,
        ratio=round(ratio, 3),
        message=(
            f"median {current * 1e3:.2f} ms vs baseline {base * 1e3:.2f} ms"
        ),
        fingerprint=fingerprint,
    )


def compare_exit_code(comparisons: List[Comparison]) -> int:
    """The CLI exit code for a set of comparisons (0 ok, 1 slow, 2 error)."""
    if any(c.is_error for c in comparisons):
        return 2
    if any(c.is_regression for c in comparisons):
        return 1
    return 0


__all__ = [
    "BENCH_FORMAT",
    "RESULTS_FORMAT",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_DELTA_S",
    "environment_fingerprint",
    "FINGERPRINT_FIELDS",
    "fingerprint_diff",
    "baseline_path",
    "result_payload",
    "write_baseline",
    "load_baseline",
    "write_results",
    "load_results",
    "parse_tolerance",
    "Comparison",
    "compare_result",
    "compare_exit_code",
]
