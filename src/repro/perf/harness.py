"""The deterministic benchmark harness: warmup + repeat timing protocol.

A :class:`Benchmark` is a named workload — ``setup()`` builds the fixed
(seeded) inputs once, ``run(state)`` executes the measured hot path — and
:meth:`Benchmark.measure` times it under a :class:`Protocol`: a few warmup
executions (JIT-ish effects: allocator warm, caches primed, imports done)
followed by ``repeats`` timed executions on ``time.perf_counter``.

Robust statistics (:class:`Stats`: min / median / p99 / MAD) summarise the
samples; the *median* is what baselines compare, because it is insensitive
to the occasional scheduler hiccup that contaminates a mean.

Every run's return value is digested (:func:`repro.utils.rng.stable_digest`)
into a workload checksum.  All repeats must produce the same checksum —
that is the harness's built-in determinism check — and the checksum is
stored in baselines so :mod:`repro.perf.baseline` can detect that a
workload changed shape (numbers no longer comparable) rather than slowed.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.utils.rng import stable_digest


class PerfError(Exception):
    """A benchmark harness failure (bad protocol, broken workload, ...)."""


@dataclass(frozen=True)
class Protocol:
    """How many executions to discard (warmup) and to time (repeats)."""

    warmup: int = 2
    repeats: int = 7

    def __post_init__(self):
        if self.repeats < 1:
            raise PerfError(f"repeats must be >= 1, got {self.repeats}")
        if self.warmup < 0:
            raise PerfError(f"warmup must be >= 0, got {self.warmup}")

    def to_dict(self) -> dict:
        return {"warmup": self.warmup, "repeats": self.repeats}


#: The default full-fidelity protocol used by ``repro perf update``.
FULL = Protocol(warmup=2, repeats=7)

#: The abbreviated protocol behind ``--quick`` (CI smoke timing).
QUICK = Protocol(warmup=1, repeats=3)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        raise PerfError("percentile of no samples")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class Stats:
    """Robust summary of one benchmark's timed samples (seconds)."""

    samples: Tuple[float, ...]

    def __post_init__(self):
        if not self.samples:
            raise PerfError("Stats needs at least one sample")

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if self.n > 1 else 0.0

    @property
    def mad(self) -> float:
        """Median absolute deviation — the robust spread estimate."""
        med = self.median
        return statistics.median(abs(s - med) for s in self.samples)

    @property
    def p99(self) -> float:
        return percentile(self.samples, 99.0)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "min_s": round(self.min, 6),
            "max_s": round(self.max, 6),
            "mean_s": round(self.mean, 6),
            "median_s": round(self.median, 6),
            "stdev_s": round(self.stdev, 6),
            "mad_s": round(self.mad, 6),
            "p99_s": round(self.p99, 6),
            "samples_s": [round(s, 6) for s in self.samples],
        }


@dataclass(frozen=True)
class BenchResult:
    """Outcome of :meth:`Benchmark.measure`."""

    name: str
    stats: Stats
    protocol: Protocol
    checksum: str
    deterministic: bool
    units: Optional[float] = None

    @property
    def rate(self) -> Optional[float]:
        """Units per second at the median, when the workload declares units."""
        if self.units is None or self.stats.median <= 0:
            return None
        return self.units / self.stats.median

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "protocol": self.protocol.to_dict(),
            "stats": self.stats.to_dict(),
            "checksum": self.checksum,
            "deterministic": self.deterministic,
        }
        if self.units is not None:
            payload["units"] = self.units
            rate = self.rate
            payload["rate_per_s"] = None if rate is None else round(rate, 3)
        return payload


class Benchmark:
    """One measurable workload: seeded setup, timed run, optional teardown.

    ``run`` receives the state produced by ``setup`` (or ``None``) and
    returns a small, already-rounded summary value; the harness digests it
    into the workload checksum, so return something stable (counts, rounded
    losses) rather than raw float arrays.
    """

    def __init__(
        self,
        name: str,
        run: Callable[[object], object],
        setup: Optional[Callable[[], object]] = None,
        teardown: Optional[Callable[[object], None]] = None,
        units: Optional[float] = None,
    ):
        self.name = name
        self._run = run
        self._setup = setup
        self._teardown = teardown
        self.units = units

    def measure(self, protocol: Protocol = FULL) -> BenchResult:
        """Execute the warmup/repeat protocol and summarise the samples."""
        state = self._setup() if self._setup is not None else None
        checksums = []
        samples = []
        try:
            for _ in range(protocol.warmup):
                checksums.append(stable_digest(self._run(state)))
            for _ in range(protocol.repeats):
                started = time.perf_counter()
                value = self._run(state)
                samples.append(time.perf_counter() - started)
                checksums.append(stable_digest(value))
        finally:
            if self._teardown is not None:
                self._teardown(state)
        return BenchResult(
            name=self.name,
            stats=Stats(samples=tuple(samples)),
            protocol=protocol,
            checksum=checksums[-1],
            deterministic=len(set(checksums)) == 1,
            units=self.units,
        )


__all__ = [
    "PerfError",
    "Protocol",
    "FULL",
    "QUICK",
    "percentile",
    "Stats",
    "BenchResult",
    "Benchmark",
]
