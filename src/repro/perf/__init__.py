"""repro.perf — deterministic benchmarking and span profiling.

Four layers:

* :mod:`repro.perf.harness` — the warmup/repeat timing protocol with robust
  stats and built-in workload-determinism checksums;
* :mod:`repro.perf.areas` — the registry of ~8 named hot-path workloads
  (``obo_parse`` ... ``store_roundtrip``), each a seeded
  :class:`~repro.perf.harness.Benchmark`;
* :mod:`repro.perf.baseline` — committed ``BENCH_<area>.json`` baselines and
  the noise-tolerant regression comparison behind ``repro perf compare``;
* :mod:`repro.perf.profiler` — opt-in (``REPRO_PROFILE=1``) per-span
  cProfile + tracemalloc capture feeding the manifest ``hotspots`` section.

CLI: ``repro perf run|compare|report|update``.
"""

from repro.perf.areas import AREAS, PerfArea, area_names, get_area, select_areas
from repro.perf.baseline import (
    BENCH_FORMAT,
    FINGERPRINT_FIELDS,
    DEFAULT_MIN_DELTA_S,
    DEFAULT_TOLERANCE,
    RESULTS_FORMAT,
    Comparison,
    baseline_path,
    compare_exit_code,
    compare_result,
    environment_fingerprint,
    fingerprint_diff,
    load_baseline,
    load_results,
    parse_tolerance,
    result_payload,
    write_baseline,
    write_results,
)
from repro.perf.harness import (
    FULL,
    QUICK,
    Benchmark,
    BenchResult,
    PerfError,
    Protocol,
    Stats,
    percentile,
)
from repro.perf.profiler import (
    PROFILE_ENV_VAR,
    SpanProfiler,
    configure_from_env,
    env_enables_profile,
    install,
    installed,
    profiled_span,
    uninstall,
)
from repro.perf.report import render_comparison, render_results

__all__ = [
    # harness
    "PerfError",
    "Protocol",
    "FULL",
    "QUICK",
    "percentile",
    "Stats",
    "BenchResult",
    "Benchmark",
    # areas
    "PerfArea",
    "AREAS",
    "area_names",
    "get_area",
    "select_areas",
    # baseline
    "BENCH_FORMAT",
    "RESULTS_FORMAT",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_DELTA_S",
    "environment_fingerprint",
    "fingerprint_diff",
    "FINGERPRINT_FIELDS",
    "baseline_path",
    "result_payload",
    "write_baseline",
    "load_baseline",
    "write_results",
    "load_results",
    "parse_tolerance",
    "Comparison",
    "compare_result",
    "compare_exit_code",
    # profiler
    "PROFILE_ENV_VAR",
    "env_enables_profile",
    "SpanProfiler",
    "install",
    "installed",
    "uninstall",
    "configure_from_env",
    "profiled_span",
    # report
    "render_results",
    "render_comparison",
]
