"""Probability calibration analysis.

The curation triage loop (:mod:`repro.curation`) trusts model confidence to
decide which candidates skip human review, so calibration — whether a
"p = 0.8" bucket really contains ~80% true triples — matters as much as
accuracy.  Standard tools: the reliability curve (mean predicted
probability vs empirical positive rate per bin) and the expected
calibration error (ECE), the bin-weighted mean absolute gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def _validate(probabilities, labels) -> Tuple[np.ndarray, np.ndarray]:
    probs = np.asarray(probabilities, dtype=np.float64)
    gold = np.asarray(labels, dtype=np.int64)
    if probs.shape != gold.shape or probs.ndim != 1:
        raise ValueError("probabilities and labels must be equal-length 1-D")
    if probs.size == 0:
        raise ValueError("empty input")
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    bad = set(np.unique(gold)) - {0, 1}
    if bad:
        raise ValueError(f"labels must be binary, found {sorted(bad)}")
    return probs, gold


def reliability_curve(
    probabilities: Sequence[float],
    labels: Sequence[int],
    n_bins: int = 10,
) -> List[Tuple[float, float, int]]:
    """Per-bin ``(mean_predicted, fraction_positive, count)``.

    Bins partition [0, 1] uniformly; empty bins are omitted.
    """
    if n_bins < 2:
        raise ValueError("n_bins must be at least 2")
    probs, gold = _validate(probabilities, labels)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(probs, edges[1:-1]), 0, n_bins - 1)
    curve = []
    for index in range(n_bins):
        mask = bins == index
        if not mask.any():
            continue
        curve.append(
            (
                float(probs[mask].mean()),
                float(gold[mask].mean()),
                int(mask.sum()),
            )
        )
    return curve


def expected_calibration_error(
    probabilities: Sequence[float],
    labels: Sequence[int],
    n_bins: int = 10,
) -> float:
    """Bin-count-weighted mean |confidence - accuracy| (ECE)."""
    probs, _ = _validate(probabilities, labels)
    curve = reliability_curve(probabilities, labels, n_bins)
    total = probs.size
    return float(
        sum(count * abs(mean_p - frac_pos) for mean_p, frac_pos, count in curve)
        / total
    )


@dataclass(frozen=True)
class CalibrationReport:
    """Reliability curve + ECE for one model on one test set."""

    curve: List[Tuple[float, float, int]]
    ece: float
    n_samples: int

    @classmethod
    def from_predictions(
        cls,
        probabilities: Sequence[float],
        labels: Sequence[int],
        n_bins: int = 10,
    ) -> "CalibrationReport":
        probs, _ = _validate(probabilities, labels)
        return cls(
            curve=reliability_curve(probabilities, labels, n_bins),
            ece=expected_calibration_error(probabilities, labels, n_bins),
            n_samples=int(probs.size),
        )


__all__ = [
    "reliability_curve",
    "expected_calibration_error",
    "CalibrationReport",
]
