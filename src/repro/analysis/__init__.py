"""Post-hoc analysis tools: calibration, per-relation error breakdowns,
and cross-model agreement."""

from repro.analysis.calibration import (
    CalibrationReport,
    expected_calibration_error,
    reliability_curve,
)
from repro.analysis.errors import error_breakdown_by_relation
from repro.analysis.agreement_matrix import pairwise_agreement

__all__ = [
    "reliability_curve",
    "expected_calibration_error",
    "CalibrationReport",
    "error_breakdown_by_relation",
    "pairwise_agreement",
]
