"""Cross-model agreement analysis.

The paper reports within-model consistency (Fleiss' kappa over repeated
deliveries).  A natural companion question for a curation pipeline running
several models is *between*-model agreement: if GPT-4 and the Random Forest
disagree on a candidate, it probably deserves human review.  This module
computes pairwise Cohen's kappa over the models' decisions.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np


def cohens_kappa(a: Sequence[object], b: Sequence[object]) -> float:
    """Cohen's kappa between two raters' categorical decisions.

    ``None`` decisions (unclassified) are treated as their own category.
    Returns 1.0 when both raters always agree (even on a single category).
    """
    if len(a) != len(b):
        raise ValueError("decision sequences must have equal length")
    if not a:
        raise ValueError("empty decision sequences")
    categories = sorted({*a, *b}, key=repr)
    index = {c: i for i, c in enumerate(categories)}
    matrix = np.zeros((len(categories), len(categories)))
    for left, right in zip(a, b):
        matrix[index[left], index[right]] += 1
    total = matrix.sum()
    observed = np.trace(matrix) / total
    expected = float(
        np.sum(matrix.sum(axis=1) * matrix.sum(axis=0)) / total**2
    )
    if np.isclose(expected, 1.0):
        return 1.0
    return float((observed - expected) / (1.0 - expected))


def pairwise_agreement(
    decisions: Mapping[str, Sequence[Optional[int]]],
) -> Dict[Tuple[str, str], float]:
    """Cohen's kappa for every unordered model pair.

    ``decisions`` maps model name to its per-triple decisions (aligned
    across models; ``None`` allowed for unclassified).
    """
    names = sorted(decisions)
    if len(names) < 2:
        raise ValueError("need at least two models to compare")
    lengths = {len(decisions[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError("all decision sequences must have equal length")
    result: Dict[Tuple[str, str], float] = {}
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            result[(left, right)] = cohens_kappa(
                decisions[left], decisions[right]
            )
    return result


__all__ = ["cohens_kappa", "pairwise_agreement"]
