"""Per-relationship error breakdowns (the tabular view behind Figure 2)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.triples import LabeledTriple
from repro.metrics.classification import evaluate_binary


def error_breakdown_by_relation(
    triples: Sequence[LabeledTriple],
    predictions: Sequence[Optional[int]],
    min_support: int = 1,
) -> Dict[str, dict]:
    """Metrics per relationship type.

    ``predictions`` aligns with ``triples``; ``None`` entries (unclassified
    ICL responses) count as errors for accuracy and are excluded from the
    P/R/F1 of their relation.  Relations with fewer than ``min_support``
    triples are omitted.

    Returns ``{relation: {"support", "accuracy", "precision", "recall",
    "f1", "unclassified"}}``.
    """
    if len(triples) != len(predictions):
        raise ValueError("triples and predictions must have equal length")
    if not triples:
        raise ValueError("no triples to analyse")

    groups: Dict[str, List[int]] = {}
    for index, triple in enumerate(triples):
        groups.setdefault(triple.relation.name, []).append(index)

    breakdown: Dict[str, dict] = {}
    for relation, indices in sorted(groups.items()):
        if len(indices) < min_support:
            continue
        gold = [triples[i].label for i in indices]
        predicted = [predictions[i] for i in indices]
        n_correct = sum(1 for g, p in zip(gold, predicted) if g == p)
        classified_gold = [g for g, p in zip(gold, predicted) if p is not None]
        classified_pred = [p for p in predicted if p is not None]
        entry = {
            "support": len(indices),
            "accuracy": n_correct / len(indices),
            "unclassified": len(indices) - len(classified_pred),
        }
        if classified_pred and len(set(classified_gold)) >= 1:
            report = evaluate_binary(classified_gold, classified_pred)
            entry.update(
                precision=report.precision,
                recall=report.recall,
                f1=report.f1,
            )
        else:
            entry.update(precision=0.0, recall=0.0, f1=0.0)
        breakdown[relation] = entry
    return breakdown


__all__ = ["error_breakdown_by_relation"]
