"""GloVe embeddings from scratch (Pennington et al., 2014).

Two of the paper's six embedding models are GloVe-based: the generic GloVe
(pretrained on an open-domain corpus) and **GloVe-Chem**, produced by further
training GloVe on the chemistry corpus with a vocabulary that joins the
chemistry tokens with GloVe's own (Section 2.3).  Both paths are supported:

* ``GloVe.train(sentences, config)`` trains from scratch;
* ``GloVe.train(sentences, config, init_from=base_model)`` joins vocabularies
  and initialises the input layer from ``base_model`` — the paper's
  continued-pretraining recipe for GloVe-Chem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import StaticEmbeddings
from repro.obs.progress import StageProgress
from repro.obs.trace import span
from repro.text.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class GloVeConfig:
    """GloVe hyperparameters.

    Attributes:
        dim: vector dimensionality.
        window: symmetric co-occurrence window; counts are weighted by
            1/distance as in the reference implementation.
        x_max / alpha: parameters of the weighting function
            ``f(x) = min(1, (x / x_max) ** alpha)``.
        epochs: AdaGrad passes over the non-zero co-occurrence entries.
        learning_rate: initial AdaGrad step.
        min_count: vocabulary frequency floor.
        batch_size: non-zero entries per vectorised update.
        seed: training seed.
    """

    dim: int = 64
    window: int = 6
    x_max: float = 50.0
    alpha: float = 0.75
    epochs: int = 12
    learning_rate: float = 0.05
    min_count: int = 2
    batch_size: int = 4096
    seed: int = 0

    def __post_init__(self):
        if self.dim < 1 or self.window < 1:
            raise ValueError("dim and window must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0 or self.x_max <= 0:
            raise ValueError("learning_rate and x_max must be positive")


def cooccurrence_counts(
    sentences: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int
) -> Dict[Tuple[int, int], float]:
    """Distance-weighted co-occurrence counts over in-vocabulary tokens."""
    counts: Dict[Tuple[int, int], float] = {}
    for sentence in sentences:
        ids = [vocabulary.get_id(t) for t in sentence]
        ids = [i for i in ids if i is not None]
        for position, center in enumerate(ids):
            hi = min(len(ids), position + window + 1)
            for other in range(position + 1, hi):
                weight = 1.0 / (other - position)
                a, b = center, ids[other]
                counts[(a, b)] = counts.get((a, b), 0.0) + weight
                counts[(b, a)] = counts.get((b, a), 0.0) + weight
    if not counts:
        raise ValueError("no co-occurrences found; corpus too small")
    return counts


def _joined_vocabulary(
    sentences: Sequence[Sequence[str]], min_count: int, base: StaticEmbeddings
) -> Vocabulary:
    """Union of the corpus vocabulary and a base model's vocabulary."""
    corpus_vocab = build_vocabulary(sentences, min_count=min_count)
    counts = corpus_vocab.counts()
    if base.vocabulary is not None:
        for token in base.vocabulary:
            counts.setdefault(token, base.vocabulary.count(token))
    return Vocabulary(counts)


class GloVe(StaticEmbeddings):
    """A trained GloVe embedding table (sum of input and context layers)."""

    @classmethod
    def train(
        cls,
        sentences: Sequence[Sequence[str]],
        config: Optional[GloVeConfig] = None,
        name: str = "GloVe",
        init_from: Optional[StaticEmbeddings] = None,
    ) -> "GloVe":
        """Train GloVe on tokenised ``sentences``.

        With ``init_from``, the vocabulary is the union of the corpus tokens
        and the base model's vocabulary, and rows for shared tokens start
        from the base model's vectors (the GloVe-Chem recipe).  The base
        model must have the same dimensionality.
        """
        config = config or GloVeConfig()
        rng = derive_rng(config.seed, "glove", name)

        if init_from is not None:
            if init_from.dim != config.dim:
                raise ValueError(
                    f"init_from dim {init_from.dim} != config dim {config.dim}"
                )
            vocabulary = _joined_vocabulary(sentences, config.min_count, init_from)
        else:
            vocabulary = build_vocabulary(sentences, min_count=config.min_count)

        counts = cooccurrence_counts(sentences, vocabulary, config.window)
        keys = np.array(list(counts.keys()), dtype=np.int64)
        row_ids, col_ids = keys[:, 0], keys[:, 1]
        values = np.array(list(counts.values()), dtype=np.float64)
        log_values = np.log(values)
        weights = np.minimum(1.0, (values / config.x_max) ** config.alpha)

        vocab_size = len(vocabulary)
        scale = 0.5 / config.dim
        w_main = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
        w_ctx = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
        b_main = np.zeros(vocab_size)
        b_ctx = np.zeros(vocab_size)
        if init_from is not None:
            for token in init_from.vocabulary:
                row = vocabulary.get_id(token)
                if row is not None:
                    # Split the pretrained vector across both layers so the
                    # exported sum (w_main + w_ctx) starts at the base vector.
                    w_main[row] = init_from.vector(token) * 0.5
                    w_ctx[row] = init_from.vector(token) * 0.5

        grad_sq = {
            "w_main": np.ones_like(w_main),
            "w_ctx": np.ones_like(w_ctx),
            "b_main": np.ones_like(b_main),
            "b_ctx": np.ones_like(b_ctx),
        }

        n_entries = values.size
        with span(
            "embedding.glove.train",
            model=name,
            epochs=config.epochs,
            entries=int(n_entries),
            vocab=vocab_size,
        ) as sp, StageProgress(f"embedding.glove[{name}]", unit="entries") as progress:
            for _ in range(config.epochs):
                order = rng.permutation(n_entries)
                for start in range(0, n_entries, config.batch_size):
                    batch = order[start : start + config.batch_size]
                    rows = row_ids[batch]
                    cols = col_ids[batch]
                    main_vecs = w_main[rows]
                    ctx_vecs = w_ctx[cols]
                    inner = np.sum(main_vecs * ctx_vecs, axis=1)
                    diff = inner + b_main[rows] + b_ctx[cols] - log_values[batch]
                    weighted = weights[batch] * diff  # d(loss)/d(inner), halved

                    grad_main = weighted[:, None] * ctx_vecs
                    grad_ctx = weighted[:, None] * main_vecs

                    for table, accum_key, ids, grad in (
                        (w_main, "w_main", rows, grad_main),
                        (w_ctx, "w_ctx", cols, grad_ctx),
                    ):
                        accum = grad_sq[accum_key]
                        step = config.learning_rate * grad / np.sqrt(accum[ids])
                        np.add.at(table, ids, -step)
                        np.add.at(accum, ids, grad**2)
                    for bias, accum_key, ids in (
                        (b_main, "b_main", rows),
                        (b_ctx, "b_ctx", cols),
                    ):
                        accum = grad_sq[accum_key]
                        step = config.learning_rate * weighted / np.sqrt(accum[ids])
                        np.add.at(bias, ids, -step)
                        np.add.at(accum, ids, weighted**2)
                    sp.incr("entries", int(batch.size))
                    progress.advance(int(batch.size))

        return cls(vocabulary, w_main + w_ctx, name=name, oov_seed=config.seed)


__all__ = ["GloVe", "GloVeConfig", "cooccurrence_counts"]
