"""GloVe embeddings from scratch (Pennington et al., 2014).

Two of the paper's six embedding models are GloVe-based: the generic GloVe
(pretrained on an open-domain corpus) and **GloVe-Chem**, produced by further
training GloVe on the chemistry corpus with a vocabulary that joins the
chemistry tokens with GloVe's own (Section 2.3).  Both paths are supported:

* ``GloVe.train(sentences, config)`` trains from scratch;
* ``GloVe.train(sentences, config, init_from=base_model)`` joins vocabularies
  and initialises the input layer from ``base_model`` — the paper's
  continued-pretraining recipe for GloVe-Chem.

Co-occurrence accumulation is sharded: each shard covers a fixed
sentence-index slice and reduces its distance-weighted pair counts to
sorted ``(row * vocab + col)`` code/weight arrays; shards merge by another
sorted reduction, so the merged table is identical whether shards were
built sequentially or across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import (
    StaticEmbeddings,
    _flatten_sentences,
    scatter_add,
    sentences_to_ids,
    shard_bounds,
)
from repro.obs.progress import StageProgress
from repro.obs.trace import span
from repro.text.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class GloVeConfig:
    """GloVe hyperparameters.

    Attributes:
        dim: vector dimensionality.
        window: symmetric co-occurrence window; counts are weighted by
            1/distance as in the reference implementation.
        x_max / alpha: parameters of the weighting function
            ``f(x) = min(1, (x / x_max) ** alpha)``.
        epochs: AdaGrad passes over the non-zero co-occurrence entries.
        learning_rate: initial AdaGrad step.
        min_count: vocabulary frequency floor.
        batch_size: non-zero entries per vectorised update.
        seed: training seed.
    """

    dim: int = 64
    window: int = 6
    x_max: float = 50.0
    alpha: float = 0.75
    epochs: int = 12
    learning_rate: float = 0.05
    min_count: int = 2
    batch_size: int = 4096
    seed: int = 0

    def __post_init__(self):
        if self.dim < 1 or self.window < 1:
            raise ValueError("dim and window must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0 or self.x_max <= 0:
            raise ValueError("learning_rate and x_max must be positive")


#: Use a dense (vocab^2,) accumulation buffer for co-occurrence when it fits
#: in this many float64 elements (2^22 = 32 MB); larger vocabularies fall
#: back to the sorted sparse reduction.  The gate depends only on the
#: vocabulary size, so shard outputs stay deterministic per configuration.
_DENSE_COOCCUR_MAX = 1 << 22


def _reduce_codes(
    codes: np.ndarray, weights: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``weights`` per unique code; returns sorted unique codes + sums."""
    if codes.size == 0:
        return codes, weights
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    starts = np.concatenate([[0], np.nonzero(np.diff(sorted_codes))[0] + 1])
    return sorted_codes[starts], np.add.reduceat(weights[order], starts)


def cooccur_shard(
    sentence_ids: Sequence[np.ndarray], window: int, vocab_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distance-weighted co-occurrence for a slice of the corpus.

    Returns sorted-unique pair codes (``row * vocab_size + col``) and their
    summed weights.  Vectorised per distance: tokens at offset ``d`` apart
    contribute ``1/d`` in both directions.
    """
    usable = [ids for ids in sentence_ids if ids.size >= 2]
    if not usable:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    flat, position, length = _flatten_sentences(usable)
    if vocab_size * vocab_size <= _DENSE_COOCCUR_MAX:
        # Small vocabularies accumulate straight into a dense (vocab^2,)
        # buffer: one integer bincount per distance replaces the argsort
        # reduction, and the nonzero scan yields codes already sorted.
        dense = np.zeros(vocab_size * vocab_size)
        for distance in range(1, window + 1):
            left = np.nonzero(position + distance < length)[0]
            if left.size == 0:
                break
            a = flat[left]
            b = flat[left + distance]
            pair_codes = np.concatenate([a * vocab_size + b, b * vocab_size + a])
            dense += np.bincount(pair_codes, minlength=dense.size) * (
                1.0 / distance
            )
        codes = np.nonzero(dense)[0]
        return codes, dense[codes]
    codes: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    for distance in range(1, window + 1):
        left = np.nonzero(position + distance < length)[0]
        if left.size == 0:
            break
        a = flat[left]
        b = flat[left + distance]
        codes.append(a * vocab_size + b)
        codes.append(b * vocab_size + a)
        weight = np.full(left.size, 1.0 / distance)
        weights.append(weight)
        weights.append(weight)
    if not codes:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    return _reduce_codes(np.concatenate(codes), np.concatenate(weights))


def merge_cooccurrence(
    shards: Sequence[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(codes, weights)`` by sorted-key reduction.

    Summation happens per unique code over shard-ordered contributions, so
    the merged array is independent of which process built each shard.
    """
    codes = np.concatenate([shard[0] for shard in shards])
    weights = np.concatenate([shard[1] for shard in shards])
    return _reduce_codes(codes, weights)


def cooccurrence_arrays(
    sentences: Sequence[Sequence[str]],
    vocabulary: Vocabulary,
    window: int,
    n_shards: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full co-occurrence as ``(row_ids, col_ids, values)`` COO arrays,
    sorted by ``(row, col)``.  Built from ``n_shards`` fixed sentence-index
    shards and merged in shard order."""
    sentence_ids = sentences_to_ids(sentences, vocabulary)
    vocab_size = len(vocabulary)
    shards = [
        cooccur_shard(sentence_ids[start:stop], window, vocab_size)
        for start, stop in shard_bounds(len(sentence_ids), n_shards)
    ]
    codes, values = merge_cooccurrence(shards)
    if codes.size == 0:
        raise ValueError("no co-occurrences found; corpus too small")
    return codes // vocab_size, codes % vocab_size, values


def cooccurrence_counts(
    sentences: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int
) -> Dict[Tuple[int, int], float]:
    """Distance-weighted co-occurrence counts over in-vocabulary tokens.

    Kept as the dict-returning public API; entries are ordered by
    ``(row, col)`` (the sorted-reduction order) rather than by first
    encounter as the historical Python loop produced.
    """
    row_ids, col_ids, values = cooccurrence_arrays(sentences, vocabulary, window)
    return dict(
        zip(zip(row_ids.tolist(), col_ids.tolist()), values.tolist())
    )


def _joined_vocabulary(
    sentences: Sequence[Sequence[str]], min_count: int, base: StaticEmbeddings
) -> Vocabulary:
    """Union of the corpus vocabulary and a base model's vocabulary."""
    corpus_vocab = build_vocabulary(sentences, min_count=min_count)
    counts = corpus_vocab.counts()
    if base.vocabulary is not None:
        for token in base.vocabulary:
            counts.setdefault(token, base.vocabulary.count(token))
    return Vocabulary(counts)


class GloVe(StaticEmbeddings):
    """A trained GloVe embedding table (sum of input and context layers)."""

    @classmethod
    def train(
        cls,
        sentences: Sequence[Sequence[str]],
        config: Optional[GloVeConfig] = None,
        name: str = "GloVe",
        init_from: Optional[StaticEmbeddings] = None,
        cooccurrence: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        shards: int = 1,
    ) -> "GloVe":
        """Train GloVe on tokenised ``sentences``.

        With ``init_from``, the vocabulary is the union of the corpus tokens
        and the base model's vocabulary, and rows for shared tokens start
        from the base model's vectors (the GloVe-Chem recipe).  The base
        model must have the same dimensionality.

        ``cooccurrence`` may supply precomputed ``(rows, cols, values)``
        COO arrays (e.g. merged shard artifacts); otherwise the table is
        built here across ``shards`` deterministic sentence-index shards.
        """
        config = config or GloVeConfig()
        rng = derive_rng(config.seed, "glove", name)

        if init_from is not None:
            if init_from.dim != config.dim:
                raise ValueError(
                    f"init_from dim {init_from.dim} != config dim {config.dim}"
                )
            vocabulary = _joined_vocabulary(sentences, config.min_count, init_from)
        else:
            vocabulary = build_vocabulary(sentences, min_count=config.min_count)

        if cooccurrence is None:
            cooccurrence = cooccurrence_arrays(
                sentences, vocabulary, config.window, n_shards=shards
            )
        row_ids, col_ids, values = cooccurrence
        if values.size == 0:
            raise ValueError("no co-occurrences found; corpus too small")
        log_values = np.log(values)
        weights = np.minimum(1.0, (values / config.x_max) ** config.alpha)

        vocab_size = len(vocabulary)
        scale = 0.5 / config.dim
        w_main = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
        w_ctx = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
        b_main = np.zeros(vocab_size)
        b_ctx = np.zeros(vocab_size)
        if init_from is not None and init_from.vocabulary is not None:
            # Split pretrained vectors across both layers so the exported
            # sum (w_main + w_ctx) starts at the base vectors; one gather
            # replaces the per-token Python loop.
            base_tokens = list(init_from.vocabulary)
            new_ids = np.fromiter(
                (
                    -1 if token_id is None else token_id
                    for token_id in map(vocabulary.get_id, base_tokens)
                ),
                dtype=np.int64,
                count=len(base_tokens),
            )
            shared = np.nonzero(new_ids >= 0)[0]
            if shared.size:
                base_ids = np.fromiter(
                    (init_from.vocabulary.id_of(base_tokens[i]) for i in shared),
                    dtype=np.int64,
                    count=shared.size,
                )
                halved = init_from.matrix[base_ids] * 0.5
                w_main[new_ids[shared]] = halved
                w_ctx[new_ids[shared]] = halved

        grad_sq = {
            "w_main": np.ones_like(w_main),
            "w_ctx": np.ones_like(w_ctx),
            "b_main": np.ones_like(b_main),
            "b_ctx": np.ones_like(b_ctx),
        }

        n_entries = values.size
        with span(
            "embedding.glove.train",
            model=name,
            epochs=config.epochs,
            entries=int(n_entries),
            vocab=vocab_size,
        ) as sp, StageProgress(f"embedding.glove[{name}]", unit="entries") as progress:
            for _ in range(config.epochs):
                order = rng.permutation(n_entries)
                for start in range(0, n_entries, config.batch_size):
                    batch = order[start : start + config.batch_size]
                    rows = row_ids[batch]
                    cols = col_ids[batch]
                    main_vecs = w_main[rows]
                    ctx_vecs = w_ctx[cols]
                    inner = np.sum(main_vecs * ctx_vecs, axis=1)
                    diff = inner + b_main[rows] + b_ctx[cols] - log_values[batch]
                    weighted = weights[batch] * diff  # d(loss)/d(inner), halved

                    grad_main = weighted[:, None] * ctx_vecs
                    grad_ctx = weighted[:, None] * main_vecs

                    # AdaGrad: steps use the accumulator as of the batch
                    # start; the squared grads land afterwards.
                    for table, accum_key, ids, grad in (
                        (w_main, "w_main", rows, grad_main),
                        (w_ctx, "w_ctx", cols, grad_ctx),
                    ):
                        accum = grad_sq[accum_key]
                        step = config.learning_rate * grad / np.sqrt(accum[ids])
                        scatter_add(table, ids, -step)
                        scatter_add(accum, ids, grad * grad)
                    for bias, accum_key, ids in (
                        (b_main, "b_main", rows),
                        (b_ctx, "b_ctx", cols),
                    ):
                        accum = grad_sq[accum_key]
                        step = config.learning_rate * weighted / np.sqrt(accum[ids])
                        scatter_add(bias, ids, -step)
                        scatter_add(accum, ids, weighted * weighted)
                    sp.incr("entries", int(batch.size))
                    progress.advance(int(batch.size))

        return cls(vocabulary, w_main + w_ctx, name=name, oov_seed=config.seed)


__all__ = [
    "GloVe",
    "GloVeConfig",
    "cooccurrence_counts",
    "cooccurrence_arrays",
    "cooccur_shard",
    "merge_cooccurrence",
]
