"""Random embeddings — the paper's semantics-free baseline (Section 2.3).

Each token receives a vector drawn uniformly from [-1, 1); vectors are
deterministic per token, so the "embedding" is a stable but meaningless
feature map.  The paper's surprising finding is that, *without* adaptation,
random-forest models on random embeddings beat semantic embeddings on task 1
(Table 3a), because the random vectors keep high-frequency, low-semantics
locant tokens linearly separable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.embeddings.base import EmbeddingModel
from repro.text.vocab import Vocabulary
from repro.utils.rng import stable_hash


class RandomEmbeddings(EmbeddingModel):
    """Uniform random vector per token, deterministic in (seed, token).

    The model is open-vocabulary: every token "hits", and the vector comes
    from the same construction as the OOV fallback (which is the point — the
    whole vocabulary is treated the way other models treat OOV tokens).
    """

    def __init__(self, dim: int = 300, seed: int = 0, name: str = "Random"):
        super().__init__(dim=dim, name=name, oov_seed=seed)
        self._seed = seed

    @property
    def vocabulary(self) -> Optional[Vocabulary]:
        return None

    def contains(self, token: str) -> bool:
        return True

    def _in_vocab_vector(self, token: str) -> np.ndarray:
        return self.oov_vector(token)


__all__ = ["RandomEmbeddings"]
