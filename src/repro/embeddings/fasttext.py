"""FastText-style subword embeddings (Bojanowski et al., 2017).

This is the BioWordVec analogue (Section 2.3): BioWordVec is fastText trained
on a large biomedical corpus plus MeSH.  Words are represented as the average
of a word vector and hashed character n-gram vectors; out-of-vocabulary words
can still be composed from their n-grams, which is why BioWordVec shows far
fewer effective OOV failures than GloVe on chemical names (Table A4).

Training is skip-gram with negative sampling where the centre representation
is the subword average and gradients are distributed over the constituent
subword rows.  Pair generation and the scatter updates share the vectorised
kernels in :mod:`repro.embeddings.base` with word2vec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.base import (
    EmbeddingModel,
    build_pairs,
    negative_table,
    scatter_outer_add,
    sentences_to_ids,
    sigmoid,
)
from repro.text.vocab import Vocabulary, build_vocabulary
from repro.utils.rng import derive_rng, stable_hash


@dataclass(frozen=True)
class FastTextConfig:
    """FastText hyperparameters (see :class:`Word2VecConfig` for shared ones).

    Attributes:
        min_n / max_n: character n-gram lengths (inclusive), applied to the
            word padded with ``<`` and ``>`` boundary markers.
        bucket: size of the hashed n-gram table.
    """

    dim: int = 64
    window: int = 4
    negative: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_count: int = 2
    batch_size: int = 1024
    min_n: int = 3
    max_n: int = 5
    bucket: int = 20_000
    seed: int = 0

    def __post_init__(self):
        if not 1 <= self.min_n <= self.max_n:
            raise ValueError("need 1 <= min_n <= max_n")
        if self.bucket < 1:
            raise ValueError("bucket must be positive")
        if self.dim < 1 or self.epochs < 1 or self.learning_rate <= 0:
            raise ValueError("dim/epochs/learning_rate must be positive")


def character_ngrams(word: str, min_n: int, max_n: int) -> List[str]:
    """Boundary-padded character n-grams of ``word``.

    >>> character_ngrams("acid", 3, 3)
    ['<ac', 'aci', 'cid', 'id>']
    """
    padded = f"<{word}>"
    grams = []
    for n in range(min_n, max_n + 1):
        for start in range(0, len(padded) - n + 1):
            grams.append(padded[start : start + n])
    return grams


def ngram_bucket_rows(
    grams: Sequence[str],
    base: int,
    bucket: int,
    cache: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Hashed table rows for n-grams: ``base + stable_hash % bucket``.

    Grams repeat heavily across a vocabulary (and across calls for the same
    word), so hashes are memoised in ``cache`` when one is supplied; the
    hash itself is unchanged, so cached and uncached lookups agree.
    """
    if cache is None:
        return np.fromiter(
            (base + stable_hash("ngram", gram) % bucket for gram in grams),
            dtype=np.int64,
            count=len(grams),
        )
    rows = np.empty(len(grams), dtype=np.int64)
    for i, gram in enumerate(grams):
        row = cache.get(gram)
        if row is None:
            row = base + stable_hash("ngram", gram) % bucket
            cache[gram] = row
        rows[i] = row
    return rows


class FastText(EmbeddingModel):
    """Subword-aware embeddings with hashed n-gram buckets.

    Row layout of the parameter table: rows ``[0, vocab)`` are word vectors;
    rows ``[vocab, vocab + bucket)`` are n-gram buckets.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        table: np.ndarray,
        config: FastTextConfig,
        name: str = "FastText",
    ):
        super().__init__(dim=table.shape[1], name=name, oov_seed=config.seed)
        if table.shape[0] != len(vocabulary) + config.bucket:
            raise ValueError("table must have vocab + bucket rows")
        self._vocabulary = vocabulary
        self._table = table
        self._config = config
        self._gram_cache: Dict[str, int] = {}
        self._row_cache: Dict[str, np.ndarray] = {}

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def config(self) -> FastTextConfig:
        return self._config

    @property
    def table(self) -> np.ndarray:
        """The full ``(vocab + bucket, dim)`` parameter table (read-only by
        convention); row layout is documented on the class."""
        return self._table

    def contains(self, token: str) -> bool:
        return token in self._vocabulary

    def _ngram_rows(self, token: str) -> np.ndarray:
        config = self._config
        grams = character_ngrams(token, config.min_n, config.max_n)
        return ngram_bucket_rows(
            grams, len(self._vocabulary), config.bucket, cache=self._gram_cache
        )

    def _subword_rows(self, token: str) -> np.ndarray:
        rows = self._row_cache.get(token)
        if rows is not None:
            return rows
        rows = self._ngram_rows(token)
        word_id = self._vocabulary.get_id(token)
        if word_id is not None:
            rows = np.concatenate([[word_id], rows])
        self._row_cache[token] = rows
        return rows

    def _in_vocab_vector(self, token: str) -> np.ndarray:
        rows = self._subword_rows(token)
        return self._table[rows].mean(axis=0)

    def vector(self, token: str) -> np.ndarray:
        """Subword composition for any token; random only when no n-grams."""
        rows = self._subword_rows(token)
        if rows.size == 0:  # pragma: no cover - only for empty tokens
            return self.oov_vector(token)
        return self._table[rows].mean(axis=0)

    # -- training -----------------------------------------------------------

    @classmethod
    def train(
        cls,
        sentences: Sequence[Sequence[str]],
        config: Optional[FastTextConfig] = None,
        name: str = "FastText",
        pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shards: int = 1,
    ) -> "FastText":
        """Train subword SGNS embeddings on tokenised ``sentences``."""
        config = config or FastTextConfig()
        vocabulary = build_vocabulary(sentences, min_count=config.min_count)
        rng = derive_rng(config.seed, "fasttext", name)
        vocab_size = len(vocabulary)

        # Precompute padded subword-row matrices per vocabulary word; gram
        # hashes are shared through one memo across the whole vocabulary.
        gram_cache: Dict[str, int] = {}
        row_lists: List[np.ndarray] = []
        for word_id in range(vocab_size):
            token = vocabulary.token_of(word_id)
            grams = character_ngrams(token, config.min_n, config.max_n)
            gram_rows = ngram_bucket_rows(
                grams, vocab_size, config.bucket, cache=gram_cache
            )
            row_lists.append(
                np.concatenate([[word_id], gram_rows]).astype(np.int64)
            )
        max_rows = max(rows.size for rows in row_lists)
        sub_rows = np.zeros((vocab_size, max_rows), dtype=np.int64)
        sub_mask = np.zeros((vocab_size, max_rows), dtype=np.float64)
        for word_id, rows in enumerate(row_lists):
            sub_rows[word_id, : rows.size] = rows
            sub_mask[word_id, : rows.size] = 1.0
        sub_counts = sub_mask.sum(axis=1, keepdims=True)

        table = (rng.random((vocab_size + config.bucket, config.dim)) - 0.5) / config.dim
        w_out = np.zeros((vocab_size, config.dim))
        cumulative = negative_table(vocabulary)

        if pairs is None:
            sentence_ids = sentences_to_ids(sentences, vocabulary)
            pairs = build_pairs(
                sentence_ids, config.window, config.seed, n_shards=shards
            )
        centers, contexts = pairs
        n_pairs = centers.size
        if n_pairs == 0:
            raise ValueError("corpus produced no training pairs; sentences too short")
        total_steps = config.epochs * n_pairs

        step = 0
        for _ in range(config.epochs):
            order = rng.permutation(n_pairs)
            # One negative draw + searchsorted per epoch; batches slice views.
            epoch_negs = np.searchsorted(
                cumulative, rng.random((n_pairs, config.negative))
            ).astype(np.int64)
            for start in range(0, n_pairs, config.batch_size):
                batch = order[start : start + config.batch_size]
                lr = config.learning_rate * max(0.1, 1.0 - step / max(1, total_steps))
                step += batch.size
                c_ids = centers[batch]
                o_ids = contexts[batch]
                neg_ids = epoch_negs[start : start + batch.size]

                rows = sub_rows[c_ids]  # (B, L)
                mask = sub_mask[c_ids]  # (B, L)
                counts = sub_counts[c_ids]  # (B, 1)
                center_vecs = (
                    np.einsum("bld,bl->bd", table[rows], mask) / counts
                )
                pos_vecs = w_out[o_ids]
                neg_vecs = w_out[neg_ids]

                pos_grad = sigmoid(np.einsum("bd,bd->b", center_vecs, pos_vecs))
                pos_grad -= 1.0
                neg_grad = sigmoid(np.einsum("bd,bkd->bk", center_vecs, neg_vecs))

                grad_center = pos_grad[:, None] * pos_vecs
                grad_center += (neg_grad[:, None, :] @ neg_vecs)[:, 0, :]

                # Every scattered subword row is (mask / count) * the batch
                # element's grad_center; every output row is coeff * the
                # centre vector — both rank-structured.
                scatter_outer_add(table, rows, mask / counts, grad_center, -lr)
                out_ids = np.concatenate([o_ids[:, None], neg_ids], axis=1)
                out_coeffs = np.concatenate([pos_grad[:, None], neg_grad], axis=1)
                scatter_outer_add(w_out, out_ids, out_coeffs, center_vecs, -lr)

        return cls(vocabulary, table, config, name=name)


__all__ = ["FastText", "FastTextConfig", "character_ngrams", "ngram_bucket_rows"]
