"""The paper's six named embedding models, assembled from the substrates.

Section 2.3 / Table A4 lineup:

=============  =====================================================
name           construction here
=============  =====================================================
Random         uniform random vectors per token
GloVe          GloVe trained on the open-domain (generic) corpus
W2V-Chem       word2vec trained from scratch on the chemistry corpus
GloVe-Chem     GloVe further trained on the chemistry corpus with the
               joined vocabulary, initialised from generic GloVe
BioWordVec     fastText (subword) trained on the biomedical corpus
PubmedBERT     mini-BERT last-4-layer [CLS] phrase embeddings
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bert.model import MiniBert
from repro.embeddings.base import EmbeddingModel
from repro.embeddings.contextual import ContextualEmbeddings
from repro.embeddings.fasttext import FastText, FastTextConfig
from repro.embeddings.glove import GloVe, GloVeConfig
from repro.embeddings.random import RandomEmbeddings
from repro.embeddings.word2vec import Word2Vec, Word2VecConfig
from repro.obs.progress import emit
from repro.obs.trace import span

#: Canonical model names, in the paper's table order.
MODEL_NAMES = (
    "Random",
    "GloVe",
    "W2V-Chem",
    "GloVe-Chem",
    "BioWordVec",
    "PubmedBERT",
)

#: The static (token-level) subset eligible for token-selection adaptations.
STATIC_MODEL_NAMES = ("Random", "GloVe", "W2V-Chem", "GloVe-Chem", "BioWordVec")


@dataclass(frozen=True)
class RegistryConfig:
    """Shared training knobs for the embedding lineup."""

    dim: int = 64
    epochs: int = 3
    glove_epochs: int = 10
    min_count: int = 2
    seed: int = 0


def build_embedding_models(
    chem_sentences: Sequence[Sequence[str]],
    generic_sentences: Sequence[Sequence[str]],
    biomedical_sentences: Sequence[Sequence[str]],
    bert: Optional[MiniBert] = None,
    config: Optional[RegistryConfig] = None,
) -> Dict[str, EmbeddingModel]:
    """Train and return the named lineup.

    ``bert=None`` omits the PubmedBERT entry (e.g. when only the static
    models are needed).  Corpora are tokenised sentences (lists of tokens).
    """
    config = config or RegistryConfig()
    models: Dict[str, EmbeddingModel] = {}

    with span("embedding.registry", dim=config.dim):
        models["Random"] = RandomEmbeddings(dim=config.dim, seed=config.seed)

        with span("embedding.train", model="GloVe"):
            glove_generic = GloVe.train(
                generic_sentences,
                GloVeConfig(
                    dim=config.dim,
                    epochs=config.glove_epochs,
                    min_count=config.min_count,
                    seed=config.seed,
                ),
                name="GloVe",
            )
        models["GloVe"] = glove_generic
        emit("embedding.registry", "trained GloVe")

        with span("embedding.train", model="W2V-Chem"):
            models["W2V-Chem"] = Word2Vec.train(
                chem_sentences,
                Word2VecConfig(
                    dim=config.dim,
                    epochs=config.epochs,
                    min_count=config.min_count,
                    seed=config.seed,
                ),
                name="W2V-Chem",
            )
        emit("embedding.registry", "trained W2V-Chem")

        with span("embedding.train", model="GloVe-Chem"):
            models["GloVe-Chem"] = GloVe.train(
                chem_sentences,
                GloVeConfig(
                    dim=config.dim,
                    epochs=config.glove_epochs,
                    min_count=config.min_count,
                    seed=config.seed,
                ),
                name="GloVe-Chem",
                init_from=glove_generic,
            )
        emit("embedding.registry", "trained GloVe-Chem")

        with span("embedding.train", model="BioWordVec"):
            models["BioWordVec"] = FastText.train(
                biomedical_sentences,
                FastTextConfig(
                    dim=config.dim,
                    epochs=config.epochs,
                    min_count=config.min_count,
                    seed=config.seed,
                ),
                name="BioWordVec",
            )
        emit("embedding.registry", "trained BioWordVec")

        if bert is not None:
            models["PubmedBERT"] = ContextualEmbeddings(bert, name="PubmedBERT")
    return models


__all__ = [
    "MODEL_NAMES",
    "STATIC_MODEL_NAMES",
    "RegistryConfig",
    "build_embedding_models",
]
